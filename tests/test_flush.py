"""Tests for squash/flush machinery (refetch recovery)."""

from repro.core import CoreConfig, LoadRecovery
from repro.core.pipeline import Simulator
from repro.isa import OpClass
from repro.workloads import SPEC95_PROFILES
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
)

KB = 1024


def missy():
    return WorkloadProfile(
        name="missy",
        mix=InstructionMix({OpClass.INT_ALU: 0.6, OpClass.LOAD: 0.4}),
        memory=MemoryModel(
            hot_frac=0.3, warm_frac=0.7, cold_frac=0.0, stream_frac=0.0,
            hot_bytes=8 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(
            strands=8, chain_frac=0.5, near_mean=5.0, far_frac=0.0,
            two_src_frac=0.5, global_frac=0.1, fanout_burst_frac=0.0,
        ),
    )


def refetch_sim(profiles=None):
    config = CoreConfig.base().replace(load_recovery=LoadRecovery.REFETCH)
    sim = Simulator(config, profiles or [missy()], seed=0)
    sim.functional_warmup(20_000)
    return sim


class TestManualFlush:
    def test_flush_restores_rename_and_rob(self):
        sim = refetch_sim()
        # run until a healthy number of instructions are in flight
        while sim._inflight < 40:
            sim.tick()
        thread = sim.threads[0]
        boundary = list(thread.rob)[10]
        rob_before = [inst.uid for inst in thread.rob]
        free_before = sim.regfile.free_count
        victims = [inst for inst in thread.rob if inst.uid > boundary.uid]
        victim_dsts = sum(1 for v in victims if v.dst_preg is not None)
        frontend_ops = len(thread.fetch_pipe)

        sim._flush_younger(thread, boundary, sim.cycle)

        assert [inst.uid for inst in thread.rob] == rob_before[:11]
        # every squashed destination register was returned
        assert sim.regfile.free_count == free_before + victim_dsts
        # the squashed ops are queued for replay, in order
        assert len(thread.replay) == len(victims) + frontend_ops
        assert all(inst.squashed for inst in victims)
        # the rename map no longer references squashed registers
        squashed_pregs = {v.dst_preg for v in victims}
        assert squashed_pregs.isdisjoint(set(thread.rename_map.map))

    def test_flush_replays_the_same_program(self):
        sim = refetch_sim()
        while sim._inflight < 30:
            sim.tick()
        thread = sim.threads[0]
        boundary = list(thread.rob)[5]
        victims = [i.op for i in thread.rob if i.uid > boundary.uid]
        sim._flush_younger(thread, boundary, sim.cycle)
        replay_head = list(thread.replay)[: len(victims)]
        assert replay_head == victims


class TestEndToEndRefetch:
    def test_progress_and_accounting(self):
        sim = refetch_sim()
        sim.run(2500)
        stats = sim.stats
        assert stats.retired >= 2500
        assert stats.load_refetch_flushes > 0
        # refetch kills more work than it keeps on this workload
        assert stats.squashed_instructions > stats.load_refetch_flushes

    def test_iq_accounting_survives_flushes(self):
        sim = refetch_sim()
        sim.run(2000)
        # drain: no event should leave the IQ counters negative
        assert sim.iq.count >= 0
        assert sim.iq.issued_waiting >= 0
        assert sim.iq.count >= sim.iq.unissued_count()

    def test_smt_flush_is_thread_local(self):
        profiles = [missy(), SPEC95_PROFILES["m88ksim"]]
        sim = refetch_sim(profiles)
        sim.run(2500)
        # both threads keep making progress despite thread-0 flushes
        assert sim.stats.threads[0].retired > 400
        assert sim.stats.threads[1].retired > 400
        assert sim.stats.load_refetch_flushes > 0
