"""Tests for the kernel backend interface, registry, and sampled mode.

The heavy equivalence artillery lives elsewhere (golden pins and
differential laws parametrized over backends, the fuzz smoke, the
hypothesis property in ``test_pipeline.py``); this file covers the
backend subsystem itself: registry semantics, spec parsing, the
exactness gate, sampled-mode geometry and its declared error bounds,
and the planted-drift self-test of the cross-check.
"""

import pytest

from repro.core.backend import (
    KernelBackend,
    OptimizedBackend,
    ReferenceBackend,
    RetireStreamRecorder,
    SampledBackend,
    SamplingReport,
    SamplingWindow,
    available_backends,
    get_backend,
    parse_backend,
    register_backend,
)
from repro.core.config import CoreConfig, LoadRecovery, PortConfig
from repro.core.pipeline import Simulator
from repro.core.simulator import simulate
from repro.errors import ConfigError
from repro.workloads import workload_profiles


# ---------------------------------------------------------------------------
# Registry and spec parsing
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_shipped_backends_are_registered(self):
        names = available_backends()
        assert "reference" in names
        assert "optimized" in names
        assert "sampled" in names

    def test_exactness_declarations(self):
        assert get_backend("reference").exact
        assert get_backend("optimized").exact
        assert not get_backend("sampled").exact

    def test_get_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            get_backend("warp-drive")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend(ReferenceBackend())

    def test_replace_registration_allowed(self):
        # idempotent re-registration with replace=True keeps the name
        register_backend(ReferenceBackend(), replace=True)
        assert get_backend("reference").exact


class TestParseBackend:
    def test_none_means_reference(self):
        assert parse_backend(None).name == "reference"

    def test_names_resolve(self):
        assert parse_backend("optimized").name == "optimized"

    def test_instance_passes_through(self):
        backend = SampledBackend(windows=2, measure=100)
        assert parse_backend(backend) is backend

    def test_parameterised_sampled_spec(self):
        backend = parse_backend("sampled:4x250+80")
        assert isinstance(backend, SampledBackend)
        assert backend.windows == 4
        assert backend.measure == 250
        assert backend.window_warmup == 80
        assert backend.token == "sampled:4x250+80"

    def test_sampled_spec_default_warmup(self):
        backend = parse_backend("sampled:4x250")
        assert backend.window_warmup == 300

    def test_bad_sampled_spec_raises(self):
        with pytest.raises(ConfigError, match="bad sampled backend spec"):
            parse_backend("sampled:whoops")

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            parse_backend("turbo")

    def test_non_string_non_backend_raises(self):
        with pytest.raises(ConfigError):
            parse_backend(42)


class TestSampledValidation:
    def test_zero_windows_refused(self):
        with pytest.raises(ConfigError):
            SampledBackend(windows=0)

    def test_zero_measure_refused(self):
        with pytest.raises(ConfigError):
            SampledBackend(measure=0)

    def test_negative_warmup_refused(self):
        with pytest.raises(ConfigError):
            SampledBackend(window_warmup=-1)


# ---------------------------------------------------------------------------
# Build/run plumbing
# ---------------------------------------------------------------------------


class TestBuildRun:
    def test_reference_builds_plain_simulator(self):
        sim = ReferenceBackend().build(
            CoreConfig.base(3), workload_profiles("int_test")
        )
        assert type(sim) is Simulator

    def test_optimized_builds_subclass(self):
        from repro.core.fastsim import OptimizedSimulator

        sim = OptimizedBackend().build(
            CoreConfig.base(3), workload_profiles("int_test")
        )
        assert isinstance(sim, OptimizedSimulator)
        assert isinstance(sim, Simulator)

    def test_simulate_records_backend_token(self):
        result = simulate(
            "int_test", CoreConfig.base(3), instructions=400,
            warmup=4000, detailed_warmup=100, backend="optimized",
        )
        assert result.backend == "optimized"
        assert result.sampling is None

    def test_sampled_result_carries_report(self):
        result = simulate(
            "int_test", CoreConfig.base(3), instructions=6000,
            warmup=8000, detailed_warmup=200,
            backend="sampled:4x300+100",
        )
        assert result.backend == "sampled:4x300+100"
        report = result.sampling
        assert report is not None
        assert len(report.windows) == 4
        assert report.span == 6000
        assert 0.0 < report.detail_fraction < 1.0
        assert report.ipc_mean > 0
        lo, hi = report.ci95
        assert lo <= report.ipc_mean <= hi
        # the aggregate CoreStats pool exactly the measured windows
        assert result.stats.measured_cycles == sum(
            w.cycles for w in report.windows
        )
        assert result.stats.measured_retired == sum(
            w.retired for w in report.windows
        )

    def test_sampled_degrades_to_one_window_on_tiny_spans(self):
        result = simulate(
            "int_test", CoreConfig.base(3), instructions=300,
            warmup=4000, detailed_warmup=50,
            backend="sampled:8x200+100",
        )
        assert len(result.sampling.windows) == 1
        assert result.sampling.functional_instructions == 0

    def test_verifier_refuses_inexact_backend(self):
        from repro.verify import Verifier

        with pytest.raises(ConfigError, match="not exact"):
            simulate(
                "int_test", CoreConfig.base(3), instructions=400,
                warmup=2000, detailed_warmup=100,
                backend="sampled", verifier=Verifier(),
            )

    def test_exact_backends_agree_bit_for_bit(self):
        streams = {}
        for name in ("reference", "optimized"):
            kernel = get_backend(name)
            sim = kernel.build(
                CoreConfig.base(3), workload_profiles("int_test"), seed=3
            )
            recorder = RetireStreamRecorder()
            recorder.install(sim)
            sim.functional_warmup(2000)
            stats = kernel.run(sim, 1500, warmup=200)
            streams[name] = (stats.cycles, stats.retired,
                            stats.total_reissues, recorder.stream)
        assert streams["reference"] == streams["optimized"]

    @pytest.mark.parametrize("config", [
        CoreConfig.base(5, rf_read_ports=4),
        CoreConfig.base(5, rf_read_ports=4,
                        ports=PortConfig(arbitration="operand_share")),
        CoreConfig.base(5, rf_read_ports=4,
                        ports=PortConfig(arbitration="banked", banks=2)),
        CoreConfig.base(5, load_recovery=LoadRecovery.SSR, ssr_threshold=4),
    ], ids=["ports-oldest", "ports-share", "ports-banked", "ssr"])
    def test_mechanism_configs_agree_bit_for_bit(self, config):
        """The new port/SSR paths keep the equivalence matrix green."""
        results = {}
        for name in ("reference", "optimized"):
            stats = simulate(
                "int_test", config, instructions=1200,
                warmup=10_000, detailed_warmup=200, seed=0, backend=name,
            ).stats
            results[name] = (stats.cycles, stats.retired, stats.issues,
                             stats.total_reissues, stats.port_stalls)
        assert results["reference"] == results["optimized"]
        if config.rf_read_ports == 4:
            assert results["reference"][4] > 0  # ports actually contended

    def test_recorder_chains_existing_hook(self):
        seen = []
        sim = ReferenceBackend().build(
            CoreConfig.base(3), workload_profiles("int_test")
        )
        sim.retire_hook = lambda inst: seen.append(inst.uid)
        recorder = RetireStreamRecorder()
        recorder.install(sim)
        sim.functional_warmup(1000)
        sim.run(200, warmup=0)
        assert len(seen) == len(recorder.stream) > 0


# ---------------------------------------------------------------------------
# The error model
# ---------------------------------------------------------------------------


def _report(ipcs, rel_slack=0.03):
    windows = tuple(
        SamplingWindow(cycles=1000, retired=int(round(ipc * 1000)))
        for ipc in ipcs
    )
    return SamplingReport(
        windows=windows, span=20_000,
        detail_instructions=sum(w.retired for w in windows),
        functional_instructions=10_000, rel_slack=rel_slack,
    )


class TestSamplingReportMath:
    def test_mean_and_stderr(self):
        report = _report([1.0, 1.2, 0.8, 1.0])
        assert report.ipc_mean == pytest.approx(1.0)
        assert report.ipc_stderr == pytest.approx(0.08165, rel=1e-3)

    def test_single_window_has_zero_stderr(self):
        report = _report([1.0])
        assert report.ipc_stderr == 0.0
        lo, hi = report.ci95
        assert lo == hi == report.ipc_mean

    def test_empty_window_ipc_is_zero(self):
        assert SamplingWindow(cycles=0, retired=0).ipc == 0.0

    def test_describe_mentions_windows_and_ci(self):
        text = _report([1.0, 1.1]).describe()
        assert "windows=2" in text
        assert "ci95=" in text

    def test_cross_check_accepts_in_bounds_full_run(self):
        report = _report([1.00, 1.04, 0.96, 1.02, 0.98])
        assert report.cross_check(1.01)

    def test_cross_check_is_symmetric_around_mean(self):
        report = _report([1.0, 1.0, 1.0, 1.0])
        tolerance = report.tolerance
        assert report.cross_check(1.0 + tolerance * 0.99)
        assert report.cross_check(1.0 - tolerance * 0.99)
        assert not report.cross_check(1.0 + tolerance * 1.01)


class TestPlantedDrift:
    """The cross-check must catch a miscalibrated sampling run.

    Calibration errors are *systematic*: every window drifts the same
    way (e.g. measurement opening before the pipeline refills), so the
    between-window variance stays small while the mean walks away from
    the truth — exactly the failure the CI + slack band is sized to
    reject.
    """

    def test_uniform_drift_is_caught(self):
        truth = 1.0
        honest = _report([0.98, 1.01, 0.99, 1.02, 1.00, 0.99])
        assert honest.cross_check(truth)
        # a +15% systematic bias with the same tiny variance
        drifted = _report([i * 1.15 for i in
                           (0.98, 1.01, 0.99, 1.02, 1.00, 0.99)])
        assert not drifted.cross_check(truth)

    def test_drift_detection_end_to_end(self):
        """A real sampled run, re-reported with a planted calibration
        drift, must fail the cross-check that the honest report passes."""
        from dataclasses import replace

        full = simulate(
            "int_test", CoreConfig.base(3), instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="optimized",
        )
        sampled = simulate(
            "int_test", CoreConfig.base(3), instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="sampled",
        )
        report = sampled.sampling
        assert report.cross_check(full.ipc), (
            f"calibrated run out of bounds: full={full.ipc:.4f} "
            f"{report.describe()}"
        )
        drifted = replace(
            report,
            windows=tuple(
                SamplingWindow(cycles=w.cycles,
                               retired=int(w.retired * 1.5))
                for w in report.windows
            ),
        )
        assert not drifted.cross_check(full.ipc)


class TestSampledErrorBounds:
    """Sampled IPC lands inside the declared interval of the full run
    across the shipped profile families (int/fp SPEC-style synthetics,
    scenario families, SMT pairs)."""

    FAMILIES = ("int_test", "swim", "pointer_chase", "server_icache")

    @pytest.mark.parametrize("workload", FAMILIES)
    def test_sampled_within_declared_bounds(self, workload):
        full = simulate(
            workload, CoreConfig.base(3), instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="optimized",
        )
        sampled = simulate(
            workload, CoreConfig.base(3), instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="sampled",
        )
        report = sampled.sampling
        assert report.cross_check(full.ipc), (
            f"{workload}: full={full.ipc:.4f} outside "
            f"{report.describe()}"
        )

    def test_sampled_tracks_dra_machine_too(self):
        config = CoreConfig.with_dra(3)
        full = simulate(
            "int_test", config, instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="optimized",
        )
        sampled = simulate(
            "int_test", config, instructions=24_000,
            warmup=20_000, detailed_warmup=500, backend="sampled",
        )
        assert sampled.sampling.cross_check(full.ipc)


class TestUpdateGoldenGate:
    def test_refuses_non_reference_backend(self):
        import os
        import subprocess
        import sys

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        proc = subprocess.run(
            [sys.executable, os.path.join(root, "scripts",
                                          "update_golden.py"),
             "--backend", "optimized"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 2
        assert "refusing" in proc.stderr
