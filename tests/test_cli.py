"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.workload == "swim"
        assert not args.dra
        assert args.rf == 3

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom3"])

    def test_fig_commands_registered(self):
        for name in ("fig4", "fig5", "fig6", "fig8", "fig9"):
            args = build_parser().parse_args([name])
            assert args.figure == name

    def test_rf_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--rf", "4"])


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "go+su2cor" in out

    def test_loops_inventory(self, capsys):
        assert main(["loops", "--dra", "--rf", "5"]) == 0
        out = capsys.readouterr().out
        assert "operand_resolution" in out
        assert "21264_branch_resolution" in out

    def test_run_executes_simulation(self, capsys):
        assert main(["run", "m88ksim", "--instructions", "600"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out
        assert "m88ksim" in out

    def test_run_with_dra_prints_operand_sources(self, capsys):
        assert main([
            "run", "m88ksim", "--dra", "--rf", "5", "--instructions", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "operand preread" in out

    def test_run_with_recovery_policy(self, capsys):
        assert main([
            "run", "m88ksim", "--recovery", "stall", "--instructions", "400",
        ]) == 0

    def test_fig6_renders(self, capsys):
        assert main(["fig6", "--instructions", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_fig4_with_subset(self, capsys):
        assert main([
            "fig4", "--workloads", "m88ksim", "--instructions", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "m88ksim" in out
