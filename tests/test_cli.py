"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "swim"])
        assert args.workload == "swim"
        assert not args.dra
        assert args.rf == 3

    def test_run_rejects_unknown_workload(self, capsys):
        # scenario names (trace:path, base@pattern) are open-ended, so
        # rejection happens at resolution time, not in argparse
        assert main(["run", "doom3"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_fig_commands_registered(self):
        for name in ("fig4", "fig5", "fig6", "fig8", "fig9"):
            args = build_parser().parse_args([name])
            assert args.figure == name

    def test_rf_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--rf", "4"])


class TestCommands:
    def test_workloads_lists_everything(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "swim" in out
        assert "go+su2cor" in out

    def test_loops_inventory(self, capsys):
        assert main(["loops", "--dra", "--rf", "5"]) == 0
        out = capsys.readouterr().out
        assert "operand_resolution" in out
        assert "21264_branch_resolution" in out

    def test_run_executes_simulation(self, capsys):
        assert main(["run", "m88ksim", "--instructions", "600"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out
        assert "m88ksim" in out

    def test_run_with_dra_prints_operand_sources(self, capsys):
        assert main([
            "run", "m88ksim", "--dra", "--rf", "5", "--instructions", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "operand preread" in out

    def test_run_with_recovery_policy(self, capsys):
        assert main([
            "run", "m88ksim", "--recovery", "stall", "--instructions", "400",
        ]) == 0

    def test_fig6_renders(self, capsys):
        assert main(["fig6", "--instructions", "1000"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_fig4_with_subset(self, capsys):
        assert main([
            "fig4", "--workloads", "m88ksim", "--instructions", "800",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "m88ksim" in out


class TestHarnessFlags:
    def test_campaign_flags_parse(self):
        args = build_parser().parse_args([
            "fig4", "--jobs", "2", "--cell-timeout", "5",
            "--resume", "--cache-dir", "/tmp/loopsim-cache",
        ])
        assert args.jobs == 2
        assert args.cell_timeout == 5.0
        assert args.resume
        assert args.cache_dir == "/tmp/loopsim-cache"

    def test_flags_default_off(self):
        args = build_parser().parse_args(["fig5"])
        assert args.jobs == 1
        assert args.cell_timeout is None
        assert not args.resume
        assert args.cache_dir is None
        assert not args.verify

    def test_campaign_verify_flag(self):
        args = build_parser().parse_args(["fig4", "--verify"])
        assert args.verify

    def test_verify_subcommand_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.workload == "int_test"
        assert not args.differential
        assert not args.fuzz
        assert args.budget == 30.0

    def test_verify_sweep_runs_clean(self, capsys):
        assert main([
            "verify", "--instructions", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "alpha21264" in out
        assert "pentium4" in out
        assert "ok" in out
        assert "FAIL" not in out

    def test_verify_fuzz_injection_self_test(self, capsys, tmp_path):
        """Finding a planted bug is the passing outcome for --inject."""
        out_path = str(tmp_path / "case.json")
        assert main([
            "verify", "--fuzz", "--budget", "45",
            "--inject", "skip-reissue", "--out", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert main(["verify", "--replay", out_path]) == 1
        replay_out = capsys.readouterr().out
        assert "still failing" in replay_out


class TestErrorHandling:
    def test_unknown_workload_exits_2_with_valid_list(self, capsys):
        assert main(["fig4", "--workloads", "doom3"]) == 2
        err = capsys.readouterr().err
        assert "doom3" in err
        assert "unknown workload" in err

    def test_invalid_instruction_count_exits_2(self, capsys):
        assert main(["run", "m88ksim", "--instructions", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_cached_figure_resumes_from_cache_dir(self, capsys, tmp_path):
        argv = [
            "fig6", "--instructions", "600",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # The persistent cache now holds the cell; a fresh process-level
        # memo must still reproduce the figure from disk.
        from repro.experiments import runner as runner_mod
        runner_mod._CACHE = runner_mod._RunCache()
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert any(tmp_path.glob("*/*.pkl"))
