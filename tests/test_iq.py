"""Unit tests for the clustered issue queue."""

import pytest

from repro.core.config import CoreConfig
from repro.core.iq import IssueQueue
from repro.core.regfile import PhysRegFile
from repro.isa import DynInst, MicroOp, OpClass


def make_iq(iq_entries=16, iq_ex=5, num_clusters=4):
    config = CoreConfig(
        iq_entries=iq_entries,
        iq_ex=iq_ex,
        num_clusters=num_clusters,
        issue_width=num_clusters,
    )
    rf = PhysRegFile(config.num_pregs)
    return IssueQueue(config, rf), rf


def make_inst(cluster=0, src_pregs=(), dst_preg=None):
    op = MicroOp(pc=0x100, opclass=OpClass.INT_ALU, srcs=(), dst=1)
    inst = DynInst(op=op, thread=0)
    inst.cluster = cluster
    inst.src_pregs = list(src_pregs)
    inst.dst_preg = dst_preg
    return inst


class TestCapacity:
    def test_insert_tracks_count(self):
        iq, _ = make_iq()
        iq.insert(make_inst(), cycle=0)
        assert iq.count == 1
        assert iq.has_space(15)
        assert not iq.has_space(16)

    def test_overflow_raises(self):
        iq, _ = make_iq(iq_entries=1)
        iq.insert(make_inst(), cycle=0)
        with pytest.raises(RuntimeError):
            iq.insert(make_inst(), cycle=0)


class TestSelect:
    def test_no_sources_is_ready(self):
        iq, _ = make_iq()
        inst = make_inst()
        iq.insert(inst, cycle=0)
        issued = iq.select(cycle=0)
        assert issued == [inst]
        assert inst.issue_count == 1
        assert inst.issue_cycle == 0

    def test_one_per_cluster_per_cycle(self):
        iq, _ = make_iq(num_clusters=4)
        same_cluster = [make_inst(cluster=1) for _ in range(3)]
        for inst in same_cluster:
            iq.insert(inst, cycle=0)
        assert len(iq.select(cycle=0)) == 1
        assert len(iq.select(cycle=1)) == 1
        assert len(iq.select(cycle=2)) == 1

    def test_parallel_clusters_issue_together(self):
        iq, _ = make_iq(num_clusters=4)
        for cluster in range(4):
            iq.insert(make_inst(cluster=cluster), cycle=0)
        assert len(iq.select(cycle=0)) == 4

    def test_oldest_ready_first(self):
        iq, rf = make_iq()
        older = make_inst(cluster=0)
        younger = make_inst(cluster=0)
        iq.insert(older, cycle=0)
        iq.insert(younger, cycle=0)
        assert iq.select(cycle=0) == [older]

    def test_waits_for_speculated_availability(self):
        iq, rf = make_iq(iq_ex=5)
        inst = make_inst(src_pregs=[7])
        iq.insert(inst, cycle=0)
        rf.spec_avail[7] = 12  # operand at execute-entry time 12
        assert iq.select(cycle=0) == []          # 0 + 5 < 12
        assert iq.select(cycle=6) == []          # 6 + 5 < 12
        assert iq.select(cycle=7) == [inst]      # 7 + 5 >= 12

    def test_unpublished_source_blocks(self):
        iq, rf = make_iq()
        inst = make_inst(src_pregs=[7])
        iq.insert(inst, cycle=0)
        assert rf.spec_avail[7] is None
        assert iq.select(cycle=100) == []

    def test_min_reissue_gate(self):
        iq, _ = make_iq()
        inst = make_inst()
        inst.min_reissue_cycle = 10
        iq.insert(inst, cycle=0)
        assert iq.select(cycle=9) == []
        assert iq.select(cycle=10) == [inst]


class TestReissueLifecycle:
    def test_reissued_entry_returns_by_age(self):
        iq, _ = make_iq()
        first = make_inst(cluster=0)
        second = make_inst(cluster=0)
        iq.insert(first, cycle=0)
        iq.insert(second, cycle=0)
        assert iq.select(cycle=0) == [first]
        assert iq.select(cycle=1) == [second]
        # both issued; first mis-speculates and returns to the pool
        iq.mark_reissue(first)
        assert iq.select(cycle=2) == [first]
        assert first.issue_count == 2

    def test_entry_retained_until_release(self):
        iq, _ = make_iq()
        inst = make_inst()
        iq.insert(inst, cycle=0)
        iq.select(cycle=0)
        assert iq.count == 1          # issued but still occupying (§2.2.2)
        assert iq.issued_waiting == 1
        iq.release(inst)
        assert iq.count == 0
        assert iq.issued_waiting == 0

    def test_remove_squashed_unissued(self):
        iq, _ = make_iq()
        inst = make_inst()
        iq.insert(inst, cycle=0)
        iq.remove_squashed(inst)
        assert iq.count == 0
        assert iq.select(cycle=1) == []

    def test_remove_squashed_issued(self):
        iq, _ = make_iq()
        inst = make_inst()
        iq.insert(inst, cycle=0)
        iq.select(cycle=0)
        iq.remove_squashed(inst)
        assert iq.count == 0
        assert iq.issued_waiting == 0

    def test_cluster_backlog(self):
        iq, _ = make_iq()
        iq.insert(make_inst(cluster=2), cycle=0)
        iq.insert(make_inst(cluster=2), cycle=0)
        assert iq.cluster_backlog(2) == 2
        assert iq.cluster_backlog(0) == 0


class TestReadPorts:
    def _port_limited_iq(self, ports):
        config = CoreConfig(
            iq_entries=16, iq_ex=5, num_clusters=4, issue_width=4,
            rf_read_ports=ports,
        )
        rf = PhysRegFile(config.num_pregs)
        return IssueQueue(config, rf), rf

    def test_ports_cap_issue_bandwidth(self):
        iq, rf = self._port_limited_iq(ports=2)
        for preg in (1, 2, 3, 4):
            rf.make_ready(preg, 0)
        for cluster in range(4):
            inst = make_inst(cluster=cluster, src_pregs=[1, 2])
            iq.insert(inst, cycle=0)
        # 2 ports / 2 operands each: only one instruction issues
        assert len(iq.select(cycle=0)) == 1
        assert iq.port_stalls == 3

    def test_zero_source_instructions_need_no_ports(self):
        iq, _ = self._port_limited_iq(ports=1)
        for cluster in range(4):
            iq.insert(make_inst(cluster=cluster), cycle=0)
        assert len(iq.select(cycle=0)) == 4

    def test_full_ports_never_stall(self):
        iq, rf = self._port_limited_iq(ports=16)
        for preg in (1, 2):
            rf.make_ready(preg, 0)
        for cluster in range(4):
            iq.insert(make_inst(cluster=cluster, src_pregs=[1, 2]), cycle=0)
        assert len(iq.select(cycle=0)) == 4
        assert iq.port_stalls == 0

    def test_operand_share_dedupes_same_preg_consumers(self):
        from repro.core.config import PortConfig

        config = CoreConfig(
            iq_entries=16, iq_ex=5, num_clusters=4, issue_width=4,
            rf_read_ports=2,
            ports=PortConfig(arbitration="operand_share"),
        )
        rf = PhysRegFile(config.num_pregs)
        iq = IssueQueue(config, rf)
        for preg in (1, 2):
            rf.make_ready(preg, 0)
        # four consumers of the same two pregs: oldest-first would admit
        # one (2 ports / 2 operands), operand sharing admits all four on
        # the same two broadcast reads
        for cluster in range(4):
            iq.insert(make_inst(cluster=cluster, src_pregs=[1, 2]), cycle=0)
        assert len(iq.select(cycle=0)) == 4
        assert iq.port_stalls == 0

    def test_operand_share_still_charges_distinct_pregs(self):
        from repro.core.config import PortConfig

        config = CoreConfig(
            iq_entries=16, iq_ex=5, num_clusters=4, issue_width=4,
            rf_read_ports=2,
            ports=PortConfig(arbitration="operand_share"),
        )
        rf = PhysRegFile(config.num_pregs)
        iq = IssueQueue(config, rf)
        for preg in (1, 2, 3, 4):
            rf.make_ready(preg, 0)
        # distinct operands per cluster: the second instruction's two
        # new pregs exceed the remaining zero ports
        iq.insert(make_inst(cluster=0, src_pregs=[1, 2]), cycle=0)
        iq.insert(make_inst(cluster=1, src_pregs=[3, 4]), cycle=0)
        assert len(iq.select(cycle=0)) == 1
        assert iq.port_stalls == 1

    def test_banked_ports_conflict_on_same_bank(self):
        from repro.core.config import PortConfig

        config = CoreConfig(
            iq_entries=16, iq_ex=5, num_clusters=4, issue_width=4,
            rf_read_ports=4,
            ports=PortConfig(arbitration="banked", banks=2),
        )
        rf = PhysRegFile(config.num_pregs)
        iq = IssueQueue(config, rf)
        for preg in (2, 4, 6):
            rf.make_ready(preg, 0)
        # all operands land in bank 0 (even pregs, banks=2): 2 ports per
        # bank serve the first instruction's two reads, then the next
        # same-bank pair conflicts even though 2 total ports are idle
        iq.insert(make_inst(cluster=0, src_pregs=[2, 4]), cycle=0)
        iq.insert(make_inst(cluster=1, src_pregs=[4, 6]), cycle=0)
        assert len(iq.select(cycle=0)) == 1
        assert iq.port_stalls == 1

    def test_banked_ports_spread_across_banks_issue(self):
        from repro.core.config import PortConfig

        config = CoreConfig(
            iq_entries=16, iq_ex=5, num_clusters=4, issue_width=4,
            rf_read_ports=4,
            ports=PortConfig(arbitration="banked", banks=2),
        )
        rf = PhysRegFile(config.num_pregs)
        iq = IssueQueue(config, rf)
        for preg in (1, 2, 3, 4):
            rf.make_ready(preg, 0)
        # one even + one odd operand each: both instructions fit in the
        # 2-ports-per-bank budget
        iq.insert(make_inst(cluster=0, src_pregs=[1, 2]), cycle=0)
        iq.insert(make_inst(cluster=1, src_pregs=[3, 4]), cycle=0)
        assert len(iq.select(cycle=0)) == 2
        assert iq.port_stalls == 0

    def test_port_stall_does_not_starve_forever(self):
        iq, rf = self._port_limited_iq(ports=2)
        for preg in (1, 2):
            rf.make_ready(preg, 0)
        insts = [
            make_inst(cluster=cluster, src_pregs=[1, 2])
            for cluster in range(4)
        ]
        for inst in insts:
            iq.insert(inst, cycle=0)
        issued = set()
        for cycle in range(4):
            issued.update(id(i) for i in iq.select(cycle=cycle))
        # stalled clusters retry and drain within four cycles
        assert issued == {id(i) for i in insts}

    def test_dra_issue_path_ignores_rf_ports(self):
        from repro.core.config import DRAConfig

        config = CoreConfig(
            iq_entries=16, iq_ex=3, num_clusters=4, issue_width=4,
            rf_read_ports=1, dra=DRAConfig(),
        )
        rf = PhysRegFile(config.num_pregs)
        iq = IssueQueue(config, rf)
        for preg in (1, 2):
            rf.make_ready(preg, 0)
        for cluster in range(4):
            inst = make_inst(cluster=cluster, src_pregs=[1, 2])
            iq.insert(inst, cycle=0)
        assert len(iq.select(cycle=0)) == 4
