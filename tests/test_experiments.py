"""Tests for the experiment drivers (small, fast settings)."""

import pytest

from repro.core import CoreConfig, OperandSource
from repro.experiments import (
    ExperimentSettings,
    render_loop_inventory,
    run_config,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure8,
    run_figure9,
    run_iq_size_ablation,
    run_memdep_ablation,
    run_recovery_ablation,
    run_wake_lead_ablation,
)

TINY = ExperimentSettings(instructions=1200, warmup=15_000, detailed_warmup=300)
WORKLOADS = ("m88ksim", "swim")


class TestRunner:
    def test_run_config_caches(self):
        config = CoreConfig.base()
        a = run_config("m88ksim", config, TINY)
        b = run_config("m88ksim", config, TINY)
        assert a is b

    def test_cache_key_distinguishes_configs(self):
        a = run_config("m88ksim", CoreConfig.base(), TINY)
        b = run_config("m88ksim", CoreConfig.base().with_pipe(3, 3), TINY)
        assert a is not b

    def test_seed_averaging(self):
        settings = ExperimentSettings(
            instructions=600, warmup=5_000, detailed_warmup=100, seeds=(0, 1)
        )
        point = run_config("m88ksim", CoreConfig.base(), settings)
        assert len(point.results) == 2
        ipcs = [r.ipc for r in point.results]
        assert point.ipc == pytest.approx(sum(ipcs) / 2)

    def test_settings_presets(self):
        assert ExperimentSettings.quick().instructions < \
            ExperimentSettings.full().instructions


class TestFigure4:
    def test_shapes_and_reference_point(self):
        result = run_figure4(TINY, workloads=WORKLOADS)
        for workload in WORKLOADS:
            values = result.rows[workload]
            assert len(values) == 4
            assert values[0] == pytest.approx(1.0)

    def test_longer_pipes_lose_performance(self):
        result = run_figure4(TINY, workloads=("compress",))
        assert result.loss_at_longest("compress") > 0.05

    def test_render_mentions_workloads(self):
        result = run_figure4(TINY, workloads=("m88ksim",))
        assert "m88ksim" in result.render()


class TestFigure5:
    def test_reference_point_is_unity(self):
        result = run_figure5(TINY, workloads=("swim",))
        assert result.rows["swim"][0] == pytest.approx(1.0)

    def test_shorter_iq_ex_does_not_hurt(self):
        result = run_figure5(TINY, workloads=("swim",))
        assert result.gain_at_best("swim") > -0.02

    def test_render(self):
        result = run_figure5(TINY, workloads=("swim",))
        assert "9_3" in result.render()


class TestFigure6:
    def test_cdf_properties(self):
        result = run_figure6(TINY)
        assert 0.0 < result.covered_by_forwarding < 1.0
        assert 0.0 <= result.beyond_25_cycles < 0.6
        assert "Figure 6" in result.render()

    def test_long_tail_exists(self):
        result = run_figure6(TINY)
        assert result.cdf.max > 25


class TestFigure8:
    def test_speedup_table_shape(self):
        result = run_figure8(TINY, workloads=("compress",), rf_latencies=(3, 7))
        assert len(result.rows["compress"]) == 2
        assert result.speedup("compress", 7) == result.rows["compress"][1]

    def test_dra_helps_compress(self):
        result = run_figure8(TINY, workloads=("compress",), rf_latencies=(7,))
        assert result.speedup("compress", 7) > 1.0

    def test_best_gain(self):
        result = run_figure8(TINY, workloads=("compress",), rf_latencies=(7,))
        assert result.best_gain(7) == result.speedup("compress", 7) - 1.0


class TestFigure9:
    def test_fractions_sum_to_one(self):
        result = run_figure9(TINY, workloads=("swim",))
        total = sum(result.rows["swim"].values())
        assert total == pytest.approx(1.0)

    def test_forwarding_dominates(self):
        result = run_figure9(TINY, workloads=("swim",))
        assert result.fraction("swim", OperandSource.FORWARD) > 0.5

    def test_render(self):
        result = run_figure9(TINY, workloads=("swim",))
        assert "fwd buffer" in result.render()


class TestAblations:
    def test_recovery_policies_ordered(self):
        result = run_recovery_ablation(TINY, workloads=("swim",))
        assert result.relative("reissue", "swim") == pytest.approx(1.0)
        assert result.relative("refetch", "swim") < 1.0
        assert result.relative("stall", "swim") < 1.0

    def test_wake_lead_variants_run(self):
        result = run_wake_lead_ablation(TINY, workloads=("swim",),
                                        leads=(0, 12))
        assert set(result.variants) == {"lead-0", "lead-12"}
        assert result.relative("lead-0", "swim") == pytest.approx(1.0)

    def test_iq_size_small_queue_throttles(self):
        result = run_iq_size_ablation(TINY, workloads=("swim",),
                                      sizes=(16, 128))
        assert result.relative("iq-16", "swim") < \
            result.relative("iq-128", "swim")

    def test_memdep_variants_run(self):
        result = run_memdep_ablation(TINY, workloads=("swim",))
        assert result.aux["conservative"]["swim"] == 0
        assert result.relative("predict", "swim") == pytest.approx(1.0)


class TestLoopInventory:
    def test_contains_paper_numbers(self):
        text = render_loop_inventory()
        assert "load_resolution" in text
        assert "21264_branch_resolution" in text

    def test_dra_adds_operand_loop(self):
        text = render_loop_inventory(CoreConfig.with_dra())
        assert "operand_resolution" in text
