"""Unit tests for the generator's internal walkers and site models."""

import random

import pytest

from repro.workloads.generator import (
    _BranchSite,
    _PagedWalker,
    _RegionWalker,
    _StreamWalker,
)


class TestRegionWalker:
    def test_addresses_stay_in_pool(self):
        rng = random.Random(0)
        walker = _RegionWalker(base=1 << 20, size_bytes=4096, rng=rng)
        for _ in range(500):
            addr = walker.next_address()
            assert (1 << 20) <= addr < (1 << 20) + 4096

    def test_addresses_are_word_aligned(self):
        # word-granular addresses: load/store conflict checks are 8-byte
        walker = _RegionWalker(0, 4096, random.Random(1))
        for _ in range(100):
            assert walker.next_address() % 8 == 0

    def test_small_pool_is_one_line(self):
        walker = _RegionWalker(0, 32, random.Random(2))
        lines = {walker.next_address() // 64 for _ in range(50)}
        assert lines == {0}


class TestPagedWalker:
    def test_dwell_controls_page_changes(self):
        walker = _PagedWalker(base=0, pages=1000, page_bytes=8192,
                              dwell=10, rng=random.Random(3))
        pages = [walker.next_address() // 8192 for _ in range(100)]
        changes = sum(a != b for a, b in zip(pages, pages[1:]))
        # ~1 page hop per 10 accesses
        assert changes <= 15

    def test_dwell_one_hops_every_access(self):
        walker = _PagedWalker(base=0, pages=10_000, page_bytes=8192,
                              dwell=1, rng=random.Random(4))
        pages = {walker.next_address() // 8192 for _ in range(200)}
        assert len(pages) > 150

    def test_addresses_span_the_footprint(self):
        walker = _PagedWalker(base=0, pages=64, page_bytes=8192,
                              dwell=1, rng=random.Random(5))
        pages = {walker.next_address() // 8192 for _ in range(2000)}
        assert len(pages) > 48
        assert max(pages) < 64


class TestStreamWalker:
    def test_monotone_addresses(self):
        walker = _StreamWalker(base=100, stride=16)
        addrs = [walker.next_address() for _ in range(10)]
        assert addrs == sorted(addrs)
        assert addrs[1] - addrs[0] == 16

    def test_one_line_per_stride_group(self):
        walker = _StreamWalker(base=0, stride=16)
        lines = [walker.next_address() // 64 for _ in range(64)]
        # 4 accesses per 64B line at stride 16
        assert len(set(lines)) == pytest.approx(16, abs=1)


class TestBranchSite:
    def test_loop_site_pattern(self):
        site = _BranchSite(pc=0, target=64, is_loop=True, bias=0.5, trip=3)
        rng = random.Random(0)
        outcomes = [site.next_outcome(rng) for _ in range(8)]
        assert outcomes == [True, True, True, False, True, True, True, False]

    def test_random_site_respects_bias(self):
        site = _BranchSite(pc=0, target=64, is_loop=False, bias=0.9, trip=1)
        rng = random.Random(0)
        taken = sum(site.next_outcome(rng) for _ in range(2000))
        assert 0.85 < taken / 2000 < 0.95
