"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import CoreConfig, simulate
from repro.obs import (
    EventBus,
    MetricsCollector,
    MetricsRegistry,
)
from repro.obs.attribution import (
    BRANCH_LOOP,
    LOAD_LOOP,
    OPERAND_LOOP,
    OTHER,
    PORT_PRESSURE,
    LoopAttribution,
)
from repro.obs.events import (
    FetchEvent,
    IssueEvent,
    RetireEvent,
)
from repro.obs.export import ChromeTraceExporter, JsonlExporter, result_snapshot
from repro.obs.metrics import Counter, Histogram, TimeSeries, merge_snapshots


SIM_KW = dict(instructions=1500, warmup=5_000, detailed_warmup=200, seed=3)


def traced_run(workload="m88ksim", config=None, **subscribe):
    """Run one small simulation with a bus and standard subscribers."""
    config = config or CoreConfig.base()
    bus = EventBus()
    attached = {}
    if subscribe.get("metrics", True):
        attached["metrics"] = MetricsCollector(bus)
    if subscribe.get("attribution", True):
        attached["attribution"] = LoopAttribution(bus, config)
    result = simulate(workload, config, obs=bus, **SIM_KW)
    return result, bus, attached


class TestEventBus:
    def test_typed_subscription_receives_only_that_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(FetchEvent, got.append)
        fetch = FetchEvent(cycle=1, uid=1, thread=0, pc=0x40, opclass="alu")
        bus.emit(fetch)
        bus.emit(RetireEvent(cycle=2, uid=1, thread=0))
        assert got == [fetch]
        assert bus.events_emitted == 2

    def test_wildcard_subscription_receives_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(None, got.append)
        bus.emit(FetchEvent(cycle=1, uid=1, thread=0, pc=0, opclass="alu"))
        bus.emit(RetireEvent(cycle=2, uid=1, thread=0))
        assert len(got) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(RetireEvent, got.append)
        bus.unsubscribe(RetireEvent, got.append)
        bus.emit(RetireEvent(cycle=1, uid=1, thread=0))
        assert got == []

    def test_subscriber_count(self):
        bus = EventBus()
        assert bus.subscriber_count == 0
        bus.subscribe(RetireEvent, lambda e: None)
        bus.subscribe(None, lambda e: None)
        assert bus.subscriber_count == 2

    def test_event_to_dict_carries_kind(self):
        record = IssueEvent(cycle=7, uid=3, thread=1, epoch=2).to_dict()
        assert record == {
            "kind": "issue", "cycle": 7, "uid": 3, "thread": 1, "epoch": 2,
        }


class TestMetricInstruments:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.snapshot() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_histogram_quantiles(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 4, 5):
            hist.observe(value)
        assert hist.mean == pytest.approx(3.0)
        assert hist.quantile(0.5) == 3
        assert hist.quantile(1.0) == 5
        assert hist.max == 5
        snap = hist.snapshot()
        assert snap["count"] == 5.0
        assert snap["p50"] == 3.0

    def test_histogram_empty(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0
        assert hist.snapshot()["count"] == 0.0

    def test_timeseries_ring_buffer(self):
        series = TimeSeries("t", capacity=2)
        series.sample(1, 0.5)
        series.sample(2, 0.6)
        series.sample(3, 0.7)
        assert series.samples() == [(2, 0.6), (3, 0.7)]
        assert series.dropped == 1
        assert series.snapshot()["count"] == 3.0

    def test_registry_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.histogram("a")

    def test_registry_snapshot_flattens(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        registry.histogram("h").observe(2)
        snap = registry.snapshot()
        assert snap["n"] == 3
        assert snap["h.count"] == 1.0
        assert "h.p50" in snap

    def test_merge_snapshots(self):
        merged = merge_snapshots([{"a": 1, "b": 2.5}, {"a": 4}])
        assert merged == {"a": 5, "b": 2.5}


class TestZeroOverhead:
    def test_traced_run_is_bit_identical(self):
        baseline = simulate("m88ksim", CoreConfig.base(), **SIM_KW)
        traced, bus, _ = traced_run("m88ksim")
        assert traced.ipc == baseline.ipc
        assert traced.stats.cycles == baseline.stats.cycles
        assert bus.events_emitted > 0

    def test_no_bus_means_no_probes(self):
        result = simulate("m88ksim", CoreConfig.base(), **SIM_KW)
        # without obs= the simulator never sees a bus and the snapshot
        # field stays unset
        assert result.stats.obs_snapshot is None


class TestMetricsCollector:
    @pytest.mark.parametrize("config", [
        CoreConfig.base(), CoreConfig.with_dra(),
    ], ids=["base", "dra"])
    def test_event_counts_reconcile_with_core_stats(self, config):
        result, _, attached = traced_run("go", config)
        mismatches = attached["metrics"].verify_against(result.stats)
        assert mismatches == []

    def test_snapshot_into_stats(self):
        result, _, attached = traced_run()
        snap = attached["metrics"].snapshot_into(result.stats)
        assert result.stats.obs_snapshot is snap
        assert snap["obs.retired"] == result.stats.retired
        assert snap["obs.cycles"] == result.stats.cycles
        assert snap["obs.inst.lifetime_cycles.count"] > 0

    def test_dra_run_counts_operand_sources(self):
        result, _, attached = traced_run("swim", CoreConfig.with_dra())
        snap = attached["metrics"].snapshot()
        sourced = sum(
            value for key, value in snap.items()
            if key.startswith("obs.operand.") and key != "obs.operand.regfile"
        )
        assert sourced > 0
        assert "obs.operand.regfile" not in snap


class TestAttribution:
    @pytest.mark.parametrize("config", [
        CoreConfig.base(), CoreConfig.with_dra(),
    ], ids=["base", "dra"])
    def test_reconciliation(self, config):
        result, _, attached = traced_run("go", config)
        report = attached["attribution"].report(
            result.stats, workload="go", config_label=config.label
        )
        # every attributed cycle lands in exactly one bucket
        assert report.reconciles
        assert report.useful_cycles + report.lost_cycles == report.total_cycles
        assert report.total_cycles > 0
        names = {entry.name for entry in report.entries}
        assert names == {
            BRANCH_LOOP, LOAD_LOOP, OPERAND_LOOP, PORT_PRESSURE, OTHER,
        }

    def test_branch_loop_is_active(self):
        result, _, attached = traced_run("go")
        report = attached["attribution"].report(result.stats)
        branch = report.entry(BRANCH_LOOP)
        assert branch.occurrences > 0
        assert branch.misspeculations > 0
        assert 0.0 < branch.misspeculation_rate < 1.0
        assert branch.loop_delay > 0

    def test_operand_loop_only_under_dra(self):
        _, _, base = traced_run("go", CoreConfig.base())
        _, _, dra = traced_run("go", CoreConfig.with_dra())
        assert base["attribution"].report().entry(OPERAND_LOOP).occurrences == 0
        assert dra["attribution"].report().entry(OPERAND_LOOP).occurrences > 0

    def test_report_renders_and_serialises(self):
        result, _, attached = traced_run("go")
        report = attached["attribution"].report(
            result.stats, workload="go", config_label="Base:5_5"
        )
        text = report.render()
        assert "reconciles" in text
        assert "DOES NOT" not in text
        payload = report.to_dict()
        assert payload["workload"] == "go"
        assert len(payload["loops"]) == 5
        json.dumps(payload)  # must be JSON-clean

    def test_lost_ipc_sums_to_sensible_range(self):
        result, _, attached = traced_run("go")
        report = attached["attribution"].report(result.stats)
        for entry in report.entries:
            assert report.lost_ipc(entry.name) >= 0.0

    def test_port_pressure_bucket_reconciles_when_starved(self):
        config = CoreConfig.base(5, rf_read_ports=4)
        result, _, attached = traced_run("go", config)
        report = attached["attribution"].report(result.stats)
        assert report.reconciles
        port = report.entry(PORT_PRESSURE)
        # the occurrence count is exactly the kernel's dropped-issue
        # counter — the stat this PR stops losing
        assert port.occurrences == result.stats.port_stalls
        assert port.occurrences > 0
        assert attached["metrics"].verify_against(result.stats) == []

    def test_port_pressure_silent_with_full_ports(self):
        result, _, attached = traced_run("go", CoreConfig.base(5))
        report = attached["attribution"].report(result.stats)
        assert result.stats.port_stalls == 0
        assert report.entry(PORT_PRESSURE).occurrences == 0


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        config = CoreConfig.base()
        bus = EventBus()
        with JsonlExporter(bus, str(path)) as exporter:
            simulate("m88ksim", config, obs=bus, **SIM_KW)
        assert exporter.events_written > 0
        lines = path.read_text().splitlines()
        assert len(lines) == exporter.events_written
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"fetch", "issue", "retire", "cycle"} <= kinds

    def test_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        config = CoreConfig.base()
        bus = EventBus()
        exporter = ChromeTraceExporter(bus)
        simulate("m88ksim", config, obs=bus, **SIM_KW)
        count = exporter.write(str(path))
        assert count > 0
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == count
        slices = [e for e in events if e.get("ph") == "X"]
        assert slices
        # cycle timestamps are monotone non-negative and slices have
        # positive duration
        assert all(e["ts"] >= 0 and e["dur"] >= 1 for e in slices)

    def test_result_snapshot(self):
        result, _, attached = traced_run("swim", CoreConfig.with_dra())
        attached["metrics"].snapshot_into(result.stats)
        snapshot = result_snapshot(result)
        assert snapshot["workload"] == "swim"
        assert snapshot["ipc"] == result.ipc
        assert snapshot["loops"]
        assert "operand_sources" in snapshot
        assert snapshot["metrics"]["obs.retired"] == result.stats.retired
        json.dumps(snapshot)


class TestCLI:
    def test_trace_out_chrome(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        assert main([
            "run", "int_test", "--instructions", "800",
            "--trace-out", str(out),
        ]) == 0
        assert json.loads(out.read_text())["traceEvents"]
        assert "trace" in capsys.readouterr().out

    def test_trace_out_jsonl(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.jsonl"
        assert main([
            "run", "int_test", "--instructions", "800",
            "--trace-out", str(out),
        ]) == 0
        first = out.read_text().splitlines()[0]
        assert "kind" in json.loads(first)

    def test_attribute_subcommand(self, capsys):
        from repro.__main__ import main

        assert main([
            "attribute", "int_test", "--instructions", "800", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "Measured loop attribution" in out
        assert "reconciles" in out
