"""Exact-integer regression pins for the core timing model.

Baseline and DRA machines at RF read latency 3/5/7 must reproduce the
checked-in ``tests/golden/ipc_numbers.json`` *exactly* — cycles,
retirements and reissue counts.  Any timing-model change, intended or
not, trips these tests; intended changes regenerate the file with::

    PYTHONPATH=src python scripts/update_golden.py

and the diff of the JSON becomes part of the review.
"""

import json
import os

import pytest

from repro.core.backend import available_backends, get_backend
from repro.core.config import CoreConfig
from repro.core.simulator import simulate
from repro.perfhist.profile import golden_cells

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "ipc_numbers.json"
)

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

#: Every exact backend must reproduce the pins bit for bit; inexact
#: backends (sampled) are held to their error bounds elsewhere.
EXACT_BACKENDS = [
    name for name in available_backends() if get_backend(name).exact
]


#: label -> CoreConfig, owned by repro.perfhist.profile (the same
#: geometry scripts/update_golden.py regenerates from) so the test and
#: the updater can never disagree about what a label means.
_CELL_CONFIGS = dict(golden_cells())


def _config_for(label: str) -> CoreConfig:
    return _CELL_CONFIGS[label]


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("label", sorted(GOLDEN["cells"]))
def test_golden_cell(label, backend):
    expected = GOLDEN["cells"][label]
    run = GOLDEN["run"]
    config = _config_for(label)
    assert config.label == expected["pipe"], (
        "pipeline geometry drifted; regenerate the golden file if this "
        "is intentional"
    )
    stats = simulate(
        run["workload"],
        config,
        instructions=run["instructions"],
        warmup=run["warmup"],
        detailed_warmup=run["detailed_warmup"],
        seed=run["seed"],
        backend=backend,
    ).stats
    got = {
        "pipe": config.label,
        "cycles": stats.cycles,
        "retired": stats.retired,
        "total_reissues": stats.total_reissues,
    }
    assert got == expected, (
        f"{label} [{backend}]: timing diverged from the golden pin; if "
        f"the change is intentional run scripts/update_golden.py and "
        f"review the diff (pins regenerate from reference only)"
    )


def test_golden_file_covers_all_machine_families():
    """Pins span base, DRA, and port-starved base at every RF latency."""
    labels = set(GOLDEN["cells"])
    for rf in (3, 5, 7):
        assert f"base_rf{rf}" in labels
        assert f"dra_rf{rf}" in labels
        assert f"base_p4_rf{rf}" in labels
    assert labels == set(_CELL_CONFIGS), (
        "golden file cells drifted from repro.perfhist.profile."
        "golden_cells(); rerun scripts/update_golden.py"
    )


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
@pytest.mark.parametrize("label", sorted(GOLDEN["scenario_cells"]))
def test_scenario_golden_cell(label, backend):
    """Scenario-family workloads pin exactly, like the core cells.

    Each cell embeds its own run geometry so families with different
    characteristics can pick suitable warmups.
    """
    expected = GOLDEN["scenario_cells"][label]
    run = expected["run"]
    if run["kind"] == "dra":
        config = CoreConfig.with_dra(run["rf"])
    else:
        config = CoreConfig.base(run["rf"])
    assert config.label == expected["pipe"]
    stats = simulate(
        run["workload"],
        config,
        instructions=run["instructions"],
        warmup=run["warmup"],
        detailed_warmup=run["detailed_warmup"],
        seed=run["seed"],
        backend=backend,
    ).stats
    got = {
        "cycles": stats.cycles,
        "retired": stats.retired,
        "total_reissues": stats.total_reissues,
    }
    assert got == {
        key: expected[key] for key in got
    }, (
        f"{label} [{backend}]: timing diverged from the golden pin; if "
        f"the change is intentional run scripts/update_golden.py and "
        f"review the diff"
    )


def test_scenario_pins_cover_a_new_family():
    """At least one scenario-family workload stays pinned."""
    families = {
        cell["run"]["workload"]
        for cell in GOLDEN["scenario_cells"].values()
    }
    assert "pointer_chase" in families
