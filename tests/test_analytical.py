"""Tests for the §1 analytical loop-cost ledger."""

import pytest

from repro import CoreConfig, simulate
from repro.loops import attribute_slowdown, build_ledger


@pytest.fixture(scope="module")
def compress_run():
    return simulate("compress", CoreConfig.base(), instructions=4000,
                    warmup=60_000, detailed_warmup=600)


@pytest.fixture(scope="module")
def swim_run():
    return simulate("swim", CoreConfig.base(), instructions=4000,
                    warmup=60_000, detailed_warmup=600)


class TestLedger:
    def test_entries_cover_active_loops(self, compress_run):
        ledger = build_ledger(compress_run.config, compress_run.stats)
        names = {e.loop.name for e in ledger.entries}
        assert {"branch_resolution", "load_resolution",
                "memory_dependence", "dtlb_trap"} <= names

    def test_event_math(self, compress_run):
        ledger = build_ledger(compress_run.config, compress_run.stats)
        branch = ledger.entry("branch_resolution")
        assert branch.occurrences == compress_run.stats.cond_branches
        assert branch.min_cycles_lost == (
            branch.misspeculations * branch.loop.min_misspeculation_impact
        )
        assert 0.0 <= branch.misspeculation_rate <= 1.0

    def test_total_is_sum_of_entries(self, compress_run):
        ledger = build_ledger(compress_run.config, compress_run.stats)
        assert ledger.total_min_cycles_lost == sum(
            e.min_cycles_lost for e in ledger.entries
        )
        assert 0.0 <= ledger.predicted_loss_fraction <= 1.0

    def test_unknown_loop_lookup_raises(self, compress_run):
        ledger = build_ledger(compress_run.config, compress_run.stats)
        with pytest.raises(KeyError):
            ledger.entry("warp_drive")

    def test_render(self, compress_run):
        ledger = build_ledger(compress_run.config, compress_run.stats)
        text = ledger.render()
        assert "branch_resolution" in text
        assert "cycle-equivalents" in text


class TestAttribution:
    def test_compress_is_branch_bound(self, compress_run):
        """§3.1: compress's losses come from the branch loop."""
        top = attribute_slowdown(compress_run.config, compress_run.stats,
                                 top=1)
        assert top == ["branch_resolution"]

    def test_swim_is_load_bound(self, swim_run):
        """§3.1: swim's losses come from the load loop."""
        top = attribute_slowdown(swim_run.config, swim_run.stats, top=1)
        assert top == ["load_resolution"]

    def test_operand_loop_appears_only_with_dra(self, swim_run):
        dra_run = simulate("apsi", CoreConfig.with_dra(5), instructions=3000,
                           warmup=40_000, detailed_warmup=400)
        dra_names = {e.loop.name
                     for e in build_ledger(dra_run.config, dra_run.stats).entries}
        base_names = {e.loop.name
                      for e in build_ledger(swim_run.config, swim_run.stats).entries}
        assert "operand_resolution" in dra_names
        assert "operand_resolution" not in base_names
