"""Unit tests for the DRA hardware structures (§5)."""

import pytest

from repro.core.config import DRAConfig
from repro.core.dra import (
    ClusterRegisterCache,
    DRAEngine,
    InsertionTable,
    RegisterPreReadFilteringTable,
)
from repro.core.stats import CoreStats


def make_engine(**dra_overrides) -> DRAEngine:
    return DRAEngine(
        DRAConfig(**dra_overrides), num_pregs=64, num_clusters=4,
        stats=CoreStats(),
    )


class TestRPFT:
    def test_set_on_writeback_cleared_on_allocate(self):
        rpft = RegisterPreReadFilteringTable(8)
        assert not rpft.is_completed(3)
        rpft.on_writeback(3)
        assert rpft.is_completed(3)
        rpft.on_allocate(3)
        assert not rpft.is_completed(3)


class TestInsertionTable:
    def test_increment_saturates_at_counter_max(self):
        stats = CoreStats()
        table = InsertionTable(8, counter_max=3, stats=stats)
        for _ in range(5):
            table.increment(2)
        assert table.count(2) == 3
        assert stats.insertion_saturations == 2

    def test_decrement_floors_at_zero(self):
        table = InsertionTable(8, counter_max=3, stats=CoreStats())
        table.decrement(2)
        assert table.count(2) == 0
        table.increment(2)
        table.decrement(2)
        table.decrement(2)
        assert table.count(2) == 0

    def test_clear(self):
        table = InsertionTable(8, counter_max=3, stats=CoreStats())
        table.increment(2)
        table.clear(2)
        assert table.count(2) == 0


class TestCRC:
    def test_fifo_eviction(self):
        stats = CoreStats()
        crc = ClusterRegisterCache(entries=2, stats=stats)
        crc.insert(1)
        crc.insert(2)
        crc.insert(3)  # evicts 1 (oldest)
        assert not crc.contains(1)
        assert crc.contains(2)
        assert crc.contains(3)
        assert stats.crc_evictions == 1

    def test_lookup_does_not_refresh_fifo_order(self):
        # replacement is strictly FIFO (§5.1), not LRU
        crc = ClusterRegisterCache(entries=2, stats=CoreStats())
        crc.insert(1)
        crc.insert(2)
        crc.contains(1)   # a read must NOT protect entry 1
        crc.insert(3)     # still evicts 1
        assert not crc.contains(1)

    def test_duplicate_insert_is_noop(self):
        stats = CoreStats()
        crc = ClusterRegisterCache(entries=2, stats=stats)
        crc.insert(1)
        crc.insert(1)
        assert len(crc) == 1
        assert stats.crc_insertions == 1

    def test_invalidate_stale_entry(self):
        stats = CoreStats()
        crc = ClusterRegisterCache(entries=4, stats=stats)
        crc.insert(1)
        crc.invalidate(1)
        assert not crc.contains(1)
        assert stats.crc_invalidations == 1

    def test_invalidate_missing_entry_is_noop(self):
        stats = CoreStats()
        crc = ClusterRegisterCache(entries=4, stats=stats)
        crc.invalidate(9)
        assert stats.crc_invalidations == 0


class TestDRAEngine:
    def test_preread_succeeds_for_completed_operand(self):
        engine = make_engine()
        engine.rpft.on_writeback(5)
        assert engine.try_preread(5, cluster=0)
        assert engine.tables[0].count(5) == 0

    def test_failed_preread_routes_to_consumer_cluster_table(self):
        engine = make_engine()
        assert not engine.try_preread(5, cluster=2)
        assert engine.tables[2].count(5) == 1
        assert engine.tables[0].count(5) == 0

    def test_writeback_inserts_into_clusters_with_consumers(self):
        engine = make_engine()
        engine.try_preread(5, cluster=1)
        engine.try_preread(5, cluster=3)
        engine.on_writeback(5)
        assert not engine.crcs[0].contains(5)
        assert engine.crcs[1].contains(5)
        assert engine.crcs[3].contains(5)
        assert engine.tables[1].count(5) == 0
        assert engine.rpft.is_completed(5)

    def test_forwarding_read_decrements_consumer_count(self):
        engine = make_engine()
        engine.try_preread(5, cluster=1)
        engine.on_forward_read(5, cluster=1)
        engine.on_writeback(5)
        # the only consumer was served by the forwarding buffer: the
        # value is filtered out of the CRC (§5.3)
        assert not engine.crcs[1].contains(5)

    def test_saturation_miss_mechanism(self):
        """The §5.4 scenario: >3 consumers, 3 forwarding hits, straggler
        misses because the count went to zero before writeback."""
        engine = make_engine()
        for _ in range(4):               # 4 consumers, counter caps at 3
            engine.try_preread(5, cluster=0)
        for _ in range(3):               # 3 of them hit the fwd buffer
            engine.on_forward_read(5, cluster=0)
        engine.on_writeback(5)           # count==0: no insertion
        assert not engine.crc_lookup(5, cluster=0)

    def test_allocation_clears_everything(self):
        engine = make_engine()
        engine.try_preread(5, cluster=1)
        engine.on_writeback(5)
        engine.on_allocate(5)
        assert not engine.rpft.is_completed(5)
        assert engine.tables[1].count(5) == 0
        assert not engine.crcs[1].contains(5)

    def test_oracle_crc_prefers_evicting_exhausted_entries(self):
        engine = make_engine(oracle_crc=True, crc_entries=2)
        # two cached values, one consumer each
        engine.try_preread(5, cluster=0)
        engine.on_writeback(5)
        engine.try_preread(6, cluster=0)
        engine.on_writeback(6)
        # value 5's only consumer reads it: entry 5 is exhausted
        assert engine.crc_lookup(5, cluster=0)
        # a third value arrives: the oracle evicts 5 (done), keeps 6
        engine.try_preread(7, cluster=0)
        engine.on_writeback(7)
        assert engine.crc_lookup(6, cluster=0)
        assert engine.crc_lookup(7, cluster=0)
        assert not engine.crc_lookup(5, cluster=0)

    def test_fifo_crc_ignores_consumer_exhaustion(self):
        engine = make_engine(crc_entries=2)
        engine.try_preread(5, cluster=0)
        engine.on_writeback(5)
        engine.try_preread(6, cluster=0)
        engine.on_writeback(6)
        engine.crc_lookup(6, cluster=0)  # 6 exhausted, but FIFO ignores it
        engine.try_preread(7, cluster=0)
        engine.on_writeback(7)           # strict FIFO evicts 5 (oldest)
        assert not engine.crc_lookup(5, cluster=0)
        assert engine.crc_lookup(6, cluster=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DRAConfig(crc_entries=0)
        with pytest.raises(ValueError):
            DRAConfig(counter_bits=0)
        with pytest.raises(ValueError):
            DRAConfig(payload_transit=-1)
        assert DRAConfig(counter_bits=2).counter_max == 3
