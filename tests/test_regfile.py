"""Unit tests for the physical register file and renaming."""

import pytest

from repro.core.regfile import PhysRegFile, RenameMap
from repro.isa.registers import NUM_ARCH_REGS


class TestPhysRegFile:
    def test_allocation_resets_timing_state(self):
        rf = PhysRegFile(8)
        preg = rf.allocate()
        rf.make_ready(preg, 5)
        rf.free(preg)
        again = rf.allocate()
        assert again == preg
        assert rf.spec_avail[again] is None
        assert rf.avail[again] is None
        assert rf.writeback[again] is None

    def test_free_count_tracks(self):
        rf = PhysRegFile(4)
        assert rf.free_count == 4
        a = rf.allocate()
        assert rf.free_count == 3
        rf.free(a)
        assert rf.free_count == 4

    def test_exhaustion_raises(self):
        rf = PhysRegFile(2)
        rf.allocate()
        rf.allocate()
        assert not rf.can_allocate()
        with pytest.raises(RuntimeError):
            rf.allocate()

    def test_make_ready(self):
        rf = PhysRegFile(2)
        preg = rf.allocate()
        rf.make_ready(preg, 7)
        assert rf.spec_avail[preg] == 7
        assert rf.avail[preg] == 7
        assert rf.writeback[preg] == 7

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PhysRegFile(0)

    def test_double_free_raises(self):
        rf = PhysRegFile(4)
        preg = rf.allocate()
        rf.free(preg)
        with pytest.raises(RuntimeError, match="double free"):
            rf.free(preg)

    def test_free_unallocated_raises(self):
        rf = PhysRegFile(4)
        # never allocated: still on the free list
        with pytest.raises(RuntimeError, match="double free"):
            rf.free(2)

    def test_free_out_of_range_raises(self):
        rf = PhysRegFile(4)
        with pytest.raises(RuntimeError, match="out of range"):
            rf.free(17)


class TestRenameMap:
    def test_initial_state_is_ready(self):
        rf = PhysRegFile(256)
        rmap = RenameMap(rf, start_cycle=0)
        assert len(rmap.map) == NUM_ARCH_REGS
        for arch in range(NUM_ARCH_REGS):
            preg = rmap.lookup(arch)
            assert rf.avail[preg] == 0

    def test_rename_dest_changes_mapping(self):
        rf = PhysRegFile(256)
        rmap = RenameMap(rf)
        old = rmap.lookup(5)
        new, prev = rmap.rename_dest(5)
        assert prev == old
        assert rmap.lookup(5) == new
        assert new != old

    def test_undo_rename_restores(self):
        rf = PhysRegFile(256)
        rmap = RenameMap(rf)
        old = rmap.lookup(5)
        free_before = rf.free_count
        new, prev = rmap.rename_dest(5)
        rmap.undo_rename(5, new, prev)
        assert rmap.lookup(5) == old
        assert rf.free_count == free_before

    def test_undo_out_of_order_rejected(self):
        rf = PhysRegFile(256)
        rmap = RenameMap(rf)
        new1, prev1 = rmap.rename_dest(5)
        new2, prev2 = rmap.rename_dest(5)
        with pytest.raises(RuntimeError):
            rmap.undo_rename(5, new1, prev1)  # must undo new2 first
        rmap.undo_rename(5, new2, prev2)
        rmap.undo_rename(5, new1, prev1)

    def test_two_threads_share_free_list(self):
        rf = PhysRegFile(256)
        t0 = RenameMap(rf)
        t1 = RenameMap(rf)
        assert rf.free_count == 256 - 2 * NUM_ARCH_REGS
        assert set(t0.map).isdisjoint(set(t1.map))

    def test_squash_undo_cannot_free_twice(self):
        """The squash path's undo_rename flows through the free guard.

        A rename undone by a branch-squash walk returns its new preg to
        the free list exactly once; a buggy second walk over the same
        instruction must fault loudly instead of corrupting the list.
        """
        rf = PhysRegFile(256)
        rmap = RenameMap(rf)
        new, prev = rmap.rename_dest(5)
        rmap.undo_rename(5, new, prev)
        with pytest.raises(RuntimeError, match="double free"):
            rf.free(new)

    def test_refetch_squash_run_survives_free_guard(self):
        """End-to-end REFETCH run: heavy squashing never double-frees."""
        from repro.core.config import CoreConfig, LoadRecovery
        from repro.core.simulator import simulate

        stats = simulate(
            "int_test",
            CoreConfig.base(3, load_recovery=LoadRecovery.REFETCH),
            instructions=800, warmup=5_000, detailed_warmup=200, seed=0,
        ).stats
        assert stats.retired >= 800
