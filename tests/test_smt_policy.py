"""Unit tests for SMT fetch arbitration."""

from dataclasses import dataclass

import pytest

from repro.smt import choose_fetch_thread


@dataclass
class FakeThread:
    tid: int
    icount: int


class TestICount:
    def test_picks_emptiest_thread(self):
        threads = [FakeThread(0, 30), FakeThread(1, 10)]
        assert choose_fetch_thread(threads, "icount").tid == 1

    def test_empty_eligible_list(self):
        assert choose_fetch_thread([], "icount") is None

    def test_single_thread(self):
        assert choose_fetch_thread([FakeThread(0, 5)], "icount").tid == 0

    def test_ties_pick_first(self):
        threads = [FakeThread(0, 10), FakeThread(1, 10)]
        assert choose_fetch_thread(threads, "icount").tid == 0


class TestRoundRobin:
    def test_alternates(self):
        threads = [FakeThread(0, 0), FakeThread(1, 100)]
        first = choose_fetch_thread(threads, "round_robin", last_tid=-1)
        second = choose_fetch_thread(threads, "round_robin", last_tid=first.tid)
        assert {first.tid, second.tid} == {0, 1}

    def test_wraps_around(self):
        threads = [FakeThread(0, 0), FakeThread(1, 0)]
        assert choose_fetch_thread(threads, "round_robin", last_tid=1).tid == 0

    def test_skips_ineligible(self):
        threads = [FakeThread(2, 0)]
        assert choose_fetch_thread(threads, "round_robin", last_tid=0).tid == 2

    def test_empty(self):
        assert choose_fetch_thread([], "round_robin") is None


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        choose_fetch_thread([FakeThread(0, 0)], "priority")
