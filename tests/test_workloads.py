"""Unit tests for the synthetic workload substrate."""

import itertools

import pytest

from repro.isa import OpClass, ZERO_REG
from repro.workloads import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    INT_WORKLOADS,
    InstructionMix,
    SMT_PAIRS,
    SPEC95_PROFILES,
    SyntheticTraceGenerator,
    workload_profiles,
)


class TestInstructionMix:
    def test_fractions_normalise(self):
        mix = InstructionMix({OpClass.INT_ALU: 3, OpClass.LOAD: 1})
        assert mix.fraction(OpClass.INT_ALU) == pytest.approx(0.75)
        assert mix.fraction(OpClass.LOAD) == pytest.approx(0.25)
        assert mix.fraction(OpClass.STORE) == 0.0

    def test_sampling_matches_fractions(self):
        import random
        mix = InstructionMix({OpClass.INT_ALU: 0.7, OpClass.LOAD: 0.3})
        rng = random.Random(42)
        samples = [mix.sample(rng) for _ in range(5000)]
        load_frac = samples.count(OpClass.LOAD) / len(samples)
        assert 0.27 < load_frac < 0.33

    def test_rejects_empty_or_negative(self):
        with pytest.raises(ValueError):
            InstructionMix({})
        with pytest.raises(ValueError):
            InstructionMix({OpClass.LOAD: -1.0})
        with pytest.raises(ValueError):
            InstructionMix({OpClass.LOAD: 0.0})


class TestSuites:
    def test_all_thirteen_workloads(self):
        assert len(ALL_WORKLOADS) == 13
        assert len(INT_WORKLOADS) == 4
        assert len(FP_WORKLOADS) == 6
        assert len(SMT_PAIRS) == 3

    def test_single_workload_resolution(self):
        profiles = workload_profiles("swim")
        assert len(profiles) == 1
        assert profiles[0].name == "swim"

    def test_pair_resolution(self):
        profiles = workload_profiles("go+su2cor")
        assert [p.name for p in profiles] == ["go", "su2cor"]

    def test_unknown_workload(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            workload_profiles("doom")

    def test_profiles_are_registered_for_every_suite_entry(self):
        for name in INT_WORKLOADS + FP_WORKLOADS:
            assert name in SPEC95_PROFILES


class TestGeneratorDeterminism:
    def test_same_seed_same_stream(self):
        profile = SPEC95_PROFILES["gcc"]
        a = SyntheticTraceGenerator(profile, seed=3)
        b = SyntheticTraceGenerator(profile, seed=3)
        ops_a = list(itertools.islice(a.stream(), 500))
        ops_b = list(itertools.islice(b.stream(), 500))
        assert ops_a == ops_b

    def test_different_seeds_differ(self):
        profile = SPEC95_PROFILES["gcc"]
        a = SyntheticTraceGenerator(profile, seed=3)
        b = SyntheticTraceGenerator(profile, seed=4)
        ops_a = list(itertools.islice(a.stream(), 200))
        ops_b = list(itertools.islice(b.stream(), 200))
        assert ops_a != ops_b

    def test_threads_use_disjoint_address_spaces(self):
        profile = SPEC95_PROFILES["swim"]
        t0 = SyntheticTraceGenerator(profile, seed=0, thread=0)
        t1 = SyntheticTraceGenerator(profile, seed=0, thread=1)
        addrs0 = {op.address for op in itertools.islice(t0.stream(), 2000)
                  if op.address is not None}
        addrs1 = {op.address for op in itertools.islice(t1.stream(), 2000)
                  if op.address is not None}
        assert addrs0 and addrs1
        assert addrs0.isdisjoint(addrs1)


class TestGeneratedStreamShape:
    @pytest.fixture(scope="class")
    def ops(self):
        gen = SyntheticTraceGenerator(SPEC95_PROFILES["gcc"], seed=1)
        return list(itertools.islice(gen.stream(), 20_000))

    def test_mix_fractions_respected(self, ops):
        profile = SPEC95_PROFILES["gcc"]
        branch_frac = sum(op.opclass is OpClass.BRANCH for op in ops) / len(ops)
        load_frac = sum(op.opclass is OpClass.LOAD for op in ops) / len(ops)
        assert abs(branch_frac - profile.mix.fraction(OpClass.BRANCH)) < 0.02
        assert abs(load_frac - profile.mix.fraction(OpClass.LOAD)) < 0.02

    def test_memory_ops_have_addresses(self, ops):
        for op in ops:
            if op.opclass.is_memory:
                assert op.address is not None

    def test_branches_have_targets(self, ops):
        for op in ops:
            if op.opclass.is_control:
                assert op.target is not None

    def test_branch_sites_recur(self, ops):
        """Static branch sites must repeat for predictors to learn."""
        pcs = [op.pc for op in ops if op.opclass is OpClass.BRANCH]
        assert len(set(pcs)) <= SPEC95_PROFILES["gcc"].branches.num_sites + 32
        assert len(pcs) > 4 * len(set(pcs))

    def test_calls_and_returns_balance_through_stack(self, ops):
        depth = 0
        for op in ops:
            if op.opclass is OpClass.CALL:
                depth += 1
            elif op.opclass is OpClass.RETURN:
                depth -= 1
                assert depth >= 0, "return without matching call"

    def test_sources_reference_written_registers(self, ops):
        """Non-global sources should mostly be recently written registers."""
        written = set()
        dangling = 0
        checked = 0
        for op in ops:
            for src in op.real_srcs:
                if src < 8:  # globals and link register are long-lived
                    continue
                checked += 1
                if src not in written:
                    dangling += 1
            if op.dst is not None:
                written.add(op.dst)
        assert checked > 0
        # only the stream prefix (before first writes) may dangle
        assert dangling < 100

    def test_loads_split_across_locality_regions(self, ops):
        addresses = [op.address for op in ops if op.opclass is OpClass.LOAD]
        regions = {addr >> 30 for addr in addresses}
        assert len(regions) >= 3  # hot, warm, and cold/stream present
