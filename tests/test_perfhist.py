"""repro.perfhist: detectors, history store, planted degradations, CLI.

The acceptance spine: a planted 5% kernel slowdown and a planted IPC
regression must be flagged — each attributed to an obs loop bucket —
while pure reruns of unchanged code must come back clean.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.perfhist import (
    BestModelDetector,
    Epoch,
    Observation,
    PerfHistory,
    Profile,
    attribution_shift,
    available_detectors,
    check_epoch,
    frontier_profiles,
    get_detector,
    import_explore_bench,
    import_kernel_bench,
    ipc_profiles,
    kernel_profiles,
    record_epoch,
    register_detector,
    sampled_profile,
)
from repro.perfhist.check import _bucket_shares

QUIET = [2.050, 2.051, 2.049, 2.050, 2.050]
JITTERY = [2.05, 1.95, 2.10, 1.90, 2.00]


def obs(value, exact=None, tolerance=None):
    return Observation(value=value, exact=exact, tolerance=tolerance)


def attr(useful, **buckets):
    """A synthetic AttributionReport.to_dict() payload."""
    total = useful + sum(buckets.values())
    return {
        "total_cycles": total,
        "useful_cycles": useful,
        "loops": [
            {"name": name, "lost_cycles": lost}
            for name, lost in buckets.items()
        ],
    }


class TestDetectors:
    def test_exact_identical_state_is_stable(self):
        verdict = get_detector("exact").judge(
            obs(1.12, exact=(2149, 2405, 6)),
            obs(1.12, exact=(2149, 2405, 6)),
        )
        assert verdict.kind == "stable"
        assert not verdict.changed

    def test_exact_any_integer_change_is_flagged(self):
        verdict = get_detector("exact").judge(
            obs(1.12, exact=(2149, 2405, 6)),
            obs(1.10, exact=(2190, 2405, 9)),
        )
        assert verdict.degraded
        assert "2149" in verdict.detail

    def test_exact_higher_value_is_improvement(self):
        verdict = get_detector("exact").judge(
            obs(1.10, exact=(2190, 2405, 9)),
            obs(1.12, exact=(2149, 2405, 6)),
        )
        assert verdict.improved

    def test_exact_silent_structure_change_still_surfaces(self):
        # Same headline IPC, different cycle structure: must flag.
        verdict = get_detector("exact").judge(
            obs(1.0, exact=(2000, 2000, 4)),
            obs(1.0, exact=(2000, 2000, 7)),
        )
        assert verdict.degraded
        assert "equal headline value" in verdict.detail

    def test_ci_band_uses_declared_tolerance(self):
        detector = get_detector("ci")
        inside = detector.judge(
            obs(1.000, tolerance=0.04), obs(0.970, tolerance=0.04)
        )
        assert inside.kind == "stable"
        outside = detector.judge(
            obs(1.000, tolerance=0.04), obs(0.950, tolerance=0.04)
        )
        assert outside.degraded
        assert outside.threshold == pytest.approx(0.04)

    def test_ci_band_falls_back_without_tolerance(self):
        verdict = get_detector("ci").judge(obs(1.0), obs(0.97))
        assert verdict.degraded
        assert "no declared tolerance" in verdict.detail

    def test_band_is_relative(self):
        detector = get_detector("band:0.05")
        assert detector.judge(obs(2.0), obs(1.91)).kind == "stable"
        assert detector.judge(obs(2.0), obs(1.89)).degraded
        assert detector.judge(obs(2.0), obs(2.11)).improved

    def test_band_zero_flags_any_drop(self):
        # The ordering_ok predicate detector: 1.0 -> 0.0 must flag.
        verdict = get_detector("band:0").judge(obs(1.0), obs(0.0))
        assert verdict.degraded

    def test_best_model_flags_5pct_drop_on_quiet_series(self):
        verdict = BestModelDetector().judge(
            obs(QUIET[-1]), obs(QUIET[-1] * 0.95), series=QUIET
        )
        assert verdict.degraded
        assert "model over 5 epochs" in verdict.detail

    def test_best_model_absorbs_5pct_drop_on_jittery_series(self):
        # The same relative drop on a series that routinely jitters
        # that much is noise, not a finding.
        verdict = BestModelDetector().judge(
            obs(JITTERY[-1]), obs(JITTERY[-1] * 0.95), series=JITTERY
        )
        assert verdict.kind == "stable"

    def test_best_model_follows_a_linear_trend(self):
        # A steadily improving series: the next on-trend value sits far
        # above the constant model's mean but is *expected* — the
        # linear model must win and call it stable.
        trend = [1.0, 1.1, 1.2, 1.3, 1.4]
        verdict = BestModelDetector().judge(
            obs(1.4), obs(1.5), series=trend
        )
        assert verdict.kind == "stable"
        assert "linear" in verdict.detail

    def test_best_model_short_series_degrades_to_band(self):
        verdict = BestModelDetector().judge(
            obs(2.0), obs(1.8), series=[2.0, 2.0]
        )
        assert verdict.degraded
        assert "too short" in verdict.detail

    def test_track_never_gates(self):
        verdict = get_detector("track").judge(obs(50_000.0), obs(5.0))
        assert verdict.kind == "stable"
        assert verdict.threshold == float("inf")

    def test_registry_rejects_unknown_and_duplicate(self):
        with pytest.raises(ConfigError):
            get_detector("nope")
        with pytest.raises(ConfigError):
            register_detector("exact", lambda: None)
        assert "best_model" in available_detectors()

    def test_registry_bad_param_surfaces(self):
        with pytest.raises(ConfigError):
            get_detector("band:wide")


class TestHistory:
    def _epoch(self, commit="c0ffee", value=1.0, key="ipc:x:y", **kwargs):
        return Epoch(
            commit=commit,
            profiles=[Profile(key=key, kind="ipc", value=value, **kwargs)],
        )

    def test_append_round_trip(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        epoch = self._epoch(
            value=1.12,
            exact=[2149, 2405, 6],
            tolerance=None,
            attribution=attr(500, load_resolution=300),
            meta={"pipe": "base"},
        )
        history.append(epoch)
        assert epoch.index == 0 and epoch.timestamp
        read = history.latest()
        profile = read.profile("ipc:x:y")
        assert profile.exact == [2149, 2405, 6]
        assert profile.attribution["total_cycles"] == 800
        assert profile.meta == {"pipe": "base"}
        assert read.source == "record"

    def test_series_and_keys(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for value in (1.0, 1.1, 1.2):
            history.append(self._epoch(value=value))
        assert history.series("ipc:x:y") == [(0, 1.0), (1, 1.1), (2, 1.2)]
        assert history.series("ipc:x:y", before=2) == [(0, 1.0), (1, 1.1)]
        assert history.keys() == ["ipc:x:y"]
        assert len(history) == 3
        assert history.epoch(-1).profiles[0].value == 1.2

    def test_corrupt_line_surfaces(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        history.append(self._epoch())
        with open(history.path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(ConfigError):
            history.epochs()

    def test_unknown_schema_surfaces(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        payload = self._epoch().to_json()
        payload["schema"] = 999
        history.path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ConfigError):
            history.epochs()

    def test_newer_writer_fields_are_tolerated(self, tmp_path):
        # Forward compatibility inside one schema: an older reader must
        # survive a newer writer's optional extras.
        history = PerfHistory(tmp_path / "h.jsonl")
        payload = self._epoch().to_json()
        payload["future_field"] = {"x": 1}
        payload["profiles"][0]["future_knob"] = True
        history.path.write_text(json.dumps(payload) + "\n")
        assert history.latest().profile("ipc:x:y").value == 1.0

    def test_out_of_range_epoch_surfaces(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        with pytest.raises(ConfigError):
            history.epoch(0)


class TestAttributionShift:
    def test_names_the_top_moving_bucket(self):
        old = Profile(key="k", kind="ipc", value=1.0,
                      attribution=attr(500, load_resolution=300,
                                       branch_resolution=200))
        new = Profile(key="k", kind="ipc", value=0.9,
                      attribution=attr(450, load_resolution=400,
                                       branch_resolution=200))
        line = attribution_shift(old, new)
        assert "load_resolution" in line and "gained" in line
        # Independent arithmetic: load went 30% -> 38.1% of cycles.
        delta = 100 * 400 / 1050 - 100 * 300 / 1000
        assert f"{abs(delta):.2f}pp" in line

    def test_unchanged_accounting_points_off_model(self):
        profile = Profile(key="k", kind="throughput", value=2.0,
                          attribution=attr(500, load_resolution=300))
        line = attribution_shift(profile, profile)
        assert "host/backend-side" in line

    def test_missing_snapshot_is_unattributed(self):
        with_attr = Profile(key="k", kind="ipc", value=1.0,
                            attribution=attr(500, other=100))
        without = Profile(key="k", kind="ipc", value=1.0)
        assert "unattributed" in attribution_shift(with_attr, without)

    def test_bucket_shares_sum_to_total(self):
        shares = _bucket_shares(attr(600, load_resolution=250, other=150))
        assert sum(shares.values()) == pytest.approx(100.0)


class TestPlantedKernelSlowdown:
    """Acceptance: a planted 5% kernel slowdown must be flagged and
    attributed; reruns inside the series' own noise must not."""

    KEY = "kernel:optimized:speedup"

    def _history(self, tmp_path, speedups, attributions):
        history = PerfHistory(tmp_path / "h.jsonl")
        for value, attribution in zip(speedups, attributions):
            history.append(Epoch(
                commit=f"c{len(history):07d}",
                profiles=[Profile(
                    key=self.KEY, kind="throughput", value=value,
                    unit="x", detector="best_model:0.04",
                    attribution=attribution,
                )],
            ))
        return history

    def test_planted_slowdown_flagged_and_attributed(self, tmp_path):
        baseline_attr = attr(
            500, load_resolution=300, branch_resolution=150, other=50
        )
        # The planted epoch is 5% slower *and* its cycle accounting
        # says why: load_resolution's share grew.
        planted_attr = attr(
            460, load_resolution=410, branch_resolution=150, other=50
        )
        history = self._history(
            tmp_path,
            QUIET + [QUIET[-1] * 0.95],
            [baseline_attr] * len(QUIET) + [planted_attr],
        )
        report = check_epoch(history)
        assert not report.ok
        [finding] = report.degradations
        assert finding.key == self.KEY
        assert "load_resolution" in finding.attribution
        assert "gained" in finding.attribution

    def test_noise_only_rerun_is_clean(self, tmp_path):
        snapshot = attr(500, load_resolution=300, other=200)
        history = self._history(
            tmp_path,
            JITTERY + [JITTERY[-1] * 0.95],
            [snapshot] * (len(JITTERY) + 1),
        )
        report = check_epoch(history)
        assert report.ok
        [finding] = report.findings
        assert finding.verdict.kind == "stable"

    def test_unchanged_buckets_blame_the_host_side(self, tmp_path):
        # Speedup dropped but the simulated cycle accounting is
        # bit-identical: the change cannot live in the model.
        snapshot = attr(500, load_resolution=300)
        history = self._history(
            tmp_path,
            QUIET + [QUIET[-1] * 0.95],
            [snapshot] * (len(QUIET) + 1),
        )
        [finding] = check_epoch(history).degradations
        assert "host/backend-side" in finding.attribution


class TestPlantedIpcRegression:
    """Acceptance: a planted IPC regression on a golden cell must be
    flagged with loop-bucket attribution; a deterministic rerun of the
    same cell must be exactly stable."""

    @pytest.fixture(scope="class")
    def cell_profiles(self):
        from repro.core.config import CoreConfig
        from repro.perfhist.profile import GOLDEN_RUN, _attributed_simulate

        def measure(config):
            result, attribution, metrics = _attributed_simulate(
                GOLDEN_RUN["workload"], config,
                instructions=GOLDEN_RUN["instructions"],
                warmup=GOLDEN_RUN["warmup"],
                detailed_warmup=GOLDEN_RUN["detailed_warmup"],
                seed=GOLDEN_RUN["seed"],
            )
            stats = result.stats
            return Profile(
                key="ipc:int_test:base_rf3", kind="ipc",
                value=stats.measured_ipc, unit="ipc", detector="exact",
                exact=[stats.cycles, stats.retired, stats.total_reissues],
                attribution=attribution, metrics=metrics,
            )

        return {
            "baseline": measure(CoreConfig.base(3)),
            "rerun": measure(CoreConfig.base(3)),
            # A real, differently-timed machine (slower register file)
            # masquerading under the same key: a genuine planted
            # regression with genuinely shifted loop attribution.
            "planted": measure(CoreConfig.base(7)),
        }

    def _history(self, tmp_path, *profiles):
        history = PerfHistory(tmp_path / "h.jsonl")
        for profile in profiles:
            history.append(Epoch(
                commit=f"c{len(history):07d}", profiles=[profile]
            ))
        return history

    def test_planted_regression_flagged_and_attributed(
        self, tmp_path, cell_profiles
    ):
        baseline = cell_profiles["baseline"]
        planted = cell_profiles["planted"]
        assert planted.value < baseline.value
        history = self._history(tmp_path, baseline, planted)
        report = check_epoch(history)
        assert not report.ok
        [finding] = report.degradations
        assert finding.verdict.detector == "exact"
        # The named bucket must be the true top mover by the raw
        # snapshots' own arithmetic.
        old_shares = _bucket_shares(baseline.attribution)
        new_shares = _bucket_shares(planted.attribution)
        expected = max(
            set(old_shares) | set(new_shares),
            key=lambda name: abs(
                new_shares.get(name, 0.0) - old_shares.get(name, 0.0)
            ),
        )
        assert f"'{expected}'" in finding.attribution

    def test_deterministic_rerun_is_exactly_stable(
        self, tmp_path, cell_profiles
    ):
        history = self._history(
            tmp_path, cell_profiles["baseline"], cell_profiles["rerun"]
        )
        report = check_epoch(history)
        assert report.ok
        [finding] = report.findings
        assert finding.verdict.kind == "stable"
        assert finding.verdict.threshold == 0.0


class TestProfileBuilders:
    def test_ipc_profiles_match_golden_pins(self):
        with open("tests/golden/ipc_numbers.json") as handle:
            golden = json.load(handle)
        profiles = {p.key: p for p in ipc_profiles()}
        assert len(profiles) == 9
        for label, cell in golden["cells"].items():
            profile = profiles[f"ipc:int_test:{label}"]
            assert profile.exact == [
                cell["cycles"], cell["retired"], cell["total_reissues"]
            ], f"{label} drifted from the golden pin"
            attribution = profile.attribution
            lost = sum(
                loop["lost_cycles"] for loop in attribution["loops"]
            )
            assert attribution["useful_cycles"] + lost \
                == attribution["total_cycles"]
            assert profile.metrics  # obs snapshot rode along

    def test_sampled_profile_carries_its_tolerance(self):
        profile = sampled_profile()
        assert profile.detector == "ci"
        assert profile.tolerance > 0
        lo, hi = profile.meta["ci95"]
        assert lo <= profile.value <= hi

    def test_kernel_profiles_from_committed_bench(self):
        with open("BENCH_kernel.json") as handle:
            bench = json.load(handle)
        profiles = {p.key: p for p in kernel_profiles(bench)}
        speedup = profiles["kernel:optimized:speedup"]
        assert speedup.detector == "best_model:0.04"
        assert speedup.value > 1.0
        raw = profiles["kernel:reference:inst_per_s"]
        assert raw.detector == "track"

    def test_frontier_profiles_from_committed_bench(self):
        with open("BENCH_explore.json") as handle:
            bench = json.load(handle)
        profiles = {p.key: p for p in frontier_profiles(bench)}
        ordering = profiles["explore:dra:ordering_ok"]
        assert ordering.value == 1.0
        assert ordering.detector == "band:0"
        scored = [p for p in profiles.values() if p.unit == "ipc"]
        assert scored and all(p.detector == "best_model:0.02"
                              for p in scored)

    def test_builders_reject_wrong_files(self):
        with pytest.raises(ConfigError):
            kernel_profiles({"rungs": []}, source="x.json")
        with pytest.raises(ConfigError):
            frontier_profiles({"backends": {}}, source="x.json")


class TestImportAndCheck:
    def test_bench_migration_and_record(self, tmp_path):
        history = PerfHistory(tmp_path / "PERF_HISTORY.jsonl")
        first = import_explore_bench(
            history, "BENCH_explore.json", "d2ab040"
        )
        second = import_kernel_bench(
            history, "BENCH_kernel.json", "65ea279"
        )
        assert first.source == "import:BENCH_explore.json"
        assert second.index == 1
        # Epoch 0 has no history: everything is new, nothing degraded.
        assert check_epoch(history, epoch=0).ok
        epoch = record_epoch(
            history, "feedc0de",
            kernel_bench="BENCH_kernel.json",
            explore_bench="BENCH_explore.json",
        )
        report = check_epoch(history)
        assert report.ok
        # Identical re-imported values judge stable against their own
        # per-key baselines despite the disjoint import epochs between.
        judged = {f.key for f in report.findings}
        assert "kernel:optimized:speedup" in judged
        assert "explore:dra:ordering_ok" in judged
        # The live IPC cells are first-time keys here, not failures.
        assert any(k.startswith("ipc:") for k in report.new_keys)
        assert epoch.index == 2

    def test_pinned_baseline(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for value in (1.0, 2.0, 2.0):
            history.append(Epoch(commit="c", profiles=[Profile(
                key="k", kind="throughput", value=value, detector="band"
            )]))
        assert check_epoch(history).ok
        pinned = check_epoch(history, baseline=0)
        assert pinned.findings[0].verdict.improved

    def test_empty_history_surfaces(self, tmp_path):
        with pytest.raises(ConfigError):
            check_epoch(PerfHistory(tmp_path / "h.jsonl"))


class TestCli:
    def _main(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_import_log_check_round_trip(self, tmp_path, capsys):
        history = str(tmp_path / "h.jsonl")
        assert self._main(
            "perf", "import", "--explore", "BENCH_explore.json",
            "--commit", "d2ab040", "--history", history,
        ) == 0
        assert self._main(
            "perf", "import", "--kernel", "BENCH_kernel.json",
            "--commit", "65ea279", "--history", history,
        ) == 0
        assert self._main("perf", "log", "--history", history) == 0
        out = capsys.readouterr().out
        assert "import:BENCH_kernel.json" in out
        assert self._main(
            "perf", "check", "--history", history, "--json"
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_check_exits_nonzero_on_planted_slowdown(self, tmp_path):
        history = PerfHistory(tmp_path / "h.jsonl")
        for value in QUIET + [QUIET[-1] * 0.95]:
            history.append(Epoch(commit="c", profiles=[Profile(
                key="kernel:optimized:speedup", kind="throughput",
                value=value, detector="best_model:0.04",
            )]))
        assert self._main(
            "perf", "check", "--history", str(history.path)
        ) == 1

    def test_import_argument_validation(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        assert self._main("perf", "import", "--history", history) == 2
        assert self._main(
            "perf", "import", "--kernel", "BENCH_kernel.json",
            "--history", history,
        ) == 2

    def test_missing_bench_file_surfaces(self, tmp_path):
        assert self._main(
            "perf", "import", "--kernel", str(tmp_path / "nope.json"),
            "--commit", "c", "--history", str(tmp_path / "h.jsonl"),
        ) == 2

    def test_record_and_attribute(self, tmp_path, capsys):
        history = str(tmp_path / "h.jsonl")
        assert self._main(
            "perf", "record", "--history", history,
            "--commit", "feedc0de", "--no-sampled",
        ) == 0
        assert self._main(
            "perf", "attribute", "--history", history,
            "--key", "ipc:int_test:dra_rf3",
        ) == 0
        out = capsys.readouterr().out
        assert "load_resolution" in out
        assert "% of cycles" in out
