"""Unit tests for core configuration and its loop arithmetic."""

import pytest

from repro.core import CoreConfig, DRAConfig, LoadRecovery


class TestFactories:
    def test_base_matches_paper_for_rf3(self):
        config = CoreConfig.base(rf_read_latency=3)
        assert config.dec_iq == 5
        assert config.iq_ex == 5
        assert config.dra is None
        # the paper's 8-cycle load resolution loop delay (§2.2.2)
        assert config.load_loop_delay == 8

    @pytest.mark.parametrize("rf,expected_iq_ex", [(3, 5), (5, 7), (7, 9)])
    def test_base_iq_ex_tracks_rf_latency(self, rf, expected_iq_ex):
        assert CoreConfig.base(rf).iq_ex == expected_iq_ex

    @pytest.mark.parametrize("rf,expected_dec_iq", [(3, 5), (5, 7), (7, 9)])
    def test_dra_pipe_shapes(self, rf, expected_dec_iq):
        config = CoreConfig.with_dra(rf)
        assert config.iq_ex == 3
        assert config.dec_iq == expected_dec_iq
        assert config.dra is not None

    def test_dra_shortens_pipeline_by_two(self):
        # the §6 observation: each DRA configuration is 2 cycles shorter
        for rf in (3, 5, 7):
            base = CoreConfig.base(rf)
            dra = CoreConfig.with_dra(rf)
            assert base.decode_to_execute - dra.decode_to_execute == 2

    def test_with_pipe(self):
        config = CoreConfig.base().with_pipe(9, 3)
        assert (config.dec_iq, config.iq_ex) == (9, 3)

    def test_label(self):
        assert CoreConfig.base().label == "Base:5_5"
        assert CoreConfig.with_dra(5).label == "DRA:7_3"

    def test_base_min_pipeline_is_about_twenty_cycles(self):
        assert 18 <= CoreConfig.base().min_int_pipeline <= 22


class TestValidation:
    def test_negative_widths_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_width=0)

    def test_issue_width_must_match_clusters(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=4, num_clusters=8)

    def test_rename_offset_inside_deciq(self):
        with pytest.raises(ValueError):
            CoreConfig(rename_offset=6, dec_iq=5)

    def test_preg_coverage(self):
        with pytest.raises(ValueError):
            CoreConfig(num_pregs=100)

    def test_unknown_slotting(self):
        with pytest.raises(ValueError):
            CoreConfig(slotting="magic")

    def test_unknown_fetch_policy(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_policy="greedy")

    def test_replace_keeps_validation(self):
        config = CoreConfig.base()
        with pytest.raises(ValueError):
            config.replace(iq_entries=0)

    def test_frozen_and_hashable(self):
        a = CoreConfig.base()
        b = CoreConfig.base()
        assert hash(a) == hash(b)
        assert a == b

    def test_load_recovery_values(self):
        assert LoadRecovery("reissue") is LoadRecovery.REISSUE
        assert LoadRecovery("refetch") is LoadRecovery.REFETCH
        assert LoadRecovery("stall") is LoadRecovery.STALL
        assert LoadRecovery("ssr") is LoadRecovery.SSR

    def test_port_config_validation(self):
        from repro.core.config import PortConfig

        assert PortConfig().arbitration == "oldest_first"
        with pytest.raises(ValueError):
            PortConfig(arbitration="psychic")
        with pytest.raises(ValueError):
            PortConfig(banks=0)

    def test_banked_ports_must_divide_evenly(self):
        from repro.core.config import PortConfig

        CoreConfig.base(rf_read_ports=16,
                        ports=PortConfig(arbitration="banked", banks=2))
        with pytest.raises(ValueError):
            CoreConfig.base(rf_read_ports=15,
                            ports=PortConfig(arbitration="banked", banks=2))

    def test_negative_ssr_threshold_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig.base(ssr_threshold=-1)

    def test_dra_config_defaults_match_paper(self):
        dra = DRAConfig()
        assert dra.crc_entries == 16
        assert dra.counter_max == 3
