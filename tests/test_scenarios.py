"""Tests for repro.scenarios: trace capture/replay, dynamic workloads,
phase-sliced attribution, and the scenario wiring into suites, cache,
fuzzing, and the CLI."""

import gzip
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.__main__ import main
from repro.core.config import CoreConfig
from repro.core.simulator import simulate
from repro.errors import WorkloadError
from repro.obs import EventBus, PhaseEvent
from repro.obs.attribution import LoopAttribution
from repro.scenarios import (
    PATTERNS,
    DynamicSpec,
    DynamicWorkloadEngine,
    PhaseSchedule,
    TraceError,
    TraceExhaustedError,
    TraceReplayEngine,
    TraceSpec,
    build_engine_for,
    capture_trace,
    interpolate_profiles,
    stressed_variant,
    workload_catalog,
    workload_signature,
    write_trace,
)
from repro.verify import Verifier
from repro.workloads import (
    SCENARIO_PAIRS,
    SCENARIO_PROFILES,
    SMOKE_PROFILES,
    SPEC95_PROFILES,
    SyntheticTraceGenerator,
    WorkloadProfile,
    workload_profiles,
)

GOLDEN_TRACE = os.path.join(
    os.path.dirname(__file__), "golden", "mini_int_test.trace.gz"
)

#: Cheap shared run geometry for end-to-end scenario runs.
RUN = dict(warmup=500, instructions=1_500, detailed_warmup=100)


# ---------------------------------------------------------------------------
# Trace capture / replay
# ---------------------------------------------------------------------------


class TestTraceRoundTrip:
    def test_capture_replays_bit_identical(self, tmp_path):
        """A captured stream replays op-for-op equal to its generator."""
        path = str(tmp_path / "t.trace.gz")
        count = capture_trace("int_test", path, 3_000)
        assert count == 3_000
        engine = TraceReplayEngine(path)
        generator = SyntheticTraceGenerator(SMOKE_PROFILES["int_test"])
        for index in range(3_000):
            assert engine.next_op() == generator.next_op(), index

    def test_replayed_retire_stream_matches_generator_run(self, tmp_path):
        """Simulating from the trace retires the exact same ops as
        simulating from the generator, and the golden retire model
        (rebuilt from the replay engine's clone) signs off on the run."""
        path = str(tmp_path / "t.trace.gz")
        # long enough that the run never wraps past the capture
        capture_trace("int_test", path, 20_000)
        config = CoreConfig.base(3)

        def retired_ops(workload):
            from repro.core.pipeline import Simulator

            simulator = Simulator(
                config, workload_profiles(workload), seed=0
            )
            ops = []
            simulator.retire_hook = lambda inst: ops.append(inst.op)
            simulator.run(800, warmup=300)
            return ops

        trace_ops = retired_ops(f"trace:{path}")
        generator_ops = retired_ops("int_test")
        assert trace_ops == generator_ops
        assert len(trace_ops) >= 1_100
        verifier = Verifier()
        simulate(f"trace:{path}", config, seed=0, verifier=verifier, **RUN)
        assert verifier.passed, [v.describe() for v in verifier.violations]

    def test_committed_golden_trace_matches_generator(self):
        """The checked-in miniature trace still reproduces int_test."""
        engine = TraceReplayEngine(GOLDEN_TRACE)
        assert engine.header["source"] == "int_test"
        generator = SyntheticTraceGenerator(SMOKE_PROFILES["int_test"])
        for index in range(len(engine)):
            assert engine.next_op() == generator.next_op(), index

    def test_uncompressed_path_works(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture_trace("int_test", path, 50)
        assert len(TraceReplayEngine(path)) == 50

    def test_capture_smt_pair_thread(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture_trace("apsi+swim", path, 100, thread=1)
        engine = TraceReplayEngine(path)
        swim = SyntheticTraceGenerator(SPEC95_PROFILES["swim"], thread=1)
        for _ in range(100):
            assert engine.next_op() == swim.next_op()


class TestTraceReplayEngine:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture_trace("int_test", path, 200)
        return path

    def test_loop_wraps(self, trace_path):
        engine = TraceReplayEngine(trace_path)
        first = [engine.next_op() for _ in range(200)]
        assert engine.next_op() == first[0]
        assert engine.emitted == 201

    def test_no_loop_exhausts(self, trace_path):
        engine = TraceReplayEngine(trace_path, loop=False)
        for _ in range(200):
            engine.next_op()
        with pytest.raises(TraceExhaustedError):
            engine.next_op()

    def test_seek_and_rewind(self, trace_path):
        engine = TraceReplayEngine(trace_path)
        ops = [engine.next_op() for _ in range(200)]
        engine.seek(40)
        assert engine.emitted == 40
        assert engine.next_op() == ops[40]
        engine.seek(350)  # forward across the wrap point
        assert engine.next_op() == ops[150]
        engine.seek(201)  # rewind
        assert engine.next_op() == ops[1]

    def test_clone_fast_forward_contract(self, trace_path):
        engine = TraceReplayEngine(trace_path)
        ops = [engine.next_op() for _ in range(137)]
        twin = engine.clone()
        assert twin.emitted == 0
        twin.fast_forward(101)
        assert twin.next_op() == ops[101]

    def test_spec_signature_tracks_content(self, tmp_path):
        a = str(tmp_path / "a.trace")
        b = str(tmp_path / "b.trace")
        capture_trace("int_test", a, 60)
        capture_trace("int_test", b, 60, seed=1)
        assert TraceSpec(a).signature() != TraceSpec(b).signature()
        # identical content => identical signature
        c = str(tmp_path / "c.trace")
        capture_trace("int_test", c, 60)
        assert TraceSpec(a).signature() == TraceSpec(c).signature()


class TestTraceFormatErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            TraceReplayEngine(str(tmp_path / "nope.trace"))

    def test_not_a_trace(self, tmp_path):
        path = tmp_path / "junk.trace"
        path.write_bytes(b"\x00\x01\x02 not json\nmore")
        with pytest.raises(TraceError):
            TraceReplayEngine(str(path))

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.trace"
        path.write_bytes(json.dumps({"format": "other"}).encode() + b"\n")
        with pytest.raises(TraceError, match="format"):
            TraceReplayEngine(str(path))

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture_trace("int_test", path, 10)
        with open(path, "rb") as handle:
            header_line, body = handle.read().split(b"\n", 1)
        header = json.loads(header_line)
        header["version"] = 99
        with open(path, "wb") as handle:
            handle.write(json.dumps(header).encode() + b"\n" + body)
        with pytest.raises(TraceError, match="version"):
            TraceReplayEngine(path)

    def test_truncated_body(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture_trace("int_test", path, 10)
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(raw[:-5])
        with pytest.raises(TraceError, match="records"):
            TraceReplayEngine(path)

    def test_capture_rejects_bad_params(self, tmp_path):
        with pytest.raises(TraceError, match="count"):
            capture_trace("int_test", str(tmp_path / "t"), 0)
        with pytest.raises(TraceError, match="thread"):
            capture_trace("int_test", str(tmp_path / "t"), 10, thread=3)

    def test_write_trace_gzip_roundtrip(self, tmp_path):
        generator = SyntheticTraceGenerator(SMOKE_PROFILES["int_test"])
        ops = [generator.next_op() for _ in range(32)]
        path = str(tmp_path / "w.trace.gz")
        assert write_trace(path, ops, source="int_test") == 32
        with gzip.open(path, "rb") as handle:
            header = json.loads(handle.readline())
        assert header["count"] == 32
        engine = TraceReplayEngine(path)
        assert [engine.next_op() for _ in range(32)] == ops


# ---------------------------------------------------------------------------
# Dynamic workloads
# ---------------------------------------------------------------------------


_profile_names = st.sampled_from(
    sorted(SPEC95_PROFILES) + sorted(SCENARIO_PROFILES) + ["int_test"]
)


def _named_profile(name):
    return workload_profiles(name)[0]


class TestPhaseScheduleProperties:
    @given(
        name=_profile_names,
        pattern=st.sampled_from(sorted(PATTERNS)),
        period=st.integers(min_value=8, max_value=4_096),
        positions=st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=1, max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_segment_at_is_pure_and_monotone(
        self, name, pattern, period, positions
    ):
        """segment_at is a pure function of position: re-querying agrees,
        ordinals never decrease along increasing positions, and the
        ordinal increments by exactly one per boundary crossing."""
        schedule = PhaseSchedule.from_pattern(
            _named_profile(name), pattern, period=period
        )
        assert schedule.total_ops >= len(schedule.phases)
        for position in positions:
            index, ordinal = schedule.segment_at(position)
            assert (index, ordinal) == schedule.segment_at(position)
            assert 0 <= index < len(schedule.phases)
            assert ordinal % len(schedule.phases) == index
        walked = [
            schedule.segment_at(p)[1] for p in sorted(positions)
        ]
        assert walked == sorted(walked)

    @given(
        name=_profile_names,
        pattern=st.sampled_from(sorted(PATTERNS)),
        intensity=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolation_always_validates(self, name, pattern, intensity):
        """Any intensity in [0, 1] yields a constructible profile (the
        sub-model validators in profiles.py raise on any violation)."""
        base = _named_profile(name)
        profile = interpolate_profiles(
            base, stressed_variant(base), intensity, name="interp-test"
        )
        assert isinstance(profile, WorkloadProfile)
        assert abs(sum(frac for _, frac in profile.mix.items()) - 1.0) < 1e-6

    @given(
        name=_profile_names,
        pattern=st.sampled_from(sorted(PATTERNS)),
        period=st.integers(min_value=64, max_value=2_048),
        split=st.integers(min_value=0, max_value=600),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_clone_fast_forward_determinism(
        self, name, pattern, period, split
    ):
        """clone() + fast_forward(n) continues the stream exactly —
        the determinism contract the golden retire model relies on."""
        schedule = PhaseSchedule.from_pattern(
            _named_profile(name), pattern, period=period
        )
        engine = DynamicWorkloadEngine(schedule, seed=3)
        ops = [engine.next_op() for _ in range(split + 20)]
        twin = engine.clone()
        twin.fast_forward(split)
        assert [twin.next_op() for _ in range(20)] == ops[split:split + 20]


class TestDynamicEngine:
    def test_phase_hook_fires_in_order(self):
        schedule = PhaseSchedule.from_pattern(
            SMOKE_PROFILES["int_test"], "bursty", period=64
        )
        engine = DynamicWorkloadEngine(schedule)
        seen = []
        engine.phase_hook = lambda ordinal, index, name: seen.append(
            (ordinal, index, name)
        )
        engine.announce()
        for _ in range(200):
            engine.next_op()
        ordinals = [entry[0] for entry in seen]
        assert ordinals == sorted(ordinals)
        assert ordinals == list(range(ordinals[0], ordinals[-1] + 1))
        names = {entry[2] for entry in seen}
        assert names == {"calm", "burst"}

    def test_schedule_signature_tracks_content(self):
        base = SMOKE_PROFILES["int_test"]
        a = PhaseSchedule.from_pattern(base, "bursty", period=512)
        b = PhaseSchedule.from_pattern(base, "bursty", period=1024)
        c = PhaseSchedule.from_pattern(base, "ramp", period=512)
        assert len({a.signature(), b.signature(), c.signature()}) == 3
        assert a.signature() == PhaseSchedule.from_pattern(
            base, "bursty", period=512
        ).signature()

    def test_resolve_rejects_bad_names(self):
        with pytest.raises(WorkloadError, match="pattern"):
            workload_profiles("int_test@nosuchpattern")
        with pytest.raises(WorkloadError):
            workload_profiles("nosuchbase@bursty")
        with pytest.raises(WorkloadError, match="malformed|unknown"):
            workload_profiles("int_test@")

    def test_resolve_smt_pair_gets_schedule_per_thread(self):
        specs = workload_profiles("apsi+swim@steady:512")
        assert len(specs) == 2
        assert {spec.schedule.base_profile.name for spec in specs} == {
            "apsi", "swim",
        }


# ---------------------------------------------------------------------------
# End-to-end: phase-sliced attribution
# ---------------------------------------------------------------------------


class TestPhaseAttribution:
    def test_every_phase_slice_reconciles(self):
        """The acceptance invariant: in a phase-varying run, useful +
        per-loop lost == total within every single phase slice, and the
        slices partition the observed cycles exactly."""
        bus = EventBus()
        config = CoreConfig.base(3)
        attribution = LoopAttribution(bus, config)
        result = simulate(
            "int_test@bursty:2048", config, obs=bus,
            warmup=500, instructions=6_000, detailed_warmup=100,
        )
        report = attribution.report(
            result.stats, workload="int_test@bursty:2048"
        )
        assert report.reconciles
        assert len(report.phases) >= 3
        for phase in report.phases:
            assert phase.reconciles, phase
        assert sum(p.cycles for p in report.phases) == report.total_cycles
        ordinals = [p.index for p in report.phases]
        assert ordinals == sorted(ordinals)
        rendered = report.render()
        assert "Per-phase slices" in rendered
        payload = report.to_dict()
        assert len(payload["phases"]) == len(report.phases)

    def test_phase_events_reach_generic_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(PhaseEvent, seen.append)
        simulate(
            "int_test@steady:512", CoreConfig.base(3), obs=bus, **RUN
        )
        assert seen, "dynamic run emitted no phase events"
        assert all(event.to_dict()["kind"] == "phase" for event in seen)

    def test_static_workload_reports_no_phases(self):
        bus = EventBus()
        config = CoreConfig.base(3)
        attribution = LoopAttribution(bus, config)
        result = simulate("int_test", config, obs=bus, **RUN)
        report = attribution.report(result.stats)
        assert report.phases == []
        assert report.reconciles


# ---------------------------------------------------------------------------
# Wiring: suites, engines, signatures, cache keys, explore, fuzz
# ---------------------------------------------------------------------------


class TestSuiteResolution:
    def test_scenario_families_resolve(self):
        for name in SCENARIO_PROFILES:
            (profile,) = workload_profiles(name)
            assert profile.name == name

    def test_scenario_pairs_resolve(self):
        for name, parts in SCENARIO_PAIRS.items():
            profiles = workload_profiles(name)
            assert [p.name for p in profiles] == list(parts)

    def test_trace_name_resolves_to_spec(self):
        (spec,) = workload_profiles(f"trace:{GOLDEN_TRACE}")
        assert isinstance(spec, TraceSpec)
        engine = spec.build_engine()
        assert engine.next_op() is not None

    def test_empty_trace_path_rejected(self):
        with pytest.raises(WorkloadError, match="path"):
            workload_profiles("trace:")

    def test_build_engine_for_dispatch(self):
        profile = SMOKE_PROFILES["int_test"]
        assert isinstance(
            build_engine_for(profile, seed=0, thread=0, page_bytes=8192),
            SyntheticTraceGenerator,
        )
        spec = workload_profiles("int_test@steady")[0]
        assert isinstance(
            build_engine_for(spec, seed=0, thread=0, page_bytes=8192),
            DynamicWorkloadEngine,
        )

    def test_new_families_simulate_and_retire(self):
        for name in ("pointer_chase", "interp_dispatch", "server_icache"):
            stats = simulate(
                name, CoreConfig.base(3), warmup=500,
                instructions=400, detailed_warmup=50,
            ).stats
            assert stats.retired >= 400, name

    def test_catalog_covers_everything(self):
        catalog = workload_catalog()
        names = {entry["name"] for entry in catalog["workloads"]}
        assert set(SCENARIO_PROFILES) <= names
        assert set(SCENARIO_PAIRS) <= names
        assert {p["name"] for p in catalog["patterns"]} == set(PATTERNS)


class TestSignaturesAndCacheKeys:
    def test_signature_distinguishes_workloads(self):
        names = ["int_test", "swim", "pointer_chase",
                 "int_test@bursty", "int_test@bursty:512"]
        signatures = [workload_signature(name) for name in names]
        assert len(set(signatures)) == len(signatures)

    def test_signature_stable_across_calls(self):
        assert workload_signature("swim") == workload_signature("swim")

    def test_unresolvable_name_digests_to_constant(self):
        assert workload_signature("doom3") == "unresolved"

    def test_cell_key_tracks_trace_content(self, tmp_path):
        """Same path, different trace bytes => different cache cells."""
        from repro.experiments.runner import ExperimentSettings
        from repro.harness.cache import cell_key

        path = str(tmp_path / "t.trace")
        config = CoreConfig.base(3)
        settings_ = ExperimentSettings(instructions=100)
        capture_trace("int_test", path, 40)
        key_a = cell_key(f"trace:{path}", config, settings_, 0)
        assert key_a == cell_key(f"trace:{path}", config, settings_, 0)
        capture_trace("int_test", path, 40, seed=9)
        key_b = cell_key(f"trace:{path}", config, settings_, 0)
        assert key_a != key_b


class TestExploreAndFuzzWiring:
    def test_pruner_accepts_scenario_workloads(self):
        from repro.explore.prune import AnalyticalPruner

        pruner = AnalyticalPruner(
            ["int_test@bursty", f"trace:{GOLDEN_TRACE}", "pointer_chase"]
        )
        assert all(
            isinstance(profile, WorkloadProfile)
            for profile in pruner.profiles
        )

    def test_fuzz_case_scenario_roundtrip_and_run(self):
        from repro.verify.fuzz import FuzzCase, canonical_cases, run_case

        base = canonical_cases()[0]
        case = FuzzCase(
            seed=base.seed, instructions=600, kind=base.kind,
            rf_read_latency=base.rf_read_latency,
            profile=dict(base.profile),
            scenario={"pattern": "bursty", "period": 256},
        )
        assert FuzzCase.from_dict(case.to_dict()) == case
        assert isinstance(case.build_entry(), DynamicSpec)
        assert run_case(case) is None, "scenario case failed verification"

    def test_fuzz_scenario_shrinks_away(self):
        from dataclasses import replace

        from repro.verify.fuzz import _shrink_scenario, canonical_cases

        # injected failure reproduces without the scenario, so the
        # shrinker must drop it
        base = canonical_cases()[0]
        case = replace(
            base, instructions=250,
            scenario={"pattern": "steady", "period": 512},
        )
        shrunk = _shrink_scenario(case, "skip-reissue", None)
        assert shrunk.scenario == {}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestScenarioCLI:
    def test_workloads_json(self, capsys):
        assert main(["workloads", "--json"]) == 0
        catalog = json.loads(capsys.readouterr().out)
        assert {"workloads", "patterns", "trace"} <= set(catalog)
        families = {entry["family"] for entry in catalog["workloads"]}
        assert "scenario" in families

    def test_trace_capture_then_run(self, capsys, tmp_path):
        path = str(tmp_path / "cli.trace.gz")
        assert main([
            "trace", "capture", "int_test", "-o", path, "--count", "2000",
        ]) == 0
        assert "captured 2000 ops" in capsys.readouterr().out
        assert main([
            "run", f"trace:{path}", "--instructions", "300",
        ]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_trace_capture_argument_errors(self, capsys):
        assert main(["trace", "capture"]) == 2
        assert main(["trace", "capture", "int_test"]) == 2
        capsys.readouterr()

    def test_attribute_dynamic_verifies(self, capsys):
        assert main([
            "attribute", "int_test@bursty:1024",
            "--instructions", "2000", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "Per-phase slices" in out
        assert "reconciles" in out

    def test_run_scenario_family(self, capsys):
        assert main([
            "run", "pointer_chase", "--instructions", "300",
        ]) == 0
        capsys.readouterr()
