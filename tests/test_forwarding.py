"""Unit tests for the forwarding buffer."""

import pytest

from repro.core.forwarding import ForwardingBuffer
from repro.core.regfile import PhysRegFile


@pytest.fixture
def setup():
    rf = PhysRegFile(16)
    fb = ForwardingBuffer(rf, depth=9)
    return rf, fb


class TestForwardingBuffer:
    def test_holds_within_window(self, setup):
        rf, fb = setup
        rf.avail[3] = 100
        assert fb.holds(3, 100)
        assert fb.holds(3, 105)
        assert fb.holds(3, 109)

    def test_expires_after_window(self, setup):
        rf, fb = setup
        rf.avail[3] = 100
        assert not fb.holds(3, 110)

    def test_not_available_before_production(self, setup):
        rf, fb = setup
        rf.avail[3] = 100
        assert not fb.holds(3, 99)

    def test_unproduced_value_never_forwards(self, setup):
        rf, fb = setup
        assert not fb.holds(3, 1000)

    def test_writeback_time_is_avail_plus_depth(self, setup):
        rf, fb = setup
        assert fb.writeback_time(100) == 109

    def test_in_register_file(self, setup):
        rf, fb = setup
        rf.writeback[4] = 50
        assert fb.in_register_file(4, 50)
        assert not fb.in_register_file(4, 49)
        assert not fb.in_register_file(5, 1000)

    def test_hit_statistics(self, setup):
        rf, fb = setup
        rf.avail[3] = 100
        fb.holds(3, 100)
        fb.holds(3, 500)
        assert fb.lookups == 2
        assert fb.hits == 1

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ForwardingBuffer(PhysRegFile(4), depth=0)

    def test_window_is_inclusive_of_writeback_cycle(self, setup):
        # the FB covers exactly until the value lands in the RF, so
        # there is never a gap between forwarding and RF/CRC coverage
        rf, fb = setup
        rf.avail[2] = 20
        assert fb.holds(2, fb.writeback_time(20))
