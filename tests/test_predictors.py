"""Unit tests for branch predictors, BTB and RAS."""

import random

import pytest

from repro.branch import (
    BTB,
    BTBConfig,
    BimodalPredictor,
    GsharePredictor,
    ReturnAddressStack,
    StaticTakenPredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.branch.predictors import PredictorSpec, _CounterTable


class TestCounterTable:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            _CounterTable(1000)

    def test_saturation(self):
        table = _CounterTable(4, initial=0)
        for _ in range(10):
            table.update(0, taken=True)
        assert table.predict(0)
        for _ in range(2):
            table.update(0, taken=False)
        assert not table.predict(0)

    def test_hysteresis(self):
        table = _CounterTable(4, initial=0)
        for _ in range(4):
            table.update(0, taken=True)   # saturate at 3
        table.update(0, taken=False)      # 2: still predicts taken
        assert table.predict(0)


class TestBimodal:
    def test_learns_biased_branch(self):
        p = BimodalPredictor(64)
        for _ in range(10):
            p.update(0x400, True)
        assert p.predict(0x400)

    def test_distinct_pcs_learn_independently(self):
        p = BimodalPredictor(1024)
        for _ in range(10):
            p.update(0x400, True)
            p.update(0x404, False)
        assert p.predict(0x400)
        assert not p.predict(0x404)

    def test_word_adjacent_pcs_do_not_alias(self):
        # the regression behind the pc >> 2 indexing fix
        p = BimodalPredictor(4096)
        for i in range(64):
            p.update(0x1000 + 4 * i, True)
        for i in range(64):
            assert p.predict(0x1000 + 4 * i)


class TestGshare:
    def test_learns_alternating_pattern(self):
        p = GsharePredictor(4096, history_bits=8)
        pattern = [True, False] * 200
        correct = 0
        for taken in pattern:
            correct += p.predict(0x500) == taken
            p.update(0x500, taken)
        # the tail of the run should be essentially perfect
        assert correct > len(pattern) * 0.8

    def test_bimodal_cannot_learn_alternation(self):
        p = BimodalPredictor(4096)
        pattern = [True, False] * 200
        correct = sum(
            (p.predict(0x500) == taken, p.update(0x500, taken))[0]
            for taken in pattern
        )
        assert correct < len(pattern) * 0.7


class TestTournament:
    def test_beats_both_components_on_mixed_workload(self):
        rng = random.Random(7)
        sites = [(0x100 + 4 * i, rng.random() < 0.5) for i in range(16)]
        predictors = {
            "tournament": TournamentPredictor(),
            "bimodal": BimodalPredictor(),
            "gshare": GsharePredictor(),
        }
        scores = {name: 0 for name in predictors}
        trials = 3000
        for _ in range(trials):
            pc, alternates = sites[rng.randrange(len(sites))]
            taken = rng.random() < 0.9 if not alternates else rng.random() < 0.5
            for name, p in predictors.items():
                scores[name] += p.predict(pc) == taken
                p.update(pc, taken)
        assert scores["tournament"] >= scores["gshare"] * 0.95
        assert scores["tournament"] >= scores["bimodal"] * 0.95

    def test_static_taken(self):
        p = StaticTakenPredictor()
        assert p.predict(0x1234)
        p.update(0x1234, False)
        assert p.predict(0x1234)


class TestMakePredictor:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("taken", StaticTakenPredictor),
            ("bimodal", BimodalPredictor),
            ("gshare", GsharePredictor),
            ("tournament", TournamentPredictor),
        ],
    )
    def test_kinds(self, kind, cls):
        assert isinstance(make_predictor(PredictorSpec(kind=kind)), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor(PredictorSpec(kind="neural"))


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(BTBConfig(entries=64, assoc=4))
        assert btb.lookup(0x400) is None
        btb.install(0x400, 0x999)
        assert btb.lookup(0x400) == 0x999

    def test_update_replaces_target(self):
        btb = BTB()
        btb.install(0x400, 0x1)
        btb.install(0x400, 0x2)
        assert btb.lookup(0x400) == 0x2

    def test_set_eviction_is_lru(self):
        btb = BTB(BTBConfig(entries=8, assoc=2))  # 4 sets
        stride = 4 * 4  # same set (pc >> 2 indexing over 4 sets)
        pcs = [0x100 + i * stride for i in range(3)]
        btb.install(pcs[0], 1)
        btb.install(pcs[1], 2)
        btb.lookup(pcs[0])
        btb.install(pcs[2], 3)  # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None

    def test_word_adjacent_pcs_use_distinct_sets(self):
        btb = BTB(BTBConfig(entries=2048, assoc=4))
        for i in range(128):
            btb.install(0x100 + 4 * i, i)
        hits = sum(btb.lookup(0x100 + 4 * i) == i for i in range(128))
        assert hits == 128

    def test_hit_rate(self):
        btb = BTB()
        btb.install(0x10, 0x20)
        btb.lookup(0x10)
        btb.lookup(0x14)
        assert btb.hit_rate == pytest.approx(0.5)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BTBConfig(entries=10, assoc=4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)


class TestLocalHistory:
    def test_learns_loop_exit_pattern(self):
        """A fixed-trip loop branch is perfectly periodic: the local
        predictor should learn the exit, bimodal cannot."""
        from repro.branch import LocalHistoryPredictor

        local = LocalHistoryPredictor(history_bits=10)
        bimodal = BimodalPredictor()
        pattern = ([True] * 5 + [False]) * 120  # trip count 5
        scores = {"local": 0, "bimodal": 0}
        for taken in pattern:
            scores["local"] += local.predict(0x800) == taken
            scores["bimodal"] += bimodal.predict(0x800) == taken
            local.update(0x800, taken)
            bimodal.update(0x800, taken)
        # steady state: local near-perfect, bimodal misses every exit
        assert scores["local"] > len(pattern) * 0.9
        assert scores["bimodal"] < len(pattern) * 0.87

    def test_distinct_pcs_have_distinct_histories(self):
        from repro.branch import LocalHistoryPredictor

        p = LocalHistoryPredictor()
        for _ in range(50):
            p.update(0x100, True)
            p.update(0x104, False)
        assert p.predict(0x100)
        assert not p.predict(0x104)

    def test_make_predictor_local(self):
        from repro.branch import LocalHistoryPredictor

        predictor = make_predictor(PredictorSpec(kind="local"))
        assert isinstance(predictor, LocalHistoryPredictor)

    def test_invalid_geometry(self):
        from repro.branch import LocalHistoryPredictor

        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_entries=100)
