"""Tests for the design-space exploration subsystem (repro.explore)."""

import json

import pytest

from repro.core import CoreConfig
from repro.core.config import DRAConfig
from repro.core.simulator import simulate
from repro.errors import ConfigError
from repro.explore import (
    AnalyticalPruner,
    ExplorationStore,
    HalvingSettings,
    HardwareCost,
    ParameterSpace,
    PruneSettings,
    build_frontier,
    diff_frontiers,
    discrete,
    dominates,
    dra_space,
    hardware_cost,
    int_range,
    mechanisms_space,
    named_space,
    pareto_frontier,
    predict_ipc,
    run_exploration,
    run_search,
    smoke_space,
)
from repro.explore.pareto import FrontierPoint
from repro.explore.scheduler import _select
from repro.harness import HarnessSettings
from repro.workloads import workload_profiles

WORKLOADS = ("compress", "swim")
#: Inline execution: these campaigns are tiny and fork overhead dominates.
INLINE = HarnessSettings(isolate="inline")
#: Tiny rung geometry used throughout (seconds, not minutes).
TINY = HalvingSettings(
    rungs=2, base_instructions=400, growth=3, warmup=8_000,
    detailed_warmup=200,
)


class TestSpace:
    def test_grid_is_exhaustive_and_ordered(self):
        space = smoke_space()
        grid = space.grid()
        labels = [c.label for c in grid]
        assert len(labels) == len(set(labels))
        assert len(grid) == space.size + len(space.baselines)
        assert grid == space.grid()  # deterministic order

    def test_sample_is_deterministic_and_distinct(self):
        space = dra_space()
        a = space.sample(5, seed=7)
        b = space.sample(5, seed=7)
        assert [c.label for c in a] == [c.label for c in b]
        sampled = [c for c in a if not c.pinned]
        assert len(sampled) == 5
        assert len({c.label for c in sampled}) == 5
        # different seed, different (or at least reproducibly ordered) draw
        c = space.sample(5, seed=8)
        assert [x.label for x in c] == [x.label for x in space.sample(5, 8)]

    def test_sample_falls_back_to_grid(self):
        space = smoke_space()
        assert [c.label for c in space.sample(10_000)] == \
            [c.label for c in space.grid()]

    def test_sample_keeps_baselines(self):
        space = dra_space()
        sampled = space.sample(2, seed=0)
        pinned = [c for c in sampled if c.pinned]
        assert len(pinned) == len(space.baselines)

    def test_signature_tracks_definition(self):
        assert smoke_space().signature() == smoke_space().signature()
        assert smoke_space().signature() != dra_space().signature()

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigError):
            ParameterSpace(
                axes=[discrete("a", (1,)), discrete("a", (2,))],
                build=lambda values: CoreConfig.base(),
            )

    def test_int_range_axis(self):
        axis = int_range("n", 2, 8, step=2)
        assert axis.values == (2, 4, 6, 8)
        with pytest.raises(ConfigError):
            int_range("n", 5, 3)

    def test_named_space_resolution(self):
        assert named_space("smoke").name == "smoke"
        with pytest.raises(ConfigError):
            named_space("warp-drive")

    def test_candidate_value_lookup(self):
        candidate = smoke_space().grid()[0]
        assert candidate.value("rf") == 3
        with pytest.raises(KeyError):
            candidate.value("voltage")

    def test_stratify_axis_must_exist(self):
        with pytest.raises(ConfigError):
            ParameterSpace(
                axes=[discrete("a", (1,))],
                build=lambda values: CoreConfig.base(),
                stratify_by="b",
            )


class TestMechanismsSpace:
    def test_registered_and_enumerable(self):
        space = named_space("mechanisms")
        assert space.name == "mechanisms"
        assert space.stratify_by == "rf"
        grid = space.grid()
        labels = [c.label for c in grid]
        assert len(labels) == len(set(labels))
        # 3 rf latencies x 7 mechanism codes + 3 pinned base machines
        assert len(grid) == 24
        pinned = [c for c in grid if c.pinned]
        assert [c.label for c in pinned] == [
            "base,rf=3", "base,rf=5", "base,rf=7",
        ]

    def test_mechanism_codes_build_the_right_machines(self):
        from repro.core.config import LoadRecovery

        space = mechanisms_space()
        by_label = {c.label: c.config for c in space.grid()}
        dra = by_label["rf=5,mechanism=dra:8"]
        assert dra.dra is not None and dra.dra.crc_entries == 8
        ports = by_label["rf=5,mechanism=ports:8:share"]
        assert ports.dra is None
        assert ports.rf_read_ports == 8
        assert ports.ports.arbitration == "operand_share"
        banked = by_label["rf=7,mechanism=ports:8:banked"]
        assert banked.ports.arbitration == "banked"
        ssr = by_label["rf=3,mechanism=ssr:2"]
        assert ssr.load_recovery is LoadRecovery.SSR
        assert ssr.ssr_threshold == 2
        base = by_label["base,rf=5"]
        assert base == CoreConfig.base(5)

    def test_groups_are_per_rf_and_family(self):
        space = mechanisms_space()
        groups = {c.label: c.group for c in space.grid()}
        assert groups["rf=5,mechanism=ports:8"] == "rf5:ports"
        assert groups["rf=5,mechanism=ports:8:banked"] == "rf5:ports"
        assert groups["rf=5,mechanism=ssr:2"] == "rf5:ssr"
        assert groups["base,rf=5"] == "rf5:base"

    def test_unknown_mechanism_code_rejected(self):
        from repro.explore.space import _build_mechanism

        with pytest.raises(ConfigError):
            _build_mechanism(5, "warp:9")
        with pytest.raises(ConfigError):
            _build_mechanism(5, "ports:8:holographic")

    def test_stratified_frontier_keeps_per_rf_winners(self):
        space = mechanisms_space()
        by_label = {c.label: c for c in space.grid()}
        # rf3's machine strictly beats rf5's in IPC and every cost axis;
        # globally it would shadow rf5, stratified it must not
        scored = [
            (by_label["rf=3,mechanism=ports:8"], 1.2),
            (by_label["rf=5,mechanism=ports:8"], 1.0),
        ]
        report = build_frontier(scored, stratify_by=space.stratify_by)
        assert {p.label for p in report.frontier} == {
            "rf=3,mechanism=ports:8", "rf=5,mechanism=ports:8",
        }
        unstratified = build_frontier(scored)
        assert {p.label for p in unstratified.frontier} == {
            "rf=3,mechanism=ports:8",
        }

    def test_hardware_cost_prices_each_mechanism_currency(self):
        from repro.core.config import LoadRecovery, PortConfig

        reduced = hardware_cost(CoreConfig.base(
            5, rf_read_ports=8,
            ports=PortConfig(arbitration="operand_share"),
        ))
        assert reduced.crc_entries_total == 0
        assert reduced.rf_read_ports == 8
        ssr = hardware_cost(CoreConfig.base(
            5, load_recovery=LoadRecovery.SSR, ssr_threshold=4,
        ))
        # SSR buys nothing in hardware: it pays in held issue slots
        assert ssr == hardware_cost(CoreConfig.base(5))

    def test_tiny_mechanisms_exploration_has_non_dra_frontier(self):
        space = mechanisms_space(
            rf_latencies=(5, 7),
            mechanisms=("dra:16", "ports:8", "ssr:6"),
        )
        result = run_exploration(
            space,
            workloads=("int_test",),
            halving=HalvingSettings(
                rungs=2, base_instructions=400, growth=3, warmup=8_000,
                detailed_warmup=200, backend="optimized",
            ),
            harness=INLINE,
            prune=False,
        )
        non_dra = [
            p for p in result.frontier.frontier
            if p.candidate.config.dra is None and not p.candidate.pinned
            and p.candidate.value("rf") in (5, 7)
        ]
        assert non_dra, (
            "stratified mechanisms frontier lost every non-DRA point "
            "at rf 5/7"
        )
        assert result.ordering(), "base and non-base must reach the end"


class TestPareto:
    def test_dominates_requires_difference(self):
        cost = HardwareCost(16, 8, 7)
        space = smoke_space()
        c = space.grid()[0]
        a = FrontierPoint(candidate=c, ipc=1.0, cost=cost)
        b = FrontierPoint(candidate=c, ipc=1.0, cost=cost)
        # identical objective vectors tie: neither dominates
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_exact_ties_all_kept(self):
        space = smoke_space()
        candidates = [c for c in space.grid()][:3]
        cost = HardwareCost(16, 8, 7)
        points = [
            FrontierPoint(candidate=c, ipc=1.0, cost=cost)
            for c in candidates
        ]
        frontier = pareto_frontier(points)
        assert len(frontier) == 3

    def test_single_axis_degeneration(self):
        # equal hardware cost everywhere: the frontier is the argmax set
        space = smoke_space()
        candidates = [c for c in space.grid()][:3]
        cost = HardwareCost(16, 8, 7)
        ipcs = (0.9, 1.1, 1.1)
        points = [
            FrontierPoint(candidate=c, ipc=ipc, cost=cost)
            for c, ipc in zip(candidates, ipcs)
        ]
        frontier = pareto_frontier(points)
        assert sorted(p.ipc for p in frontier) == [1.1, 1.1]

    def test_strict_domination_drops_point(self):
        space = smoke_space()
        a, b = space.grid()[:2]
        pa = FrontierPoint(candidate=a, ipc=1.2, cost=HardwareCost(8, 8, 7))
        pb = FrontierPoint(candidate=b, ipc=1.0, cost=HardwareCost(16, 8, 9))
        assert dominates(pa, pb)
        assert not dominates(pb, pa)
        assert pareto_frontier([pa, pb]) == [pa]

    def test_hardware_cost_base_vs_dra(self):
        base = hardware_cost(CoreConfig.base(3))
        dra = hardware_cost(
            CoreConfig.with_dra(3, dra=DRAConfig(crc_entries=16))
        )
        assert base.crc_entries_total == 0
        assert dra.crc_entries_total > 0
        # the DRA's whole point: fewer issue-path register-file ports
        assert dra.rf_read_ports < base.rf_read_ports

    def test_build_frontier_report_roundtrip(self):
        space = smoke_space()
        scored = [(c, 1.0 + 0.01 * i) for i, c in enumerate(space.grid())]
        report = build_frontier(scored)
        payload = json.loads(report.dumps())
        assert payload["frontier"]
        labels = {p["label"] for p in payload["frontier"]}
        assert labels == {p.candidate.label for p in report.frontier}


class TestScheduler:
    def test_settings_validation(self):
        with pytest.raises(ConfigError):
            HalvingSettings(rungs=0)
        with pytest.raises(ConfigError):
            HalvingSettings(eta=1)
        with pytest.raises(ConfigError):
            HalvingSettings(budget=0)

    def test_rung_geometry(self):
        settings = HalvingSettings(rungs=3, base_instructions=100, growth=4)
        assert [settings.rung_instructions(k) for k in range(3)] == \
            [100, 400, 1600]
        assert settings.final_instructions == 1600

    def test_select_is_grouped_and_keeps_pins(self):
        space = dra_space(rf_latencies=(3, 5), crc_sizes=(8, 16),
                          insertion_policies=("filtered",))
        alive = space.grid()
        scores = {c.label: 1.0 + 0.01 * i for i, c in enumerate(alive)}
        survivors = _select(alive, scores, eta=2)
        labels = [c.label for c in survivors]
        # every pinned baseline survives
        for c in alive:
            if c.pinned:
                assert c.label in labels
        # each rf group keeps ceil(2/2)=1 contender
        for rf in (3, 5):
            group = [l for l in labels
                     if l.startswith(f"rf={rf}") and "base" not in l]
            assert len(group) == 1

    def test_select_breaks_ties_by_label(self):
        space = smoke_space()
        alive = [c for c in space.grid() if not c.pinned]
        scores = {c.label: 1.0 for c in alive}
        survivors = _select(alive, scores, eta=4)
        assert [c.label for c in survivors] == \
            [sorted(c.label for c in alive)[0]]

    def test_search_is_deterministic(self):
        candidates = smoke_space().grid()
        a = run_search(candidates, WORKLOADS, TINY, INLINE)
        b = run_search(candidates, WORKLOADS, TINY, INLINE)
        assert [r.to_json() for r in a.rungs] == \
            [r.to_json() for r in b.rungs]
        assert a.final_scores == b.final_scores
        assert a.spent_instructions == b.spent_instructions

    def test_search_runs_all_rungs_and_spends(self):
        candidates = smoke_space().grid()
        result = run_search(candidates, ("compress",), TINY, INLINE)
        assert len(result.rungs) == TINY.rungs
        assert not result.truncated
        expected_rung0 = TINY.base_instructions * len(candidates)
        assert result.rungs[0].instructions_spent == expected_rung0
        assert result.spent_instructions == \
            sum(r.instructions_spent for r in result.rungs)

    def test_budget_truncates_ladder(self):
        candidates = smoke_space().grid()
        rung0 = TINY.base_instructions * len(candidates)
        budgeted = HalvingSettings(
            rungs=2, base_instructions=TINY.base_instructions, growth=3,
            warmup=TINY.warmup, detailed_warmup=TINY.detailed_warmup,
            budget=rung0 + 1,
        )
        result = run_search(candidates, ("compress",), budgeted, INLINE)
        assert result.truncated
        assert len(result.rungs) == 1
        # the answer degrades to the funded rung's survivors
        assert result.final_scores
        assert result.spent_instructions <= budgeted.budget

    def test_duplicate_labels_rejected(self):
        candidates = smoke_space().grid()
        with pytest.raises(ConfigError):
            run_search(candidates + candidates[:1], ("compress",), TINY,
                       INLINE)


class TestPrune:
    def test_predict_monotonic_in_rf_latency(self):
        profiles = workload_profiles("compress")
        fast, _ = predict_ipc(CoreConfig.base(3), profiles)
        slow, _ = predict_ipc(CoreConfig.base(7), profiles)
        assert fast > slow

    def test_filtered_predicted_above_always(self):
        profiles = workload_profiles("compress")
        filtered, _ = predict_ipc(
            CoreConfig.with_dra(3, dra=DRAConfig(crc_entries=8)), profiles
        )
        always, _ = predict_ipc(
            CoreConfig.with_dra(
                3, dra=DRAConfig(crc_entries=8, insertion_policy="always")
            ),
            profiles,
        )
        assert filtered > always

    def test_pinned_candidates_never_pruned(self):
        pruner = AnalyticalPruner(WORKLOADS)
        kept, _ = pruner.filter(dra_space().grid())
        kept_labels = {c.label for c in kept}
        for baseline in dra_space().baselines:
            assert baseline.label in kept_labels

    def test_zero_margin_rejected_only_when_negative(self):
        PruneSettings(margin=0.0)
        with pytest.raises(ConfigError):
            PruneSettings(margin=-0.1)

    def test_calibration_records_errors(self):
        pruner = AnalyticalPruner(("compress",))
        candidate = smoke_space().grid()[0]
        pruner.record(candidate, measured_ipc=1.0)
        calibration = pruner.calibration()
        assert calibration["count"] == 1
        assert calibration["records"][0]["label"] == candidate.label

    @pytest.mark.parametrize("space", [
        smoke_space(),
        dra_space(rf_latencies=(3, 5), crc_sizes=(8, 16)),
    ], ids=["smoke", "dra-2x2x2"])
    def test_prune_never_discards_a_frontier_point(self, space):
        """Property: the measured Pareto frontier survives pruning.

        Every grid point is simulated at small (but non-noise) fidelity;
        the frontier of the *full* measured grid must be a subset of the
        pruner's keep set, and every pruned point must be weakly
        dominated in measurement by some kept point.
        """
        grid = space.grid()
        measured = {}
        for candidate in grid:
            ipcs = [
                simulate(workload, candidate.config, instructions=2_000,
                         warmup=15_000, detailed_warmup=300, seed=0).ipc
                for workload in WORKLOADS
            ]
            measured[candidate.label] = sum(ipcs) / len(ipcs)
        pruner = AnalyticalPruner(WORKLOADS)
        kept, pruned = pruner.filter(grid)
        assert pruned, "the property is vacuous if nothing is pruned"
        kept_labels = {c.label for c in kept}
        frontier = build_frontier(
            [(c, measured[c.label]) for c in grid]
        ).frontier
        for point in frontier:
            assert point.candidate.label in kept_labels
        for decision in pruned:
            candidate = decision.candidate
            assert any(
                measured[k.label] >= measured[candidate.label]
                and hardware_cost(k.config).dominates_cost(
                    hardware_cost(candidate.config)
                )
                for k in kept
            ), f"{candidate.label} was pruned but not dominated"


class TestStore:
    def _record(self, frontier):
        return {
            "space": "abc123",
            "frontier": [
                {"label": label, "ipc": ipc} for label, ipc in frontier
            ],
        }

    def test_append_and_history(self, tmp_path):
        store = ExplorationStore(tmp_path)
        assert len(store) == 0
        v0 = store.append(self._record([("a", 1.0)]))
        v1 = store.append(self._record([("a", 1.01)]))
        assert (v0, v1) == (0, 1)
        history = store.history()
        assert [r["version"] for r in history] == [0, 1]
        assert store.latest("abc123")["version"] == 1
        assert store.latest("nope") is None

    def test_corrupt_line_surfaces(self, tmp_path):
        store = ExplorationStore(tmp_path)
        store.append(self._record([("a", 1.0)]))
        with open(store.path, "a") as handle:
            handle.write("not json\n")
        with pytest.raises(ConfigError):
            store.history()

    def test_diff_flags_changes_and_regressions(self):
        old = self._record([("a", 1.0), ("b", 0.9)])
        new = self._record([("a", 0.9), ("c", 1.1)])
        diff = diff_frontiers(old, new)
        assert diff.added == ["c"]
        assert diff.dropped == ["b"]
        assert "a" in diff.regressions
        assert "a" in diff.verdicts
        assert not diff.clean
        assert "REGRESSION" in diff.describe()

    def test_diff_reports_improvements(self):
        old = self._record([("a", 1.0)])
        new = self._record([("a", 1.1)])
        diff = diff_frontiers(old, new)
        assert diff.clean  # improvements never fail the diff
        assert diff.improvements == {"a": (1.0, 1.1)}
        assert "IMPROVEMENT" in diff.describe()

    def test_diff_tolerates_small_drift(self):
        old = self._record([("a", 1.000)])
        new = self._record([("a", 0.995)])
        diff = diff_frontiers(old, new)
        assert diff.clean
        assert not diff.improvements

    def test_diff_band_calibrates_from_series(self):
        # A 1.5% drop hides inside the fixed 2% fallback band, but a
        # quiet history gives the statistical detector a much tighter
        # band — the same drop becomes a finding.
        old = self._record([("a", 1.000)])
        new = self._record([("a", 0.985)])
        assert diff_frontiers(old, new).clean
        quiet = {"a": [1.0001, 0.9999, 1.0002, 0.9998, 1.0]}
        flagged = diff_frontiers(old, new, series=quiet)
        assert "a" in flagged.regressions

    def test_frontier_series_tracks_labels_per_space(self, tmp_path):
        store = ExplorationStore(tmp_path)
        store.append(self._record([("a", 1.0), ("b", 0.9)]))
        store.append(self._record([("a", 1.1)]))
        other = self._record([("a", 5.0)])
        other["space"] = "other-space"
        store.append(other)
        series = store.frontier_series(self._record([])["space"])
        assert series == {"a": [1.0, 1.1], "b": [0.9]}


class TestEngine:
    def test_smoke_exploration_end_to_end(self, tmp_path):
        result = run_exploration(
            smoke_space(),
            workloads=WORKLOADS,
            halving=TINY,
            harness=INLINE,
            store_dir=tmp_path / "ledger",
            bench_out=tmp_path / "BENCH_explore.json",
        )
        assert result.frontier.frontier, "frontier must be non-empty"
        assert result.ordering(), "base + DRA must reach the final rung"
        assert result.ledger_version == 0
        assert 0.0 < result.savings_fraction < 1.0
        bench = json.loads((tmp_path / "BENCH_explore.json").read_text())
        assert bench["schema"] == 1
        assert bench["frontier_size"] == len(result.frontier.frontier)
        assert bench["savings_fraction"] == pytest.approx(
            result.savings_fraction
        )

    def test_second_exploration_diffs_ledger(self, tmp_path):
        kwargs = dict(
            workloads=("compress",), halving=TINY, harness=INLINE,
            store_dir=tmp_path / "ledger",
        )
        first = run_exploration(smoke_space(), **kwargs)
        second = run_exploration(smoke_space(), **kwargs)
        assert first.ledger_diff is None
        assert second.ledger_version == 1
        assert second.ledger_diff is not None
        # identical settings: the frontier reproduces, so the diff is clean
        assert second.ledger_diff.clean

    def test_exploration_without_prune_or_store(self):
        result = run_exploration(
            smoke_space(), workloads=("compress",), halving=TINY,
            harness=INLINE, prune=False,
        )
        assert not result.pruned
        assert result.calibration == {"count": 0}
        assert result.ledger_version is None

    def test_render_mentions_the_essentials(self, tmp_path):
        result = run_exploration(
            smoke_space(), workloads=WORKLOADS, halving=TINY,
            harness=INLINE, store_dir=tmp_path,
        )
        text = result.render()
        assert "Pareto" in text or "frontier" in text
        assert "saved" in text
        assert "rung 0" in text
