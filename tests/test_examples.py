"""Smoke tests for the runnable examples."""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_usage_docstring(path):
    text = path.read_text()
    assert '"""' in text
    assert "Usage" in text or "usage" in text


def test_quickstart_runs_end_to_end(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py", "m88ksim"])
    runpy.run_path(
        str(EXAMPLES[0].parent / "quickstart.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "DRA speedup over base" in out
    assert "IPC" in out
