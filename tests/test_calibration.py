"""Calibration bands for the Spec95 stand-ins.

These tests pin the *emergent* characteristics (mispredict rates, cache
miss rates, relative IPC ordering) that DESIGN.md §4 assigns to each
workload and that the paper's analysis leans on.  Bands are wide — the
point is the ordering and the regime, not exact numbers.
"""

import pytest

from repro import CoreConfig, simulate

RUN = dict(instructions=5_000, warmup=120_000, detailed_warmup=800)


@pytest.fixture(scope="module")
def results():
    names = (
        "compress", "gcc", "go", "m88ksim",
        "apsi", "hydro2d", "mgrid", "su2cor", "swim", "turb3d",
    )
    return {name: simulate(name, CoreConfig.base(), **RUN) for name in names}


class TestBranchBehaviour:
    def test_integer_codes_mispredict_often(self, results):
        for name in ("compress", "gcc", "go"):
            assert results[name].stats.branch_mispredict_rate > 0.08, name

    def test_go_is_the_worst(self, results):
        go = results["go"].stats.branch_mispredict_rate
        for name in ("compress", "gcc", "m88ksim"):
            assert go >= results[name].stats.branch_mispredict_rate

    def test_m88ksim_predicts_well(self, results):
        assert results["m88ksim"].stats.branch_mispredict_rate < 0.08

    def test_fp_codes_predict_well(self, results):
        for name in ("swim", "mgrid", "hydro2d", "turb3d", "apsi", "su2cor"):
            assert results[name].stats.branch_mispredict_rate < 0.08, name


class TestMemoryBehaviour:
    def test_swim_and_turb3d_miss_l1_hit_l2(self, results):
        for name in ("swim", "turb3d"):
            stats = results[name].stats
            assert stats.load_l1_miss_rate > 0.12, name
            # most L1 misses must be served by the L2
            assert stats.load_l2_misses < 0.35 * stats.load_l1_misses, name

    def test_hydro2d_and_mgrid_go_to_memory(self, results):
        for name in ("hydro2d", "mgrid"):
            stats = results[name].stats
            assert stats.load_l1_miss_rate > 0.2, name
            assert stats.load_l2_misses > 0.3 * stats.load_l1_misses, name

    def test_m88ksim_mostly_hits(self, results):
        assert results["m88ksim"].stats.load_l1_miss_rate < 0.10

    def test_turb3d_has_the_dtlb_misses(self, results):
        turb = results["turb3d"].stats.dtlb_misses
        for name in ("swim", "compress", "m88ksim", "apsi"):
            assert turb > 3 * results[name].stats.dtlb_misses, name


class TestPerformanceRegimes:
    def test_m88ksim_is_fastest_integer_code(self, results):
        m88 = results["m88ksim"].ipc
        for name in ("compress", "gcc", "go"):
            assert m88 > results[name].ipc

    def test_go_is_slowest(self, results):
        go = results["go"].ipc
        for name, result in results.items():
            if name != "go":
                assert go <= result.ipc + 0.05, name

    def test_apsi_has_low_ilp_for_an_fp_code(self, results):
        # apsi's 2-strand serial chains cap it well below the
        # loop-parallel FP codes (turb3d sits low for a different
        # reason: DTLB traps and memory traffic, not ILP)
        apsi = results["apsi"].ipc
        assert apsi < 0.75 * results["swim"].ipc
        assert apsi < results["su2cor"].ipc

    def test_all_ipcs_in_sane_range(self, results):
        for name, result in results.items():
            assert 0.3 < result.ipc < 6.0, name


class TestUselessWork:
    def test_load_loop_workloads_reissue(self, results):
        for name in ("swim", "turb3d", "hydro2d", "mgrid"):
            stats = results[name].stats
            assert stats.total_reissues > 100, name

    def test_apsi_does_less_useless_work_than_swim(self, results):
        # §3.1: apsi's useless work per mis-speculation is small
        assert (
            results["apsi"].stats.total_reissues
            < results["swim"].stats.total_reissues
        )
