"""Tests for memory dependence speculation (the memory dependence loop)."""

import pytest

from repro.core import CoreConfig
from repro.core.memdep import (
    MemDepConfig,
    MemDepPolicy,
    StoreQueue,
    StoreWaitPredictor,
)
from repro.core.pipeline import Simulator
from repro.isa import DynInst, MicroOp, OpClass
from repro.loops import loops_for_config
from repro.workloads import SPEC95_PROFILES
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
)

KB = 1024


def make_store(uid_source=[0]) -> DynInst:
    op = MicroOp(pc=0x100, opclass=OpClass.STORE, srcs=(1, 2), address=0x40)
    return DynInst(op=op, thread=0)


class TestStoreWaitPredictor:
    def test_trains_and_predicts(self):
        predictor = StoreWaitPredictor(entries=64)
        assert not predictor.predict_wait(0x400)
        predictor.train(0x400)
        assert predictor.predict_wait(0x400)
        assert predictor.trains == 1

    def test_periodic_clear(self):
        predictor = StoreWaitPredictor(entries=64, clear_interval=100)
        predictor.train(0x400)
        predictor.tick(50)
        assert predictor.predict_wait(0x400)
        predictor.tick(150)
        assert not predictor.predict_wait(0x400)
        assert predictor.clears >= 1

    def test_word_indexing(self):
        predictor = StoreWaitPredictor(entries=1024)
        predictor.train(0x400)
        assert not predictor.predict_wait(0x404)


class TestStoreQueue:
    def test_capacity(self):
        queue = StoreQueue(entries=2)
        queue.add(make_store())
        assert not queue.full
        queue.add(make_store())
        assert queue.full
        with pytest.raises(RuntimeError):
            queue.add(make_store())

    def test_oldest_unexecuted(self):
        queue = StoreQueue()
        a, b = make_store(), make_store()
        queue.add(a)
        queue.add(b)
        assert queue.oldest_unexecuted_uid() == a.uid
        a.executed = True
        assert queue.oldest_unexecuted_uid() == b.uid
        b.executed = True
        assert queue.oldest_unexecuted_uid() is None

    def test_has_older_unexecuted(self):
        queue = StoreQueue()
        a = make_store()
        queue.add(a)
        assert queue.has_older_unexecuted(a.uid + 10)
        assert not queue.has_older_unexecuted(a.uid)
        a.executed = True
        assert not queue.has_older_unexecuted(a.uid + 10)

    def test_drop_squashed(self):
        queue = StoreQueue()
        a, b = make_store(), make_store()
        queue.add(a)
        queue.add(b)
        a.squashed = True
        queue.drop_squashed()
        assert len(queue) == 1
        assert queue.oldest_unexecuted_uid() == b.uid

    def test_remove_missing_is_noop(self):
        queue = StoreQueue()
        queue.remove(make_store())
        assert len(queue) == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemDepConfig(store_queue_entries=0)
        with pytest.raises(ValueError):
            MemDepConfig(predictor_entries=100)
        with pytest.raises(ValueError):
            MemDepConfig(clear_interval=0)


def aliasing_profile() -> WorkloadProfile:
    """Heavy store-to-load communication: many reorder hazards."""
    return WorkloadProfile(
        name="aliasy",
        mix=InstructionMix(
            {OpClass.INT_ALU: 0.5, OpClass.LOAD: 0.3, OpClass.STORE: 0.2}
        ),
        memory=MemoryModel(
            hot_frac=1.0, warm_frac=0.0, cold_frac=0.0, stream_frac=0.0,
            hot_bytes=32 * KB, alias_site_frac=0.4,
        ),
        deps=DependencyModel(
            strands=16, chain_frac=0.1, near_mean=20.0, far_frac=0.0,
            two_src_frac=0.3, global_frac=0.2, fanout_burst_frac=0.0,
        ),
    )


def run(policy: MemDepPolicy, instructions=3000):
    config = CoreConfig.base().replace(
        memdep=MemDepConfig(policy=policy)
    )
    sim = Simulator(config, [aliasing_profile()], seed=0)
    sim.run(instructions)
    return sim


class TestMemDepInPipeline:
    def test_naive_policy_traps(self):
        sim = run(MemDepPolicy.NAIVE)
        assert sim.stats.memdep_traps > 0
        assert sim.stats.retired >= 3000

    def test_conservative_never_traps(self):
        sim = run(MemDepPolicy.CONSERVATIVE)
        assert sim.stats.memdep_traps == 0
        assert sim.stats.store_wait_loads > 100

    def test_predictor_reduces_traps_below_naive(self):
        naive = run(MemDepPolicy.NAIVE)
        predict = run(MemDepPolicy.PREDICT)
        assert predict.stats.memdep_traps <= naive.stats.memdep_traps
        assert predict.stats.store_wait_loads > 0

    def test_predict_beats_conservative(self):
        predict = run(MemDepPolicy.PREDICT)
        conservative = run(MemDepPolicy.CONSERVATIVE)
        assert predict.stats.ipc > conservative.stats.ipc

    def test_disabled_memdep_never_traps(self):
        config = CoreConfig.base().replace(memdep=None)
        sim = Simulator(config, [aliasing_profile()], seed=0)
        sim.run(2000)
        assert sim.stats.memdep_traps == 0
        assert sim.stats.store_wait_loads == 0

    def test_traps_squash_and_replay(self):
        sim = run(MemDepPolicy.NAIVE)
        if sim.stats.memdep_traps:
            assert sim.stats.squashed_instructions > 0

    def test_loop_inventory_includes_memdep(self):
        config = CoreConfig.base()
        loops = {l.name: l for l in loops_for_config(config)}
        assert "memory_dependence" in loops
        # recovery at fetch: recovery time covers the front of the pipe
        assert loops["memory_dependence"].recovery_time == (
            config.fetch_depth + config.dec_iq
        )
        disabled = {l.name for l in loops_for_config(config.replace(memdep=None))}
        assert "memory_dependence" not in disabled

    def test_store_queue_pressure_stalls_rename(self):
        config = CoreConfig.base().replace(
            memdep=MemDepConfig(store_queue_entries=4)
        )
        sim = Simulator(config, [aliasing_profile()], seed=0)
        sim.run(2000)
        assert sim.stats.store_queue_full_stalls > 0
