"""Tests for the workload fuzzer, shrinker, and reproducer format.

The acceptance bar: pointed at an injected DRA bug, the fuzzer must
find it and shrink the case to a reproducer of at most 50 micro-ops.
"""

import json
import random

import pytest

from repro.errors import ReproError
from repro.verify import (
    INJECTIONS,
    FuzzCase,
    fuzz,
    load_reproducer,
    make_reproducer,
    profile_from_dict,
    profile_to_dict,
    random_case,
    replay,
    run_case,
    shrink,
    write_reproducer,
)
from repro.verify.fuzz import canonical_cases
from repro.workloads import SMOKE_PROFILES, SyntheticTraceGenerator


class TestProfileSerialization:
    def test_round_trip_preserves_stream(self):
        """Serialise -> JSON -> deserialise must regenerate the exact
        stream (including through JSON's key sorting)."""
        original = profile_to_dict(SMOKE_PROFILES["int_test"])
        # force the key reordering a sort_keys dump performs
        reordered = json.loads(json.dumps(original, sort_keys=True))
        a = SyntheticTraceGenerator(
            profile_from_dict(original), seed=11, thread=0
        )
        b = SyntheticTraceGenerator(
            profile_from_dict(reordered), seed=11, thread=0
        )
        for _ in range(300):
            assert a.next_op() == b.next_op()


class TestCaseGeneration:
    def test_random_cases_are_valid_and_run(self):
        rng = random.Random(123)
        for _ in range(12):
            case = random_case(rng, max_instructions=60)
            case.build_config()   # must not raise
            case.build_profile()  # must not raise

    def test_canonical_cases_pass_clean(self):
        for case in canonical_cases(max_instructions=200):
            assert run_case(case) is None


class TestBackendFuzzSmoke:
    """Every registered exact backend survives the fuzzer's gauntlet."""

    def _exact_backends(self):
        from repro.core.backend import available_backends, get_backend

        return [
            n for n in available_backends() if get_backend(n).exact
        ]

    def test_canonical_cases_clean_on_every_exact_backend(self):
        for backend in self._exact_backends():
            for case in canonical_cases(max_instructions=150):
                failure = run_case(case, backend=backend)
                assert failure is None, (backend, case, failure)

    def test_random_smoke_on_every_exact_backend(self):
        rng = random.Random(777)
        cases = [random_case(rng, max_instructions=50) for _ in range(6)]
        for backend in self._exact_backends():
            for case in cases:
                failure = run_case(case, backend=backend)
                assert failure is None, (backend, failure)

    def test_inexact_backend_refused(self):
        case = canonical_cases(max_instructions=60)[0]
        with pytest.raises(ReproError):
            run_case(case, backend="sampled")

    def test_case_dict_round_trip(self):
        case = random_case(random.Random(7))
        clone = FuzzCase.from_dict(
            json.loads(json.dumps(case.to_dict(), sort_keys=True))
        )
        assert clone.to_dict() == case.to_dict()


class TestInjections:
    def test_skip_reissue_detected_and_shrunk(self):
        """The acceptance-criteria bug: a skipped reissue must be found
        and shrunk to a <= 50 micro-op reproducer."""
        result = fuzz(budget=60, seed=3, inject="skip-reissue")
        assert result.found, "fuzzer missed the planted skip-reissue bug"
        assert result.failure.kind == "violations"
        assert result.case.instructions <= 50
        # the shrunk case still fails stand-alone
        assert run_case(result.case, inject="skip-reissue") is not None
        # and passes without the planted bug
        assert run_case(result.case) is None

    def test_stale_crc_detected(self):
        result = fuzz(budget=120, seed=2, inject="stale-crc")
        assert result.found, "fuzzer missed the planted stale-CRC bug"
        assert any(
            violation["checker"] == "crc"
            for violation in result.failure.violations
        )

    def test_unknown_injection_rejected(self):
        with pytest.raises(ReproError):
            fuzz(budget=1, inject="no-such-bug")

    def test_injection_registry(self):
        assert set(INJECTIONS) == {"skip-reissue", "stale-crc"}


class TestReproducers:
    def _failing_case(self):
        result = fuzz(budget=60, seed=3, inject="skip-reissue")
        assert result.found
        return result

    def test_write_load_replay_round_trip(self, tmp_path):
        result = self._failing_case()
        path = str(tmp_path / "case.json")
        write_reproducer(
            path,
            make_reproducer(
                result.case, result.failure, inject="skip-reissue"
            ),
        )
        data = load_reproducer(path)
        assert data["version"] == 1
        assert data["inject"] == "skip-reissue"
        assert len(data["micro_ops"]) <= 50
        assert data["failure"]["violations"]
        failure = replay(path)
        assert failure is not None
        assert failure.kind == "violations"

    def test_replay_detects_generator_drift(self, tmp_path):
        result = self._failing_case()
        reproducer = make_reproducer(
            result.case, result.failure, inject="skip-reissue"
        )
        reproducer["micro_ops"][0]["pc"] += 4  # simulate stream drift
        path = str(tmp_path / "case.json")
        write_reproducer(path, reproducer)
        with pytest.raises(ReproError, match="diverges"):
            replay(path)

    def test_version_gate(self, tmp_path):
        path = str(tmp_path / "case.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"version": 99}, handle)
        with pytest.raises(ReproError, match="version"):
            load_reproducer(path)


class TestShrinker:
    def test_shrink_requires_failing_case(self):
        case = canonical_cases(max_instructions=100)[0]
        with pytest.raises(ValueError):
            shrink(case)

    def test_shrink_preserves_failure_and_reduces(self):
        case = canonical_cases(max_instructions=300)[1]  # DRA machine
        assert run_case(case, inject="skip-reissue") is not None
        shrunk = shrink(case, inject="skip-reissue")
        assert shrunk.instructions <= case.instructions
        assert run_case(shrunk, inject="skip-reissue") is not None
