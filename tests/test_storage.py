"""Tests for result persistence and comparison."""

import pytest

from repro import CoreConfig, simulate
from repro.analysis.storage import (
    SCHEMA_VERSION,
    compare_ipc,
    load_summary,
    result_summary,
    save_summary,
)


@pytest.fixture(scope="module")
def result():
    return simulate("m88ksim", CoreConfig.base(), instructions=600,
                    warmup=5_000, detailed_warmup=100)


class TestResultSummary:
    def test_summary_fields(self, result):
        summary = result_summary(result)
        assert summary["workload"] == "m88ksim"
        assert summary["config"] == "Base:5_5"
        assert summary["ipc"] == result.ipc
        assert "operand_sources" in summary
        assert "reissues" in summary

    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_summary(path, [result], extra={"note": "test"})
        payload = load_summary(path)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["extra"]["note"] == "test"
        assert len(payload["results"]) == 1
        assert payload["results"][0]["ipc"] == pytest.approx(result.ipc)

    def test_schema_mismatch_rejected(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_summary(path, [result])
        text = path.read_text().replace(
            f'"schema": {SCHEMA_VERSION}', '"schema": 999'
        )
        path.write_text(text)
        with pytest.raises(ValueError):
            load_summary(path)


class TestCompare:
    def test_ipc_deltas(self, result, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        save_summary(a, [result])
        save_summary(b, [result])
        deltas = compare_ipc(load_summary(a), load_summary(b))
        assert len(deltas) == 1
        assert deltas[0]["ratio"] == pytest.approx(1.0)

    def test_unmatched_entries_skipped(self, result, tmp_path):
        a = tmp_path / "a.json"
        save_summary(a, [])
        b = tmp_path / "b.json"
        save_summary(b, [result])
        assert compare_ipc(load_summary(a), load_summary(b)) == []
