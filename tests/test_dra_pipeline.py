"""Integration tests for the DRA running inside the pipeline."""

import pytest

from repro.core import CoreConfig, DRAConfig, OperandSource
from repro.core.pipeline import Simulator
from repro.core.stats import ReissueCause
from repro.workloads import SPEC95_PROFILES


def run_dra(workload="swim", rf=5, instructions=3000, dra=None, **config_over):
    config = CoreConfig.with_dra(rf, **({"dra": dra} if dra else {}))
    if config_over:
        config = config.replace(**config_over)
    sim = Simulator(config, [SPEC95_PROFILES[workload]], seed=0)
    sim.functional_warmup(40_000)
    sim.run(instructions)
    return sim


class TestOperandAccounting:
    def test_sources_partition_all_reads(self):
        sim = run_dra()
        stats = sim.stats
        total = stats.total_operand_reads
        assert total > 0
        assert stats.operand_reads[OperandSource.REGFILE] == 0
        parts = (
            stats.operand_reads[OperandSource.PREREAD]
            + stats.operand_reads[OperandSource.FORWARD]
            + stats.operand_reads[OperandSource.CRC]
            + stats.operand_reads[OperandSource.MISS]
        )
        assert parts == total

    def test_forwarding_buffer_dominates(self):
        """Paper Figure 9: more than half of operands come from the FB."""
        sim = run_dra()
        fractions = sim.stats.operand_source_fractions()
        assert fractions[OperandSource.FORWARD] > 0.5

    def test_preread_and_crc_both_used(self):
        sim = run_dra()
        fractions = sim.stats.operand_source_fractions()
        assert fractions[OperandSource.PREREAD] > 0.05
        assert fractions[OperandSource.CRC] > 0.02

    def test_miss_rate_is_small(self):
        """Most workloads are well under 1 % (paper §6)."""
        sim = run_dra("swim")
        assert sim.stats.operand_miss_rate < 0.01

    def test_base_machine_reads_register_file(self):
        config = CoreConfig.base()
        sim = Simulator(config, [SPEC95_PROFILES["swim"]], seed=0)
        sim.functional_warmup(20_000)
        sim.run(1500)
        stats = sim.stats
        assert stats.operand_reads[OperandSource.REGFILE] > 0
        assert stats.operand_reads[OperandSource.PREREAD] == 0
        assert stats.operand_reads[OperandSource.CRC] == 0


class TestOperandResolutionLoop:
    def test_misses_trigger_reissues(self):
        sim = run_dra("apsi", instructions=4000)
        stats = sim.stats
        assert stats.operand_miss_events > 0
        assert stats.reissues[ReissueCause.OPERAND_MISS] > 0

    def test_missed_instructions_eventually_complete(self):
        sim = run_dra("apsi", instructions=3000)
        assert sim.stats.retired >= 3000

    def test_miss_stalls_front_end(self):
        sim = run_dra("apsi", instructions=4000)
        if sim.stats.operand_miss_events:
            assert sim.stats.frontend_dra_stall_cycles > 0

    def test_apsi_misses_more_than_swim(self):
        """The paper's outlier: apsi's ~1.5 % vs well-under-1 % elsewhere."""
        apsi = run_dra("apsi", instructions=6000)
        swim = run_dra("swim", instructions=6000)
        assert apsi.stats.operand_miss_rate > 1.5 * swim.stats.operand_miss_rate
        assert apsi.stats.operand_miss_rate > 0.01


class TestCRCBehaviourInPipeline:
    def test_tiny_crc_misses_more(self):
        small = run_dra("apsi", dra=DRAConfig(crc_entries=1), instructions=2500)
        normal = run_dra("apsi", dra=DRAConfig(crc_entries=16), instructions=2500)
        assert small.stats.operand_miss_rate > normal.stats.operand_miss_rate

    def test_crc_invalidated_on_reallocation(self):
        sim = run_dra("swim", instructions=2500)
        assert sim.stats.crc_invalidations > 0

    def test_shadow_decrement_raises_miss_rate(self):
        plain = run_dra("swim", instructions=2500)
        shadow = run_dra(
            "swim", dra=DRAConfig(shadow_fb_decrement=True), instructions=2500
        )
        assert shadow.stats.operand_miss_rate >= plain.stats.operand_miss_rate


class TestDRAPerformance:
    def test_dra_beats_base_on_load_loop_workload(self):
        """The headline result (Figure 8) for a clear winner."""
        base = Simulator(CoreConfig.base(7), [SPEC95_PROFILES["compress"]], seed=0)
        base.functional_warmup(40_000)
        base.run(4000)
        dra = run_dra("compress", rf=7, instructions=4000)
        assert dra.stats.ipc > base.stats.ipc

    def test_rpft_initialised_for_architectural_state(self):
        sim = Simulator(CoreConfig.with_dra(), [SPEC95_PROFILES["swim"]], seed=0)
        for preg in sim.threads[0].rename_map.map:
            assert sim.dra.rpft.is_completed(preg)
