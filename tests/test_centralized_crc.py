"""Tests for the centralized register cache comparator (§4)."""

from repro.core import CoreConfig, DRAConfig
from repro.core.dra import DRAEngine
from repro.core.pipeline import Simulator
from repro.core.stats import CoreStats
from repro.workloads import SPEC95_PROFILES


class TestCentralizedEngine:
    def test_single_structure_shared_by_all_clusters(self):
        engine = DRAEngine(
            DRAConfig(centralized=True), num_pregs=64, num_clusters=8,
            stats=CoreStats(),
        )
        assert len(engine.crcs) == 1
        assert len(engine.tables) == 1
        engine.try_preread(5, cluster=7)
        assert engine.tables[0].count(5) == 1
        engine.on_writeback(5)
        assert engine.crc_lookup(5, cluster=3)

    def test_distributed_keeps_per_cluster_structures(self):
        engine = DRAEngine(
            DRAConfig(), num_pregs=64, num_clusters=8, stats=CoreStats(),
        )
        assert len(engine.crcs) == 8
        engine.try_preread(5, cluster=7)
        engine.on_writeback(5)
        assert engine.crc_lookup(5, cluster=7)
        assert not engine.crc_lookup(5, cluster=3)


class TestCentralizedInPipeline:
    def _run(self, dra: DRAConfig):
        config = CoreConfig.with_dra(5, dra=dra)
        sim = Simulator(config, [SPEC95_PROFILES["swim"]], seed=0)
        sim.functional_warmup(40_000)
        sim.run(4000)
        return sim

    def test_central_cache_misses_more(self):
        """§4: one small register cache has a high miss rate."""
        distributed = self._run(DRAConfig())
        central = self._run(DRAConfig(centralized=True))
        assert (
            central.stats.operand_miss_rate
            > 1.5 * distributed.stats.operand_miss_rate
        )

    def test_register_file_class_capacity_recovers(self):
        """§4: 'comparable size to a register file' is what it takes."""
        central16 = self._run(DRAConfig(centralized=True))
        central128 = self._run(DRAConfig(centralized=True, crc_entries=128))
        assert (
            central128.stats.operand_miss_rate
            < 0.5 * central16.stats.operand_miss_rate
        )
