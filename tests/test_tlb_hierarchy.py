"""Unit tests for the TLB and the memory hierarchy."""

import pytest

from repro.memory import (
    CacheConfig,
    HierarchyConfig,
    MemoryHierarchy,
    TLB,
    TLBConfig,
)


class TestTLB:
    def test_cold_miss_then_hit(self):
        tlb = TLB(TLBConfig(entries=4))
        assert not tlb.access(0x10000)
        assert tlb.access(0x10000)

    def test_same_page_hits(self):
        tlb = TLB(TLBConfig(entries=4, page_bytes=8192))
        tlb.access(0)
        assert tlb.access(8191)
        assert not tlb.access(8192)

    def test_lru_eviction(self):
        tlb = TLB(TLBConfig(entries=2, page_bytes=8192))
        tlb.access(0 * 8192)
        tlb.access(1 * 8192)
        tlb.access(0 * 8192)      # page 0 is MRU
        tlb.access(2 * 8192)      # evicts page 1
        assert tlb.access(0 * 8192)
        assert not tlb.access(1 * 8192)

    def test_miss_rate(self):
        tlb = TLB(TLBConfig(entries=4))
        tlb.access(0)
        tlb.access(0)
        assert tlb.stats.miss_rate == pytest.approx(0.5)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TLBConfig(entries=0)
        with pytest.raises(ValueError):
            TLBConfig(page_bytes=1000)


class TestHierarchy:
    def _tiny(self) -> MemoryHierarchy:
        return MemoryHierarchy(
            HierarchyConfig(
                l1d=CacheConfig(name="L1D", size_bytes=1024, line_bytes=64,
                                assoc=2, hit_latency=3, banks=2),
                l1i=CacheConfig(name="L1I", size_bytes=1024, line_bytes=64,
                                assoc=2, hit_latency=1),
                l2=CacheConfig(name="L2", size_bytes=8192, line_bytes=64,
                               assoc=4, hit_latency=12),
                tlb=TLBConfig(entries=8, miss_latency=30),
                memory_latency=80,
                bank_conflict_penalty=3,
            )
        )

    def test_l1_hit_latency(self):
        h = self._tiny()
        h.load(0x100)  # warm
        result = h.load(0x100)
        assert result.l1_hit
        assert result.latency == 3
        assert result.as_predicted

    def test_l2_hit_latency(self):
        h = self._tiny()
        h.load(0x100)
        # evict 0x100 from tiny L1 by filling its set, keeping L2 warm
        set_stride = 8 * 64
        h.load(0x100 + set_stride)
        h.load(0x100 + 2 * set_stride)
        result = h.load(0x100)
        assert not result.l1_hit
        assert result.l2_hit
        assert result.latency == 3 + 12
        assert not result.as_predicted

    def test_memory_latency(self):
        h = self._tiny()
        result = h.load(0x555000)
        assert not result.l1_hit
        assert result.l2_hit is False
        # compulsory TLB miss adds the walk latency as well
        assert result.latency == 3 + 12 + 80 + 30
        assert not result.tlb_hit

    def test_tlb_hit_after_warm(self):
        h = self._tiny()
        h.load(0x200)
        result = h.load(0x240)
        assert result.tlb_hit

    def test_bank_conflict_penalty(self):
        h = self._tiny()
        a, b = 0x0, 2 * 64  # same bank with 2 banks (line-interleaved)
        h.load(a)
        h.load(b)
        h.load(a, cycle=50)
        result = h.load(b, cycle=50)
        assert result.bank_conflict
        assert result.latency == 3 + 3
        assert not result.as_predicted

    def test_ifetch_latencies(self):
        h = self._tiny()
        assert h.fetch(0x4000) == 12 + 80  # cold: L2 miss
        assert h.fetch(0x4000) == 0        # now in L1I

    def test_invalidate_all(self):
        h = self._tiny()
        h.load(0x100)
        h.invalidate_all()
        result = h.load(0x100)
        assert not result.l1_hit

    def test_store_allocates(self):
        h = self._tiny()
        h.store(0x300)
        assert h.load(0x300).l1_hit

    def test_default_geometry_matches_base_machine(self):
        h = MemoryHierarchy()
        assert h.l1d.config.hit_latency == 3
        assert h.l1d.config.size_bytes == 64 * 1024
        assert h.l2.config.size_bytes == 1024 * 1024
        assert h.config.memory_latency == 80
