"""Integration tests for the cycle-level pipeline."""

import pytest

from repro.core import CoreConfig, LoadRecovery
from repro.core.pipeline import Simulator
from repro.core.stats import ReissueCause
from repro.isa import OpClass
from repro.workloads import SPEC95_PROFILES, workload_profiles
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    BranchModel,
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
)

KB = 1024


def quiet_profile(**overrides) -> WorkloadProfile:
    """A hazard-free workload: no branches, all loads hit, high ILP."""
    params = dict(
        name="quiet",
        mix=InstructionMix({OpClass.INT_ALU: 0.8, OpClass.LOAD: 0.2}),
        branches=BranchModel(num_sites=8, loop_site_frac=1.0, loop_trip=1000),
        memory=MemoryModel(
            hot_frac=1.0, warm_frac=0.0, cold_frac=0.0, stream_frac=0.0,
            hot_bytes=8 * KB,
        ),
        deps=DependencyModel(
            strands=16, chain_frac=0.1, near_mean=20.0, far_frac=0.0,
            two_src_frac=0.3, global_frac=0.2, fanout_burst_frac=0.0,
        ),
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def missy_profile() -> WorkloadProfile:
    """A load-heavy workload with a realistic (~20-25 %) L1 miss rate.

    Speculating that loads hit only pays when most of them do (§2.2.2:
    "most programs have a high load hit rate"), so the recovery-policy
    comparison needs hit-dominated traffic with load-fed chains.
    """
    return quiet_profile(
        name="missy",
        mix=InstructionMix({OpClass.INT_ALU: 0.6, OpClass.LOAD: 0.4}),
        memory=MemoryModel(
            hot_frac=0.75, warm_frac=0.25, cold_frac=0.0, stream_frac=0.0,
            hot_bytes=8 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(
            strands=8, chain_frac=0.5, near_mean=5.0, far_frac=0.0,
            two_src_frac=0.5, global_frac=0.1, fanout_burst_frac=0.0,
        ),
    )


def unbanked_config() -> CoreConfig:
    """Base machine with a single-banked L1D (no bank-conflict hazard)."""
    from repro.memory import CacheConfig, HierarchyConfig

    hierarchy = HierarchyConfig(
        l1d=CacheConfig(name="L1D", size_bytes=64 * KB, line_bytes=64,
                        assoc=2, hit_latency=3, banks=1)
    )
    return CoreConfig.base().replace(hierarchy=hierarchy)


def run(profile, config=None, instructions=2000, warmup=0, functional=20_000):
    sim = Simulator(config or CoreConfig.base(), [profile], seed=0)
    if functional:
        sim.functional_warmup(functional)
    sim.run(instructions, warmup=warmup)
    return sim


class TestBasicExecution:
    def test_retires_requested_instructions(self):
        sim = run(quiet_profile(), instructions=1500)
        assert sim.stats.retired >= 1500

    def test_quiet_workload_reaches_high_ipc(self):
        sim = run(quiet_profile(), instructions=4000)
        assert sim.stats.ipc > 2.5

    def test_no_reissues_without_hazards(self):
        sim = run(quiet_profile(), unbanked_config(), instructions=2000)
        assert sim.stats.total_reissues == 0

    def test_retirement_is_in_program_order(self):
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        order = []
        original = sim._retire

        def spy(cycle):
            before = len(sim.threads[0].rob)
            head_uids = [i.uid for i in list(sim.threads[0].rob)[:8]]
            original(cycle)
            after = len(sim.threads[0].rob)
            order.extend(head_uids[: before - after])

        sim._retire = spy
        sim.run(1000)
        assert order == sorted(order)

    def test_determinism(self):
        a = run(quiet_profile(), instructions=1500)
        b = run(quiet_profile(), instructions=1500)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.retired == b.stats.retired

    def test_pipeline_fill_latency(self):
        """The first instruction cannot retire before the minimum pipe."""
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        sim.run(8)
        assert sim.stats.cycles >= sim.config.min_int_pipeline

    def test_physical_registers_conserved(self):
        sim = run(quiet_profile(), instructions=2000)
        live_maps = sum(len(t.rename_map.map) for t in sim.threads)
        inflight_dsts = sum(
            1 for t in sim.threads for i in t.rob if i.dst_preg is not None
        )
        assert sim.regfile.free_count == (
            sim.config.num_pregs - live_maps - inflight_dsts
        )

    def test_run_validates_instruction_count(self):
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        with pytest.raises(ValueError):
            sim.run(0)

    def test_functional_warmup_must_precede_run(self):
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        sim.run(100)
        with pytest.raises(RuntimeError):
            sim.functional_warmup(100)

    def test_max_cycles_caps_run(self):
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        sim.run(100_000, max_cycles=200)
        assert sim.cycle == 200


class TestLoadResolutionLoop:
    def test_misses_cause_reissues(self):
        sim = run(missy_profile(), instructions=3000)
        assert sim.stats.load_misspeculations > 10
        assert sim.stats.reissues[ReissueCause.LOAD_MISS] > 0

    def test_reissue_beats_stall_and_refetch(self):
        """§2.2.2: speculation with reissue wins; re-fetch is worst.

        Memory-dependence speculation is disabled so the policies are
        compared on the load resolution loop alone."""
        ipcs = {}
        for policy in LoadRecovery:
            config = CoreConfig.base().replace(
                load_recovery=policy, memdep=None
            )
            sim = run(missy_profile(), config, instructions=3000)
            ipcs[policy] = sim.stats.ipc
        assert ipcs[LoadRecovery.REISSUE] > ipcs[LoadRecovery.REFETCH]
        assert ipcs[LoadRecovery.REISSUE] > ipcs[LoadRecovery.STALL]

    def test_stall_policy_never_misspeculates(self):
        config = CoreConfig.base().replace(load_recovery=LoadRecovery.STALL)
        sim = run(missy_profile(), config, instructions=3000)
        assert sim.stats.reissues[ReissueCause.LOAD_MISS] == 0
        assert sim.stats.reissues[ReissueCause.DEPENDENT_INVALID] == 0

    def test_refetch_squashes_instructions(self):
        config = CoreConfig.base().replace(load_recovery=LoadRecovery.REFETCH)
        sim = run(missy_profile(), config, instructions=3000)
        assert sim.stats.load_refetch_flushes > 0
        assert sim.stats.squashed_instructions > 0

    def test_refetch_still_retires_correctly(self):
        config = CoreConfig.base().replace(load_recovery=LoadRecovery.REFETCH)
        sim = run(missy_profile(), config, instructions=2000)
        assert sim.stats.retired >= 2000

    def test_ssr_never_misspeculates(self):
        """SSR holds dependents at issue: nothing ever needs replay."""
        config = CoreConfig.base().replace(load_recovery=LoadRecovery.SSR)
        sim = run(missy_profile(), config, instructions=3000)
        assert sim.stats.retired >= 3000
        assert sim.stats.load_misspeculations == 0
        assert sim.stats.reissues[ReissueCause.LOAD_MISS] == 0
        assert sim.stats.reissues[ReissueCause.DEPENDENT_INVALID] == 0

    def test_ssr_early_wakeup_beats_plain_stall(self):
        """The selective-stall threshold releases consumers early enough
        to hide part of the wakeup loop that STALL serialises."""
        ipcs = {}
        for policy, threshold in (
            (LoadRecovery.STALL, 0), (LoadRecovery.SSR, 4),
        ):
            config = CoreConfig.base().replace(
                load_recovery=policy, ssr_threshold=threshold, memdep=None
            )
            sim = run(missy_profile(), config, instructions=3000)
            ipcs[policy] = sim.stats.ipc
        assert ipcs[LoadRecovery.SSR] > ipcs[LoadRecovery.STALL]

    def test_ssr_zero_threshold_matches_stall_exactly(self):
        """T=0 degenerates to STALL cycle-for-cycle (the new law)."""
        results = {}
        for policy, threshold in (
            (LoadRecovery.STALL, 0), (LoadRecovery.SSR, 0),
        ):
            config = CoreConfig.base().replace(
                load_recovery=policy, ssr_threshold=threshold
            )
            sim = run(missy_profile(), config, instructions=3000)
            results[policy] = (sim.stats.cycles, sim.stats.retired,
                               sim.stats.issues)
        assert results[LoadRecovery.SSR] == results[LoadRecovery.STALL]

    def test_iq_pressure_from_issued_entries(self):
        """Issued instructions hold IQ entries until confirmation."""
        sim = run(missy_profile(), instructions=3000)
        assert sim.stats.avg_iq_issued_waiting > 1.0

    def test_longer_iq_ex_means_more_useless_work(self):
        short = run(missy_profile(), CoreConfig.base().with_pipe(5, 3),
                    instructions=3000)
        long = run(missy_profile(), CoreConfig.base().with_pipe(5, 9),
                   instructions=3000)
        assert long.stats.total_reissues > short.stats.total_reissues


class TestBranchResolutionLoop:
    def _branchy(self):
        return quiet_profile(
            name="branchy",
            mix=InstructionMix({OpClass.INT_ALU: 0.75, OpClass.BRANCH: 0.25}),
            branches=BranchModel(
                num_sites=32, loop_site_frac=0.0,
                random_bias_lo=0.5, random_bias_hi=0.6,
            ),
        )

    def test_mispredicts_stall_fetch(self):
        sim = run(self._branchy(), instructions=2000)
        assert sim.stats.cond_mispredicts > 50
        assert sim.stats.threads[0].branch_stall_cycles > 100

    def test_longer_pipe_longer_resolution(self):
        short = run(self._branchy(), CoreConfig.base().with_pipe(3, 3),
                    instructions=2500)
        long = run(self._branchy(), CoreConfig.base().with_pipe(9, 9),
                   instructions=2500)
        assert long.stats.ipc < short.stats.ipc

    def test_predictable_branches_cost_nothing(self):
        predictable = quiet_profile(
            name="pred",
            mix=InstructionMix({OpClass.INT_ALU: 0.75, OpClass.BRANCH: 0.25}),
            branches=BranchModel(
                num_sites=4, loop_site_frac=0.0,
                random_bias_lo=1.0, random_bias_hi=1.0,
            ),
        )
        sim = run(predictable, instructions=2500)
        assert sim.stats.branch_mispredict_rate < 0.01


class TestSMT:
    def test_both_threads_retire(self):
        profiles = workload_profiles("m88ksim+compress")
        sim = Simulator(CoreConfig.base(), profiles, seed=0)
        sim.functional_warmup(20_000)
        sim.run(3000)
        assert sim.stats.threads[0].retired > 500
        assert sim.stats.threads[1].retired > 500

    def test_smt_throughput_beats_single_thread(self):
        pair = Simulator(
            CoreConfig.base(), workload_profiles("go+su2cor"), seed=0
        )
        pair.functional_warmup(20_000)
        pair.run(4000)
        solo = Simulator(CoreConfig.base(), workload_profiles("go"), seed=0)
        solo.functional_warmup(20_000)
        solo.run(4000)
        assert pair.stats.ipc > solo.stats.ipc

    def test_round_robin_policy_runs(self):
        config = CoreConfig.base().replace(fetch_policy="round_robin")
        sim = Simulator(config, workload_profiles("m88ksim+compress"), seed=0)
        sim.functional_warmup(10_000)
        sim.run(1500)
        assert sim.stats.threads[0].retired > 100
        assert sim.stats.threads[1].retired > 100


class TestDTLB:
    def test_tlb_misses_recorded_and_penalised(self):
        profile = quiet_profile(
            name="tlbthrash",
            mix=InstructionMix({OpClass.INT_ALU: 0.6, OpClass.LOAD: 0.4}),
            memory=MemoryModel(
                hot_frac=0.2, warm_frac=0.0, cold_frac=0.8, stream_frac=0.0,
                hot_bytes=8 * KB, cold_pages=4096, page_dwell=1,
            ),
        )
        sim = run(profile, instructions=2000)
        assert sim.stats.dtlb_misses > 100


class TestDeadlockDiagnostics:
    def test_hang_raises_structured_error_with_snapshot(self, monkeypatch):
        from repro.core import pipeline as pipeline_mod
        from repro.errors import SimulationHangError

        monkeypatch.setattr(pipeline_mod, "_DEADLOCK_WINDOW", 50)
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        # Wedge the machine: fetch never unblocks, so nothing ever
        # retires and the deadlock detector must fire.
        for thread in sim.threads:
            thread.fetch_blocked_until = 10**9
        with pytest.raises(SimulationHangError) as excinfo:
            sim.run(100)
        error = excinfo.value
        assert "deadlock" in str(error)
        # The structured raise stays a RuntimeError for old callers.
        assert isinstance(error, RuntimeError)
        snapshot = error.snapshot
        assert snapshot is not None
        assert snapshot.retired == 0
        assert snapshot.cycle > snapshot.last_retire_cycle
        assert set(snapshot.stage_occupancy) == {
            "fetch/decode", "rename->IQ", "issue queue", "execute", "rob",
        }
        text = snapshot.describe()
        assert "stage occupancy" in text
        assert str(snapshot.cycle) in text

    def test_snapshot_reports_oldest_inflight_instruction(self, monkeypatch):
        from repro.core import pipeline as pipeline_mod
        from repro.errors import SimulationHangError

        monkeypatch.setattr(pipeline_mod, "_DEADLOCK_WINDOW", 500)
        sim = Simulator(CoreConfig.base(), [quiet_profile()], seed=0)
        # Let the pipeline fill and retire normally for a while...
        sim.run(200)
        # ...then freeze retirement while the front end keeps fetching.
        monkeypatch.setattr(
            pipeline_mod.Simulator, "_retire", lambda self, cycle: None
        )
        with pytest.raises(SimulationHangError) as excinfo:
            sim.run(5_000)
        snapshot = excinfo.value.snapshot
        assert snapshot.inflight > 0
        assert snapshot.stage_occupancy["rob"] > 0
        assert snapshot.oldest_instruction is not None
        assert "uid=" in snapshot.oldest_instruction


# ---------------------------------------------------------------------------
# Backend equivalence property (hypothesis)
# ---------------------------------------------------------------------------


class TestBackendEquivalenceProperty:
    """Random (config, workload, seed) triples: the optimized backend
    must reproduce the reference backend bit for bit — identical
    ``CoreStats`` and retire streams — with both runs clean under the
    differential :class:`~repro.verify.Verifier`."""

    WORKLOADS = (
        "int_test", "compress", "m88ksim", "swim",
        "go+su2cor", "apsi+swim", "pointer_chase",
    )

    @staticmethod
    def _stats_dict(stats):
        from dataclasses import fields

        out = {}
        for f in fields(stats):
            value = getattr(stats, f.name)
            if f.name == "per_thread":
                value = tuple(
                    tuple((g.name, getattr(t, g.name)) for g in fields(t))
                    for t in value
                )
            elif isinstance(value, dict):
                value = tuple(
                    sorted((str(k), v) for k, v in value.items())
                )
            elif isinstance(value, list):
                value = tuple(value)
            out[f.name] = value
        return out

    def _run_backend(self, backend, config, workload, seed):
        from repro.core.backend import RetireStreamRecorder, get_backend
        from repro.obs.bus import EventBus
        from repro.verify import Verifier
        from repro.workloads import workload_profiles as resolve

        kernel = get_backend(backend)
        sim = kernel.build(config, resolve(workload), seed=seed)
        # same order as simulate(): warm up first — the verifier's
        # oracle snapshots generator positions when it attaches
        sim.functional_warmup(3000)
        bus = EventBus()
        verifier = Verifier()
        verifier.attach(sim, bus)
        recorder = RetireStreamRecorder()
        recorder.install(sim)
        sim.attach_obs(bus)
        stats = kernel.run(sim, 1200, warmup=200)
        verifier.finish(stats)
        verifier.raise_if_failed(context=f"{backend}/{workload}")
        return self._stats_dict(stats), recorder.stream

    import hypothesis
    import hypothesis.strategies as st

    @hypothesis.given(
        workload=st.sampled_from(WORKLOADS),
        dra=st.booleans(),
        rf=st.sampled_from((3, 5, 7)),
        recovery=st.sampled_from(("reissue", "stall", "refetch")),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @hypothesis.settings(max_examples=6, deadline=None)
    def test_reference_and_optimized_agree(
        self, workload, dra, rf, recovery, seed
    ):
        config = (
            CoreConfig.with_dra(rf) if dra else CoreConfig.base(rf)
        )
        config = config.replace(load_recovery=LoadRecovery(recovery))
        ref_stats, ref_stream = self._run_backend(
            "reference", config, workload, seed
        )
        opt_stats, opt_stream = self._run_backend(
            "optimized", config, workload, seed
        )
        diverged = [
            name for name in ref_stats if ref_stats[name] != opt_stats[name]
        ]
        assert not diverged, (
            f"CoreStats diverged on {diverged} for {workload} "
            f"{config.label} seed={seed}"
        )
        assert ref_stream == opt_stream, (
            f"retire streams diverged for {workload} {config.label} "
            f"seed={seed}"
        )
