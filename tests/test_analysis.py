"""Unit tests for the analysis utilities."""

import pytest

from repro.analysis import (
    EmpiricalCDF,
    format_heading,
    format_table,
    geometric_mean,
    percent,
    render_series,
    speedup,
)
from repro.analysis.metrics import mean


class TestMetrics:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_speedup_zero_baseline(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0]) == pytest.approx(1.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_percent(self):
        assert percent(0.1534) == "15.3%"
        assert percent(0.1534, digits=2) == "15.34%"

    def test_mean(self):
        assert mean([1.0, 3.0]) == 2.0
        assert mean([]) == 0.0


class TestCDF:
    def test_quantiles(self):
        cdf = EmpiricalCDF(range(1, 101))
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 100

    def test_at(self):
        cdf = EmpiricalCDF([0, 0, 10, 20])
        assert cdf.at(0) == pytest.approx(0.5)
        assert cdf.at(10) == pytest.approx(0.75)
        assert cdf.at(5) == pytest.approx(0.5)

    def test_mean_and_max(self):
        cdf = EmpiricalCDF([1, 2, 3])
        assert cdf.mean == pytest.approx(2.0)
        assert cdf.max == 3

    def test_series(self):
        cdf = EmpiricalCDF([0, 10])
        assert cdf.series([0, 10]) == [(0, 0.5), (10, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_quantile_validation(self):
        cdf = EmpiricalCDF([1])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_quantile_fractional_rank(self):
        # q*n falls between integers: the q-quantile is the smallest
        # sample x with CDF(x) >= q, i.e. index ceil(q*n)-1.
        cdf = EmpiricalCDF([10, 20, 30, 40, 50])
        assert cdf.quantile(0.5) == 30  # ceil(2.5)-1 = 2
        assert cdf.quantile(0.30) == 20  # ceil(1.5)-1 = 1
        assert cdf.quantile(0.61) == 40  # ceil(3.05)-1 = 3

    def test_quantile_exact_rank_boundaries(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        # q*n exactly integral: index q*n - 1, not q*n.
        assert cdf.quantile(0.25) == 1
        assert cdf.quantile(0.5) == 2
        assert cdf.quantile(0.75) == 3
        assert cdf.quantile(1.0) == 4

    def test_quantile_single_sample(self):
        cdf = EmpiricalCDF([42])
        for q in (0.01, 0.5, 0.99, 1.0):
            assert cdf.quantile(q) == 42

    def test_quantile_tiny_q_returns_minimum(self):
        cdf = EmpiricalCDF([5, 6, 7])
        assert cdf.quantile(1e-9) == 5


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_heading(self):
        text = format_heading("Hi")
        assert text == "Hi\n=="

    def test_render_series(self):
        text = render_series([(1.0, 0.5)], label="hdr")
        assert text.splitlines()[0] == "hdr"
        assert "0.500" in text
