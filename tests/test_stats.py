"""Unit tests for the statistics model."""

import pytest

from repro.core.stats import (
    CoreStats,
    OperandSource,
    ReissueCause,
    ThreadStats,
)


class TestDerivedMetrics:
    def test_ipc(self):
        stats = CoreStats(threads=[ThreadStats(retired=100)])
        stats.cycles = 50
        assert stats.ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert CoreStats().ipc == 0.0

    def test_retired_sums_threads(self):
        stats = CoreStats(
            threads=[ThreadStats(retired=30), ThreadStats(retired=20)]
        )
        assert stats.retired == 50

    def test_default_has_one_thread(self):
        assert len(CoreStats().threads) == 1

    def test_total_reissues(self):
        stats = CoreStats()
        stats.reissues[ReissueCause.LOAD_MISS] = 3
        stats.reissues[ReissueCause.OPERAND_MISS] = 2
        assert stats.total_reissues == 5

    def test_branch_mispredict_rate(self):
        stats = CoreStats()
        stats.cond_branches = 200
        stats.cond_mispredicts = 20
        assert stats.branch_mispredict_rate == pytest.approx(0.1)
        assert CoreStats().branch_mispredict_rate == 0.0

    def test_load_l1_miss_rate(self):
        stats = CoreStats()
        stats.loads_executed = 100
        stats.load_l1_misses = 25
        assert stats.load_l1_miss_rate == pytest.approx(0.25)

    def test_operand_fractions_normalise(self):
        stats = CoreStats()
        stats.operand_reads[OperandSource.FORWARD] = 60
        stats.operand_reads[OperandSource.PREREAD] = 30
        stats.operand_reads[OperandSource.MISS] = 10
        fractions = stats.operand_source_fractions()
        assert fractions[OperandSource.FORWARD] == pytest.approx(0.6)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert stats.operand_miss_rate == pytest.approx(0.1)

    def test_operand_fractions_when_idle(self):
        fractions = CoreStats().operand_source_fractions()
        assert all(v == 0.0 for v in fractions.values())

    def test_occupancy_averages(self):
        stats = CoreStats()
        stats.cycles = 4
        stats.iq_occupancy_sum = 40
        stats.iq_issued_waiting_sum = 8
        assert stats.avg_iq_occupancy == pytest.approx(10.0)
        assert stats.avg_iq_issued_waiting == pytest.approx(2.0)


class TestMeasurementWindow:
    def test_measured_ipc_excludes_prefix(self):
        stats = CoreStats(threads=[ThreadStats(retired=100)])
        stats.cycles = 100
        stats.threads[0].retired = 100
        stats.start_measurement()
        stats.cycles = 150
        stats.threads[0].retired = 250
        assert stats.measured_cycles == 50
        assert stats.measured_retired == 150
        assert stats.measured_ipc == pytest.approx(3.0)

    def test_measured_ipc_zero_window(self):
        assert CoreStats().measured_ipc == 0.0


class TestSummary:
    def test_summary_keys(self):
        summary = CoreStats().summary()
        for key in ("cycles", "retired", "ipc", "reissues",
                    "branch_mispredict_rate", "operand_miss_rate"):
            assert key in summary
        assert all(isinstance(v, float) for v in summary.values())
