"""Tests for the differential verification subsystem.

Three layers: unit tests driving each invariant checker with synthetic
event streams (both clean and deliberately broken), oracle unit tests,
and end-to-end verified simulations over the machine presets.
"""

import pickle

import pytest

from repro import CoreConfig, simulate
from repro.errors import (
    ReproError,
    VerificationError,
    WorkloadError,
    is_retryable,
)
from repro.obs.bus import EventBus
from repro.obs.events import (
    CompleteEvent,
    CRCEvent,
    DropEvent,
    ExecuteEvent,
    FetchEvent,
    IssueEvent,
    ReissueEvent,
    RenameEvent,
    RetireEvent,
    SquashEvent,
    WritebackEvent,
)
from repro.verify import (
    ConservationChecker,
    CRCCoherenceChecker,
    DataflowChecker,
    RenameChecker,
    Verifier,
    dra_variant,
    verified_simulate,
    verify_presets,
)
from repro.verify.differential import (
    check_dra_base_equivalence,
    check_stall_recovery,
)


def _fetch(bus, uid, cycle=0):
    bus.emit(FetchEvent(cycle=cycle, uid=uid, thread=0, pc=0x1000,
                        opclass="int_alu"))


# ---------------------------------------------------------------------------
# ConservationChecker
# ---------------------------------------------------------------------------


class TestConservationChecker:
    def _attach(self):
        bus = EventBus()
        checker = ConservationChecker()
        checker.attach(bus)
        return bus, checker

    def test_clean_lifecycles(self):
        bus, checker = self._attach()
        for uid, end in ((1, "retire"), (2, "squash"), (3, "drop"),
                         (4, None)):
            _fetch(bus, uid)
        bus.emit(RetireEvent(cycle=5, uid=1, thread=0))
        bus.emit(SquashEvent(cycle=5, uid=2, thread=0, reason="branch"))
        bus.emit(DropEvent(cycle=5, uid=3, thread=0))
        checker.finish()
        assert checker.violation_count == 0
        assert checker.in_flight == 1

    def test_double_retire_flagged(self):
        bus, checker = self._attach()
        _fetch(bus, 1)
        bus.emit(RetireEvent(cycle=1, uid=1, thread=0))
        bus.emit(RetireEvent(cycle=2, uid=1, thread=0))
        assert checker.violation_count == 1
        assert "already retired" in checker.violations[0].message

    def test_retire_after_squash_flagged(self):
        bus, checker = self._attach()
        _fetch(bus, 1)
        bus.emit(SquashEvent(cycle=1, uid=1, thread=0, reason="branch"))
        bus.emit(RetireEvent(cycle=2, uid=1, thread=0))
        assert checker.violation_count == 1

    def test_retire_without_fetch_flagged(self):
        bus, checker = self._attach()
        bus.emit(RetireEvent(cycle=1, uid=9, thread=0))
        assert checker.violation_count == 1
        assert "without fetch" in checker.violations[0].message


# ---------------------------------------------------------------------------
# RenameChecker
# ---------------------------------------------------------------------------


def _rename(bus, uid, arch, dst, prev, cycle=0, srcs=(), preread=()):
    bus.emit(RenameEvent(
        cycle=cycle, uid=uid, thread=0, arch_dst=arch, dst_preg=dst,
        prev_dst_preg=prev, src_pregs=tuple(srcs), preread=tuple(preread),
    ))


class TestRenameChecker:
    def _attach(self):
        bus = EventBus()
        checker = RenameChecker()
        checker.attach(bus)
        return bus, checker

    def test_clean_chain_and_rollback(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=5, dst=100, prev=50)
        _rename(bus, 2, arch=5, dst=101, prev=100)
        # youngest-first rollback
        bus.emit(SquashEvent(cycle=3, uid=2, thread=0, reason="branch"))
        bus.emit(SquashEvent(cycle=3, uid=1, thread=0, reason="branch"))
        # the map rolled back to 50, so the next writer chains from it
        _rename(bus, 3, arch=5, dst=102, prev=50, cycle=4)
        assert checker.violation_count == 0

    def test_broken_prev_chain_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=5, dst=100, prev=50)
        _rename(bus, 2, arch=5, dst=101, prev=99)  # should be 100
        assert checker.violation_count == 1
        assert "does not chain" in checker.violations[0].message

    def test_reallocation_while_live_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=5, dst=100, prev=50)
        _rename(bus, 2, arch=6, dst=100, prev=60)  # 100 still in flight
        assert checker.violation_count == 1
        assert "re-allocated" in checker.violations[0].message

    def test_out_of_order_rollback_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=5, dst=100, prev=50)
        _rename(bus, 2, arch=5, dst=101, prev=100)
        # squashing the older writer first is out of order
        bus.emit(SquashEvent(cycle=3, uid=1, thread=0, reason="branch"))
        assert checker.violation_count == 1
        assert "rollback out of order" in checker.violations[0].message

    def test_retire_frees_previous_mapping(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=5, dst=100, prev=50)
        bus.emit(RetireEvent(cycle=2, uid=1, thread=0))
        # 50 was freed at retire, so re-allocating it is legal
        _rename(bus, 2, arch=7, dst=50, prev=70, cycle=3)
        assert checker.violation_count == 0


# ---------------------------------------------------------------------------
# DataflowChecker
# ---------------------------------------------------------------------------


class TestDataflowChecker:
    def _attach(self):
        bus = EventBus()
        checker = DataflowChecker()
        checker.attach(bus)
        return bus, checker

    def test_clean_execute_and_reissue_cycle(self):
        bus, checker = self._attach()
        # producer writes preg 10
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(IssueEvent(cycle=1, uid=1, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=3, uid=1, thread=0, epoch=1, ok=True))
        bus.emit(CompleteEvent(cycle=3, uid=1, thread=0, avail_cycle=4))
        # consumer reads preg 10, fails once, reissues, then succeeds
        _rename(bus, 2, arch=2, dst=11, prev=6, srcs=(10,))
        bus.emit(IssueEvent(cycle=2, uid=2, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=3, uid=2, thread=0, epoch=1, ok=False))
        bus.emit(ReissueEvent(cycle=3, uid=2, thread=0, cause="load_miss"))
        bus.emit(IssueEvent(cycle=6, uid=2, thread=0, epoch=2))
        bus.emit(ExecuteEvent(cycle=8, uid=2, thread=0, epoch=2, ok=True))
        bus.emit(CompleteEvent(cycle=8, uid=2, thread=0, avail_cycle=9))
        bus.emit(RetireEvent(cycle=10, uid=1, thread=0))
        bus.emit(RetireEvent(cycle=11, uid=2, thread=0))
        checker.finish()
        assert checker.violation_count == 0

    def test_execute_with_unavailable_source_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)       # never completes
        _rename(bus, 2, arch=2, dst=11, prev=6, srcs=(10,))
        bus.emit(IssueEvent(cycle=2, uid=2, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=4, uid=2, thread=0, epoch=1, ok=True))
        assert checker.violation_count == 1
        assert "unavailable operand" in checker.violations[0].message

    def test_reissue_without_failed_execute_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(ReissueEvent(cycle=4, uid=1, thread=0, cause="load_miss"))
        assert any(
            "without a same-cycle failed execute" in v.message
            for v in checker.violations
        )

    def test_retire_with_open_reissue_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5, srcs=())
        bus.emit(IssueEvent(cycle=1, uid=1, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=3, uid=1, thread=0, epoch=1, ok=False))
        bus.emit(ReissueEvent(cycle=3, uid=1, thread=0, cause="dependent"))
        bus.emit(CompleteEvent(cycle=5, uid=1, thread=0, avail_cycle=6))
        bus.emit(RetireEvent(cycle=7, uid=1, thread=0))
        assert any(
            "unresolved replay" in v.message for v in checker.violations
        )

    def test_unpaired_failed_execute_flagged_at_finish(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(IssueEvent(cycle=1, uid=1, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=3, uid=1, thread=0, epoch=1, ok=False))
        checker.finish()
        assert any(
            "never produced its ReissueEvent" in v.message
            for v in checker.violations
        )

    def test_issue_epoch_must_increment(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(IssueEvent(cycle=1, uid=1, thread=0, epoch=1))
        bus.emit(IssueEvent(cycle=4, uid=1, thread=0, epoch=3))
        assert any(
            "does not follow" in v.message for v in checker.violations
        )

    def test_squash_pops_youngest_writer(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        _rename(bus, 2, arch=1, dst=12, prev=10)
        bus.emit(SquashEvent(cycle=3, uid=2, thread=0, reason="branch"))
        # preg 10's writer (uid 1) completes; a consumer may then read it
        bus.emit(CompleteEvent(cycle=4, uid=1, thread=0, avail_cycle=5))
        _rename(bus, 3, arch=2, dst=13, prev=6, srcs=(10,), cycle=5)
        bus.emit(IssueEvent(cycle=5, uid=3, thread=0, epoch=1))
        bus.emit(ExecuteEvent(cycle=7, uid=3, thread=0, epoch=1, ok=True))
        assert checker.violation_count == 0


# ---------------------------------------------------------------------------
# CRCCoherenceChecker
# ---------------------------------------------------------------------------


class TestCRCCoherenceChecker:
    def _attach(self):
        bus = EventBus()
        checker = CRCCoherenceChecker()
        checker.attach(bus)
        return bus, checker

    def test_clean_insert_hit_invalidate(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(WritebackEvent(cycle=4, preg=10))
        bus.emit(CRCEvent(cycle=4, preg=10, cluster=0, action="insert"))
        bus.emit(CRCEvent(cycle=5, preg=10, cluster=0, action="hit"))
        # re-allocation invalidates before the version bumps
        bus.emit(CRCEvent(cycle=6, preg=10, cluster=0, action="invalidate"))
        _rename(bus, 2, arch=1, dst=10, prev=99, cycle=6)
        bus.emit(CRCEvent(cycle=7, preg=10, cluster=0, action="miss"))
        assert checker.violation_count == 0

    def test_stale_hit_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)
        bus.emit(WritebackEvent(cycle=4, preg=10))
        bus.emit(CRCEvent(cycle=4, preg=10, cluster=0, action="insert"))
        # re-allocation WITHOUT the §5.5 invalidate...
        _rename(bus, 2, arch=1, dst=10, prev=99, cycle=6)
        # ...so this hit returns the old version
        bus.emit(CRCEvent(cycle=7, preg=10, cluster=0, action="hit"))
        assert checker.violation_count == 1
        assert "stale CRC hit" in checker.violations[0].message

    def test_preread_of_incomplete_value_flagged(self):
        bus, checker = self._attach()
        _rename(bus, 1, arch=1, dst=10, prev=5)  # version 1, no writeback
        _rename(bus, 2, arch=2, dst=11, prev=6, srcs=(10,), preread=(True,),
                cycle=2)
        assert checker.violation_count == 1
        assert "pre-read granted" in checker.violations[0].message

    def test_missed_preread_of_committed_value_flagged(self):
        bus, checker = self._attach()
        # preg 7 was never re-allocated: initial committed state
        _rename(bus, 1, arch=2, dst=11, prev=6, srcs=(7,), preread=(False,))
        assert checker.violation_count == 1
        assert "RPFT filtered" in checker.violations[0].message

    def test_hit_on_nonresident_flagged(self):
        bus, checker = self._attach()
        bus.emit(CRCEvent(cycle=3, preg=10, cluster=2, action="hit"))
        assert checker.violation_count == 1
        assert "non-resident" in checker.violations[0].message


# ---------------------------------------------------------------------------
# Golden retire model (oracle) — unit level
# ---------------------------------------------------------------------------


class TestGoldenRetireModel:
    def test_catches_forged_retirement_state(self):
        """Flipping a retired instruction's flags trips the oracle."""
        from repro.verify import GoldenRetireModel
        from repro.core.pipeline import Simulator
        from repro.workloads import SMOKE_PROFILES

        simulator = Simulator(
            CoreConfig.base(), [SMOKE_PROFILES["int_test"]], seed=0
        )
        oracle = GoldenRetireModel()
        oracle.attach(simulator)
        # wrap the oracle's hook to corrupt one instruction pre-check
        state = {"armed": True}
        hook = simulator.retire_hook

        def corrupting(inst):
            if state["armed"]:
                state["armed"] = False
                inst.confirmed = False
            hook(inst)

        simulator.retire_hook = corrupting
        simulator.run(300, max_cycles=50_000)
        assert oracle.violation_count >= 1
        assert any(
            "illegal state" in v.message for v in oracle.violations
        )

    def test_stream_divergence_detected(self):
        """An oracle seeded differently sees instant stream divergence."""
        from repro.verify import GoldenRetireModel
        from repro.core.pipeline import Simulator
        from repro.workloads import SMOKE_PROFILES

        simulator = Simulator(
            CoreConfig.base(), [SMOKE_PROFILES["int_test"]], seed=0
        )
        oracle = GoldenRetireModel()
        oracle.attach(simulator)
        # corrupt the reference stream by skipping one op
        oracle._reference[0].next_op()
        simulator.run(100, max_cycles=50_000)
        assert oracle.violation_count >= 1
        assert any("diverges" in v.message for v in oracle.violations)


# ---------------------------------------------------------------------------
# End-to-end verified runs
# ---------------------------------------------------------------------------


class TestVerifiedRuns:
    @pytest.mark.parametrize("config", [
        CoreConfig.base(),
        CoreConfig.with_dra(),
    ], ids=["base", "dra"])
    def test_clean_run_passes_all_checks(self, config):
        result, verifier = verified_simulate(
            "int_test", config, instructions=1200, warmup=20_000,
            detailed_warmup=300,
        )
        assert verifier.passed, verifier.report()
        assert verifier.oracle.retired_checked >= 1500
        assert result.stats.retired >= 1500
        verifier.raise_if_failed()  # must not raise

    def test_smt_run_passes(self):
        """Two hardware threads: per-thread oracles, shared checkers."""
        result, verifier = verified_simulate(
            "m88ksim+compress", CoreConfig.with_dra(), instructions=1200,
            warmup=10_000, detailed_warmup=300,
        )
        assert verifier.passed, verifier.report()

    def test_preset_sweep_is_clean(self):
        entries = verify_presets(
            instructions=800, warmup=10_000, detailed_warmup=200,
            presets=["base"],
        )
        assert len(entries) == 2  # base machine + DRA variant
        for entry in entries:
            assert entry.ok, entry.describe()
            assert entry.retirements > 0

    def test_dra_variant_keeps_geometry(self):
        from repro.presets import preset

        for name in ("alpha21264", "base", "pentium4"):
            config = preset(name)
            variant = dra_variant(config)
            assert variant.dra is not None
            assert variant.dec_iq == config.dec_iq
            assert variant.iq_ex == config.iq_ex

    def test_raise_if_failed_carries_violations(self):
        verifier = Verifier(oracle=False, invariants=False,
                            attribution=False)
        from repro.verify import Violation

        verifier.violations = [
            Violation(checker="t", cycle=1, message="broken"),
        ]
        verifier.violation_count = 1
        with pytest.raises(VerificationError) as excinfo:
            verifier.raise_if_failed(context="unit")
        assert "unit" in str(excinfo.value)
        assert excinfo.value.violations[0].message == "broken"


# ---------------------------------------------------------------------------
# Differential checks (fast subset; the full matrix runs in CI)
# ---------------------------------------------------------------------------


def _exact_backends():
    from repro.core.backend import available_backends, get_backend

    return [n for n in available_backends() if get_backend(n).exact]


class TestDifferentialChecks:
    @pytest.mark.parametrize("backend", _exact_backends())
    def test_infinite_crc_dra_equals_base(self, backend):
        check = check_dra_base_equivalence(
            instructions=1000, warmup=10_000, detailed_warmup=200,
            backend=backend,
        )
        assert check.passed, f"[{backend}] {check.detail}"

    @pytest.mark.parametrize("backend", _exact_backends())
    def test_stall_recovery_is_silent(self, backend):
        check = check_stall_recovery(
            "base", instructions=800, warmup=10_000, detailed_warmup=200,
            backend=backend,
        )
        assert check.passed, f"[{backend}] {check.detail}"

    @pytest.mark.parametrize("backend", _exact_backends())
    def test_ssr_zero_threshold_equals_stall(self, backend):
        from repro.verify import check_ssr_zero_threshold

        check = check_ssr_zero_threshold(
            instructions=800, warmup=10_000, detailed_warmup=200,
            backend=backend,
        )
        assert check.passed, f"[{backend}] {check.detail}"

    @pytest.mark.parametrize("backend", _exact_backends())
    def test_sufficient_ports_equal_unlimited(self, backend):
        from repro.verify import check_port_sufficiency

        check = check_port_sufficiency(
            instructions=800, warmup=10_000, detailed_warmup=200,
            backend=backend,
        )
        assert check.passed, f"[{backend}] {check.detail}"


# ---------------------------------------------------------------------------
# Error-hierarchy cleanup (the WorkloadError-is-a-KeyError wart)
# ---------------------------------------------------------------------------


class TestWorkloadErrorCleanup:
    def test_unknown_workload_raises_workload_error(self):
        with pytest.raises(WorkloadError) as excinfo:
            simulate("no_such_benchmark", instructions=10, warmup=0)
        # clean message, not KeyError's quoted-repr formatting
        assert "unknown workload" in str(excinfo.value)
        assert "no_such_benchmark" in str(excinfo.value)

    def test_workload_error_is_no_longer_a_keyerror(self):
        """The one-release ``WorkloadKeyError`` shim has been deleted."""
        error = WorkloadError("boom")
        assert isinstance(error, ReproError)
        assert not isinstance(error, KeyError)
        assert str(error) == "boom"
        assert not hasattr(
            __import__("repro.errors", fromlist=[""]), "WorkloadKeyError"
        )

    def test_verification_error_not_retryable(self):
        assert not is_retryable(VerificationError("x"))
        error = VerificationError("x")
        assert error.violations == ()
        assert pickle.loads(pickle.dumps(error)).args == error.args


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


class TestHarnessVerify:
    def _cell(self):
        from repro.experiments import ExperimentSettings
        from repro.harness import Cell

        return Cell(
            workload="int_test",
            config=CoreConfig.with_dra(),
            settings=ExperimentSettings(instructions=600),
            seed=0,
        )

    def test_verified_cell_passes(self):
        from repro.harness import HarnessSettings, run_cell

        outcome = run_cell(self._cell(), harness=HarnessSettings(verify=True))
        assert outcome.ok

    def test_verify_is_execution_policy_not_cell_identity(self):
        """Verification must not change the cache key."""
        cell = self._cell()
        key_plain = cell.key
        # the key is a pure function of (workload, config, settings,
        # seed); HarnessSettings.verify is not part of it
        assert cell.key == key_plain
