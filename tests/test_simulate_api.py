"""Tests for the high-level simulate()/SimResult API."""

import pytest

from repro import CoreConfig, SPEC95_PROFILES, simulate
from repro.core.simulator import SimResult


class TestSimulate:
    def test_by_name(self):
        result = simulate("m88ksim", instructions=800, warmup=10_000,
                          detailed_warmup=200)
        assert result.workload == "m88ksim"
        assert result.ipc > 0.2
        assert result.stats.measured_retired >= 800

    def test_by_profiles(self):
        result = simulate(
            [SPEC95_PROFILES["go"]], instructions=600, warmup=5_000,
            detailed_warmup=100,
        )
        assert result.workload == "go"

    def test_smt_pair_by_name(self):
        result = simulate("go+su2cor", instructions=800, warmup=10_000,
                          detailed_warmup=200)
        assert len(result.stats.threads) == 2

    def test_default_config_is_base(self):
        result = simulate("m88ksim", instructions=400, warmup=2_000,
                          detailed_warmup=100)
        assert result.config.dra is None
        assert result.config.label == "Base:5_5"

    def test_unknown_workload(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            simulate("quake")

    def test_speedup_over(self):
        a = simulate("m88ksim", instructions=500, warmup=5_000,
                     detailed_warmup=100)
        assert a.speedup_over(a) == pytest.approx(1.0)

    def test_speedup_over_zero_baseline(self):
        a = simulate("m88ksim", instructions=500, warmup=5_000,
                     detailed_warmup=100)
        fake = SimResult(workload="x", config=a.config, stats=a.stats, seed=0)
        fake.stats.measure_start_cycle = fake.stats.cycles  # ipc -> 0
        with pytest.raises(ZeroDivisionError):
            a.speedup_over(fake)
        fake.stats.measure_start_cycle = 0

    def test_describe_mentions_workload_and_config(self):
        a = simulate("m88ksim", instructions=400, warmup=2_000,
                     detailed_warmup=100)
        text = a.describe()
        assert "m88ksim" in text
        assert "Base:5_5" in text

    def test_seed_changes_stream(self):
        a = simulate("compress", instructions=800, warmup=5_000,
                     detailed_warmup=100, seed=0)
        b = simulate("compress", instructions=800, warmup=5_000,
                     detailed_warmup=100, seed=1)
        assert a.stats.cycles != b.stats.cycles

    def test_seed_reproducible(self):
        a = simulate("compress", instructions=800, warmup=5_000,
                     detailed_warmup=100, seed=2)
        b = simulate("compress", instructions=800, warmup=5_000,
                     detailed_warmup=100, seed=2)
        assert a.stats.cycles == b.stats.cycles
        assert a.ipc == b.ipc

    def test_measurement_window_excludes_warmup(self):
        result = simulate("m88ksim", instructions=500, warmup=5_000,
                          detailed_warmup=300)
        stats = result.stats
        assert stats.measure_start_retired >= 300
        assert stats.measured_retired >= 500
        assert stats.measured_cycles < stats.cycles
