"""Tests for the memory-barrier loop (§1's stall-managed loose loop)."""

from repro.core import CoreConfig
from repro.core.pipeline import Simulator
from repro.isa import OpClass
from repro.loops import loops_for_config
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
)

KB = 1024


def barrier_profile(barrier_weight: float) -> WorkloadProfile:
    return WorkloadProfile(
        name="barriers",
        mix=InstructionMix(
            {
                OpClass.INT_ALU: 0.8 - barrier_weight,
                OpClass.LOAD: 0.2,
                OpClass.MEM_BARRIER: barrier_weight,
            }
        ),
        memory=MemoryModel(
            hot_frac=1.0, warm_frac=0.0, cold_frac=0.0, stream_frac=0.0,
            hot_bytes=8 * KB,
        ),
        deps=DependencyModel(
            strands=16, chain_frac=0.1, near_mean=20.0, far_frac=0.0,
            two_src_frac=0.3, global_frac=0.2, fanout_burst_frac=0.0,
        ),
    )


def run(barrier_weight: float):
    sim = Simulator(CoreConfig.base(), [barrier_profile(barrier_weight)], seed=0)
    sim.run(2000)
    return sim


class TestMemoryBarrier:
    def test_barriers_stall_renaming(self):
        sim = run(0.02)
        assert sim.stats.barrier_stall_cycles > 0
        assert sim.stats.retired >= 2000

    def test_barriers_cost_throughput(self):
        with_barriers = run(0.03)
        without = run(0.0)
        assert with_barriers.stats.ipc < without.stats.ipc
        assert without.stats.barrier_stall_cycles == 0

    def test_infrequent_barriers_are_cheap(self):
        """§1: stalling is tenable when the loop occurs infrequently."""
        rare = run(0.001)
        without = run(0.0)
        assert rare.stats.ipc > 0.85 * without.stats.ipc

    def test_barrier_loop_in_inventory(self):
        loops = {l.name: l for l in loops_for_config(CoreConfig.base())}
        assert "memory_barrier" in loops
        assert loops["memory_barrier"].is_loose
        assert loops["memory_barrier"].kind.value == "resource"
