"""Tests for the campaign service (:mod:`repro.serve`).

Unit layer: wire protocol, journal replay, leases, bounded priority
lanes.  End-to-end layer: a real :class:`CampaignServer` on a loopback
socket driven by the synchronous :class:`CampaignClient`, including the
chaos scenarios the subsystem exists for — dedup coalescing, 429 load
shedding, worker crashes re-leased mid-campaign, injected disconnects
survived by client retry, and ``kill -9`` (abort) followed by a
journal-replay resume that loses no accepted job.

Simulation cells are tiny so the suite stays fast.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core import CoreConfig
from repro.core.simulator import simulate
from repro.errors import ConfigError
from repro.experiments import ExperimentSettings
from repro.harness import Cell, FaultSpec, HarnessSettings, ResultCache
from repro.serve import (
    CampaignClient,
    CampaignServer,
    Journal,
    JobQueue,
    LeaseManager,
    QueueFullError,
    ServeSettings,
    ServiceError,
    ServiceUnavailableError,
    build_cell,
    compact,
    make_cell_spec,
    pending_jobs,
    read_records,
)
from repro.serve.journal import last_drain
from repro.serve.protocol import decode, encode, result_from_wire, result_to_wire
from repro.serve.queue import DONE, Job

TINY = dict(instructions=200, warmup=2_000, detailed_warmup=80)
BASE = CoreConfig.base()


def tiny_cell(workload="m88ksim", seed=0) -> Cell:
    settings = ExperimentSettings(seeds=(seed,), **TINY)
    return Cell(workload=workload, config=BASE, settings=settings, seed=seed)


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------------
# Wire protocol
# --------------------------------------------------------------------------

class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"type": "submit", "cell": {"workload": "swim"}, "id": 3}
        assert decode(encode(message)) == message

    def test_decode_rejects_junk(self):
        with pytest.raises(ConfigError):
            decode(b"not json\n")
        with pytest.raises(ConfigError):
            decode(b"[1, 2]\n")  # not an object
        with pytest.raises(ConfigError):
            decode(b'{"no": "type"}\n')

    def test_spec_round_trip_reconstructs_cell_key(self):
        # The client-side spec and the server-side rebuild must agree on
        # the content address — that is the dedup/idempotency contract.
        spec = make_cell_spec("m88ksim", seed=3, **TINY)
        cell = build_cell(spec)
        assert cell.key == tiny_cell(seed=3).key
        assert build_cell(json.loads(json.dumps(spec))).key == cell.key

    def test_spec_overrides_change_the_key(self):
        plain = build_cell(make_cell_spec("swim", **TINY))
        widened = build_cell(make_cell_spec(
            "swim", overrides={"rob_entries": 96}, **TINY))
        assert plain.key != widened.key
        assert widened.config.rob_entries == 96

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigError):
            build_cell("not a dict")
        with pytest.raises(ConfigError):
            build_cell({"seed": 0})  # no workload
        with pytest.raises(ConfigError):
            build_cell(make_cell_spec("swim", overrides={"nope": 1}))
        with pytest.raises(ConfigError):
            # dra_overrides only mean something for a DRA config
            build_cell({"workload": "swim",
                        "config": {"dra": False,
                                   "dra_overrides": {"crc_entries": 4}}})

    def test_dra_spec_builds_dra_config(self):
        cell = build_cell(make_cell_spec(
            "swim", dra=True, rf=5, dra_overrides={"crc_entries": 32},
            **TINY))
        assert cell.config.dra is not None
        assert cell.config.dra.crc_entries == 32

    def test_result_wire_round_trip(self):
        result = simulate("m88ksim", BASE, seed=0, **TINY)
        wire = result_to_wire(result, want_pickle=True)
        assert wire["ipc"] == result.ipc
        assert wire["summary"] == {
            k: float(v) for k, v in result.stats.summary().items()}
        back = result_from_wire(wire)
        assert back.ipc == result.ipc
        assert back.stats.summary() == result.stats.summary()
        # Without the pickle flag the payload (the expensive part) is
        # omitted and the round trip yields no object.
        slim = result_to_wire(result, want_pickle=False)
        assert "payload" not in slim
        assert result_from_wire(slim) is None


# --------------------------------------------------------------------------
# Journal
# --------------------------------------------------------------------------

class TestJournal:
    def accepted(self, job, **extra):
        record = {"rec": "accepted", "job": job, "key": "k" + job,
                  "priority": "batch",
                  "cell": make_cell_spec("m88ksim", **TINY)}
        record.update(extra)
        return record

    def test_append_and_read(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(self.accepted("j-1"))
            journal.append({"rec": "done", "job": "j-1", "ok": True})
        records = read_records(path)
        assert [r["rec"] for r in records] == ["accepted", "done"]
        assert all("t" in r for r in records)

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(self.accepted("j-1"))
        with path.open("a") as handle:
            handle.write('{"rec": "accepted", "job": "j-2", "ke')  # crash
        records = read_records(path)
        assert len(records) == 1
        assert pending_jobs(path)[0]["job"] == "j-1"

    def test_pending_ignores_leases_and_respects_done(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(self.accepted("j-1"))
            journal.append(self.accepted("j-2"))
            journal.append({"rec": "leased", "job": "j-1", "worker": "w0"})
            journal.append({"rec": "leased", "job": "j-2", "worker": "w1"})
            journal.append({"rec": "done", "job": "j-1", "ok": True})
        pending = pending_jobs(path)
        # j-2 was mid-lease at the crash: still pending (the lease died
        # with the process); j-1 is retired.
        assert [r["job"] for r in pending] == ["j-2"]

    def test_compact_keeps_only_backlog(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            for n in range(5):
                journal.append(self.accepted(f"j-{n}"))
            for n in range(4):
                journal.append({"rec": "done", "job": f"j-{n}", "ok": True})
        assert compact(path) == 1
        records = read_records(path)
        assert [r["job"] for r in records] == ["j-4"]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_records(tmp_path / "nope.jsonl") == []
        assert pending_jobs(tmp_path / "nope.jsonl") == []
        assert compact(tmp_path / "nope.jsonl") == 0

    def test_last_drain(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(path) as journal:
            journal.append(self.accepted("j-1"))
        assert last_drain(path) is None
        with Journal(path) as journal:
            journal.append({"rec": "drain"})
        assert last_drain(path) is not None


# --------------------------------------------------------------------------
# Leases
# --------------------------------------------------------------------------

class TestLeases:
    def make_job(self, n=1):
        return Job(id=f"j-{n}", cell=tiny_cell(), spec={})

    def test_grant_release(self):
        now = [0.0]
        leases = LeaseManager(ttl=10.0, clock=lambda: now[0])
        job = self.make_job()
        lease = leases.grant(job, "w0")
        assert len(leases) == 1
        assert job.leases == 1
        assert lease.remaining(now[0]) == 10.0
        assert leases.release(job) is True
        assert len(leases) == 0

    def test_reap_expires_overdue_only(self):
        now = [0.0]
        leases = LeaseManager(ttl=10.0, clock=lambda: now[0])
        early, late = self.make_job(1), self.make_job(2)
        leases.grant(early, "w0")
        now[0] = 5.0
        leases.grant(late, "w1")
        now[0] = 10.0
        reaped = leases.reap()
        assert [lease.job.id for lease in reaped] == ["j-1"]
        assert reaped[0].expired
        assert leases.expirations == 1
        # The worker holding the expired lease learns it lost it.
        assert leases.release(late) is True

    def test_renew_extends_deadline(self):
        now = [0.0]
        leases = LeaseManager(ttl=10.0, clock=lambda: now[0])
        job = self.make_job()
        leases.grant(job, "w0")
        now[0] = 9.0
        leases.renew(job)
        now[0] = 15.0
        assert leases.reap() == []  # renewed out to t=19


# --------------------------------------------------------------------------
# Queue
# --------------------------------------------------------------------------

class TestJobQueue:
    def make_job(self, n, priority="batch"):
        return Job(id=f"j-{n}", cell=tiny_cell(), spec={}, priority=priority)

    def test_interactive_preempts_batch(self):
        async def scenario():
            queue = JobQueue(lane_depth=8)
            await queue.offer(self.make_job(1, "batch"))
            await queue.offer(self.make_job(2, "interactive"))
            await queue.offer(self.make_job(3, "batch"))
            order = [(await queue.take()).id for _ in range(3)]
            return order

        assert run(scenario()) == ["j-2", "j-1", "j-3"]

    def test_full_lane_sheds_with_retry_after(self):
        async def scenario():
            queue = JobQueue(lane_depth=2)
            await queue.offer(self.make_job(1))
            await queue.offer(self.make_job(2))
            with pytest.raises(QueueFullError) as exc:
                await queue.offer(self.make_job(3), est_cell_seconds=2.0,
                                  workers=1)
            # Only the batch lane is full.
            await queue.offer(self.make_job(4, "interactive"))
            return exc.value.retry_after, queue.rejected

        retry_after, rejected = run(scenario())
        assert retry_after > 0
        assert rejected == 1

    def test_requeue_bypasses_bound_and_goes_first(self):
        async def scenario():
            queue = JobQueue(lane_depth=1)
            await queue.offer(self.make_job(1))
            await queue.requeue(self.make_job(2))  # full lane: still in
            return [(await queue.take()).id for _ in range(2)]

        assert run(scenario()) == ["j-2", "j-1"]

    def test_close_wakes_blocked_taker(self):
        async def scenario():
            queue = JobQueue()
            taker = asyncio.ensure_future(queue.take())
            await asyncio.sleep(0.01)
            await queue.close()
            return await asyncio.wait_for(taker, timeout=2)

        assert run(scenario()) is None

    def test_close_drains_remaining_jobs_first(self):
        async def scenario():
            queue = JobQueue()
            await queue.offer(self.make_job(1))
            await queue.close()
            return [await queue.take(), await queue.take()]

        first, second = run(scenario())
        assert first.id == "j-1"
        assert second is None

    def test_job_resolution_is_idempotent(self):
        async def scenario():
            job = self.make_job(1)
            future = job.subscribe()
            job.resolve("first", DONE)
            job.resolve("second", DONE)
            late = job.subscribe()  # post-terminal subscription
            return await future, await late

        assert run(scenario()) == ("first", "first")


# --------------------------------------------------------------------------
# End-to-end: a live server on loopback
# --------------------------------------------------------------------------

class ServerThread:
    """A CampaignServer running its own event loop in a daemon thread."""

    def __init__(self, settings: ServeSettings):
        self.settings = settings
        self.server = None
        self.loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.server = CampaignServer(self.settings)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()
        self.loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(15), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        try:
            if not self.server._drained:
                self.call(self.server.drain())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(15)

    @property
    def port(self) -> int:
        return self.server.port

    def call(self, coro, timeout: float = 60.0):
        """Run a coroutine on the server loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def counter(self, name: str) -> int:
        return self.server.registry.counter(f"serve.{name}").value


def serve_settings(tmp_path, faults=(), **overrides) -> ServeSettings:
    harness = HarnessSettings(
        isolate="inline", retries=2, backoff_base=0.0,
        cache_dir=str(tmp_path / "cache"), faults=tuple(faults),
    )
    defaults = dict(port=0, workers=2, lane_depth=16, lease_ttl=60.0,
                    journal_path=str(tmp_path / "journal.jsonl"),
                    harness=harness)
    defaults.update(overrides)
    return ServeSettings(**defaults)


def raw_submit(port, spec, priority="batch", wait=False):
    """One submit over a raw socket, returning the first reply line."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(encode({"type": "submit", "id": 1, "cell": spec,
                             "priority": priority, "wait": wait}))
        reader = sock.makefile("rb")
        return json.loads(reader.readline())


class TestServerEndToEnd:
    def test_submit_result_is_bit_identical_to_direct_simulate(self, tmp_path):
        with ServerThread(serve_settings(tmp_path)) as st:
            with CampaignClient(port=st.port) as client:
                reply = client.submit("m88ksim", seed=0, **TINY)
        direct = simulate("m88ksim", BASE, seed=0, **TINY)
        assert reply.ok and not reply.cached and not reply.dedup
        assert reply.ipc == direct.ipc
        assert reply.summary == {
            k: float(v) for k, v in direct.stats.summary().items()}
        assert reply.result.ipc == direct.ipc
        assert reply.result.stats.summary() == direct.stats.summary()

    def test_second_submit_hits_cache(self, tmp_path):
        with ServerThread(serve_settings(tmp_path)) as st:
            with CampaignClient(port=st.port) as client:
                first = client.submit("m88ksim", **TINY)
                second = client.submit("m88ksim", **TINY)
            assert st.counter("executed") == 1
        assert first.ok and not first.cached
        assert second.ok and second.cached
        assert second.ipc == first.ipc

    def test_concurrent_identical_submits_coalesce(self, tmp_path):
        # Hold the one execution open with a slow fault so both clients
        # overlap; exactly one simulation must run.
        settings = serve_settings(
            tmp_path, faults=[FaultSpec("slow", attempts=1, delay_s=0.8)])
        replies = []

        def submit():
            with CampaignClient(port=st.port) as client:
                replies.append(client.submit("m88ksim", **TINY))

        with ServerThread(settings) as st:
            threads = [threading.Thread(target=submit) for _ in range(2)]
            threads[0].start()
            time.sleep(0.25)  # first submit is in flight (sleeping)
            threads[1].start()
            for thread in threads:
                thread.join(30)
            assert st.counter("executed") == 1
            assert st.counter("dedup_coalesced") == 1
        assert len(replies) == 2
        assert all(reply.ok for reply in replies)
        assert replies[0].ipc == replies[1].ipc
        assert any(reply.dedup for reply in replies)

    def test_full_lane_sheds_429_with_retry_after(self, tmp_path):
        settings = serve_settings(
            tmp_path, workers=1, lane_depth=1,
            faults=[FaultSpec("slow", attempts=9, delay_s=1.5)])
        with ServerThread(settings) as st:
            # c1 occupies the worker (sleeping), c2 fills the lane.
            assert raw_submit(
                st.port, make_cell_spec("m88ksim", seed=1, **TINY)
            )["type"] == "accepted"
            time.sleep(0.3)
            assert raw_submit(
                st.port, make_cell_spec("m88ksim", seed=2, **TINY)
            )["type"] == "accepted"
            shed = raw_submit(
                st.port, make_cell_spec("m88ksim", seed=3, **TINY))
            assert shed["type"] == "rejected"
            assert shed["code"] == 429
            assert shed["retry_after"] > 0
            assert st.counter("rejected_full") == 1
            # The interactive lane is bounded independently: still open.
            assert raw_submit(
                st.port, make_cell_spec("m88ksim", seed=4, **TINY),
                priority="interactive",
            )["type"] == "accepted"

    def test_worker_crash_is_retried_within_lease(self, tmp_path):
        # The harness's own retry loop absorbs a crash fault; the job
        # completes on its first lease.
        settings = serve_settings(
            tmp_path, faults=[FaultSpec("crash", attempts=1)])
        with ServerThread(settings) as st:
            with CampaignClient(port=st.port) as client:
                reply = client.submit("m88ksim", **TINY)
            assert st.counter("completed") == 1
        assert reply.ok
        assert reply.attempts == 2  # crash, then clean

    def test_crash_exhausting_harness_retries_is_released(self, tmp_path):
        # Harness retries=0: the crash consumes the whole lease, the
        # service re-leases the job, and the global attempt numbering
        # (attempt_offset) steps past the fault's attempts=1 bound.
        harness = HarnessSettings(
            isolate="inline", retries=0, backoff_base=0.0,
            cache_dir=str(tmp_path / "cache"),
            faults=(FaultSpec("crash", attempts=1),),
        )
        settings = serve_settings(tmp_path, harness=harness)
        with ServerThread(settings) as st:
            with CampaignClient(port=st.port) as client:
                reply = client.submit("m88ksim", **TINY)
            assert st.counter("requeued") == 1
            assert st.counter("executed") == 2
            records = [r["rec"] for r in read_records(
                st.settings.journal_path)]
        assert reply.ok
        assert records.count("requeued") == 1
        assert records.count("done") == 1

    def test_persistent_crash_fails_after_max_leases(self, tmp_path):
        harness = HarnessSettings(
            isolate="inline", retries=0, backoff_base=0.0,
            cache_dir=str(tmp_path / "cache"),
            faults=(FaultSpec("crash", attempts=99),),
        )
        settings = serve_settings(tmp_path, harness=harness,
                                  max_lease_attempts=2)
        with ServerThread(settings) as st:
            with CampaignClient(port=st.port) as client:
                reply = client.submit("m88ksim", **TINY)
            assert st.counter("failed") == 1
        assert not reply.ok
        assert reply.error_kind == "CellCrashError"

    def test_injected_disconnect_survived_by_client_retry(self, tmp_path):
        settings = serve_settings(
            tmp_path, faults=[FaultSpec("disconnect", attempts=1)])
        with ServerThread(settings) as st:
            with CampaignClient(port=st.port, retry_delay=0.05) as client:
                reply = client.submit("m88ksim", **TINY)
            assert st.counter("disconnects_injected") == 1
            assert st.counter("executed") == 1
        direct = simulate("m88ksim", BASE, seed=0, **TINY)
        assert reply.ok
        assert reply.reconnects >= 1
        # The retry rode the cache/dedup path to the same bytes.
        assert reply.ipc == direct.ipc

    def test_invalid_specs_get_error_replies(self, tmp_path):
        with ServerThread(serve_settings(tmp_path)) as st:
            with CampaignClient(port=st.port) as client:
                with pytest.raises(ServiceError):
                    client.submit("m88ksim", overrides={"nope": 1}, **TINY)
                with pytest.raises(ServiceError):
                    client.submit_spec(make_cell_spec("m88ksim", **TINY),
                                       priority="vip")

    def test_health_status_stats_endpoints(self, tmp_path):
        with ServerThread(serve_settings(tmp_path)) as st:
            with CampaignClient(port=st.port) as client:
                client.submit("m88ksim", **TINY)
                health = client.health()
                status = client.status()
                stats = client.stats()
        assert health["ok"] and not health["draining"]
        assert health["protocol"] == 1
        assert status["jobs"]["done"] == 1
        assert set(status["queues"]) == {"interactive", "batch"}
        metrics = stats["metrics"]
        assert metrics["serve.submitted"] == 1
        assert metrics["serve.completed"] == 1
        assert metrics["serve.service_ms.count"] == 1.0
        assert stats["cache"]["misses"] >= 1

    def test_drain_finishes_accepted_work_then_rejects(self, tmp_path):
        settings = serve_settings(
            tmp_path, workers=1,
            faults=[FaultSpec("slow", attempts=1, delay_s=0.6)])
        with ServerThread(settings) as st:
            port = st.port
            accepted = raw_submit(
                port, make_cell_spec("m88ksim", **TINY))
            assert accepted["type"] == "accepted"
            time.sleep(0.15)  # job leased, worker sleeping in the fault
            st.call(st.server.drain(), timeout=30)
            assert st.counter("completed") == 1
            journal_path = st.settings.journal_path
        records = read_records(journal_path)
        assert [r["rec"] for r in records[-2:]] == ["done", "drain"]
        assert last_drain(journal_path) is not None
        # The listener is gone: new submits cannot connect.
        with pytest.raises(ServiceUnavailableError):
            CampaignClient(port=port, retries=0).submit("m88ksim", **TINY)

    def test_submit_while_draining_rejected_503(self, tmp_path):
        with ServerThread(serve_settings(tmp_path)) as st:
            st.server._draining = True
            reply = raw_submit(st.port, make_cell_spec("m88ksim", **TINY))
            st.server._draining = False
        assert reply["type"] == "rejected"
        assert reply["code"] == 503


class TestAbortAndResume:
    """kill -9 (abort) then ``--resume``: no accepted job is lost."""

    def test_resume_replays_accepted_jobs(self, tmp_path):
        slow = FaultSpec("slow", attempts=1, delay_s=8.0)
        settings = serve_settings(tmp_path, workers=1, faults=[slow])
        specs = [make_cell_spec("m88ksim", seed=seed, **TINY)
                 for seed in range(4)]
        keys = [build_cell(spec).key for spec in specs]
        with ServerThread(settings) as st:
            for spec in specs:
                assert raw_submit(st.port, spec)["type"] == "accepted"
            time.sleep(0.2)  # first job leased and wedged in the fault
            st.call(st.server.abort(), timeout=30)
            st.server._drained = True  # skip the graceful exit path
        journal_path = settings.journal_path
        pending = pending_jobs(journal_path)
        assert len(pending) == 4  # nothing was finished, nothing lost
        assert last_drain(journal_path) is None  # dirty shutdown

        resumed = serve_settings(tmp_path, workers=2, resume=True)
        with ServerThread(resumed) as st:
            assert st.counter("resumed") == 4
            deadline = time.time() + 60
            while time.time() < deadline and st.server.inflight:
                time.sleep(0.05)
            assert not st.server.inflight, "resumed jobs did not finish"
            assert st.counter("completed") == 4
        cache = ResultCache(tmp_path / "cache")
        direct = simulate("m88ksim", BASE, seed=2, **TINY)
        for key in keys:
            assert cache.get(key) is not None
        assert cache.get(keys[2]).ipc == direct.ipc
        # The resumed journal retires every replayed job.
        assert pending_jobs(journal_path) == []

    def test_resume_skips_unreplayable_records(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        with Journal(journal_path) as journal:
            journal.append({"rec": "accepted", "job": "j-1", "key": "k",
                            "priority": "batch",
                            "cell": {"workload": "no_such_workload_v9"}})
            journal.append({"rec": "accepted", "job": "j-2", "key": "k2",
                            "priority": "batch", "cell": "garbage"})
        settings = serve_settings(tmp_path, resume=True,
                                  journal_path=str(journal_path))
        with ServerThread(settings) as st:
            # The poison records are retired, not replayed forever.
            deadline = time.time() + 30
            while time.time() < deadline and st.server.inflight:
                time.sleep(0.05)
            resumed = st.counter("resumed")
        # j-1 builds a Cell (workload names resolve at simulation time)
        # and fails fast at execution; j-2 cannot even build.
        assert resumed <= 1
        assert pending_jobs(journal_path) == []


class TestChaosCampaign:
    """The acceptance scenario: a 20-cell campaign under active chaos
    completes with results bit-identical to direct ``simulate()``."""

    WORKLOADS = ("m88ksim", "swim", "compress", "gcc")
    SEEDS = (0, 1, 2, 3, 4)
    FAULTS = (
        # Every seed-0 cell crashes once, every seed-1 cell flakes once,
        # every seed-2 cell is slowed; delivery of seed-3 results drops
        # the connection once.
        FaultSpec("crash", seed="0", attempts=1),
        FaultSpec("transient", seed="1", attempts=1),
        FaultSpec("slow", seed="2", attempts=1, delay_s=0.05),
        FaultSpec("disconnect", seed="3", attempts=1),
    )

    def test_twenty_cell_campaign_bit_identical(self, tmp_path):
        settings = serve_settings(tmp_path, workers=2, faults=self.FAULTS)
        cells = [(w, s) for w in self.WORKLOADS for s in self.SEEDS]
        replies = {}
        lock = threading.Lock()

        def drive(assigned):
            with CampaignClient(port=st.port, retry_delay=0.05) as client:
                for workload, seed in assigned:
                    reply = client.submit(workload, seed=seed,
                                          want_result=False, **TINY)
                    with lock:
                        replies[(workload, seed)] = reply

        with ServerThread(settings) as st:
            threads = [
                threading.Thread(target=drive, args=(cells[n::4],))
                for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert st.counter("disconnects_injected") >= 1
            journal_path = st.settings.journal_path
        assert len(replies) == 20
        assert all(reply.ok for reply in replies.values())
        for workload, seed in cells:
            direct = simulate(workload, BASE, seed=seed, **TINY)
            assert replies[(workload, seed)].ipc == direct.ipc, \
                f"{workload}/seed{seed} diverged under chaos"
        # Clean shutdown after a chaotic life.
        assert last_drain(journal_path) is not None
