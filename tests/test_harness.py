"""Tests for the fault-tolerant experiment harness.

Covers the recovery paths end to end: fault-injected hang -> watchdog
timeout -> retry -> success; persistent crash -> partial campaign plus
failure report; and resume of an interrupted campaign reusing cached
cells.  Simulation cells are tiny so the subprocess paths stay fast.
"""

import os
import pickle
import time

import pytest

from repro.core import CoreConfig
from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigError,
    SimulationHangError,
    TransientCellError,
    WorkloadError,
    is_retryable,
)
from repro.experiments import ExperimentSettings, run_config
from repro.experiments.runner import _RunCache, RunPoint, run_campaign
from repro.experiments import runner as runner_mod
from repro.harness import (
    Cell,
    FaultSpec,
    HarnessSettings,
    ResultCache,
    cell_key,
    execute_cells,
    parse_faults,
    run_cell,
)

TINY = ExperimentSettings(instructions=250, warmup=2_000, detailed_warmup=80)
BASE = CoreConfig.base()


@pytest.fixture
def fresh_memo(monkeypatch):
    """Isolate the in-process memo so faults cannot be masked by it."""
    monkeypatch.setattr(runner_mod, "_CACHE", _RunCache())


def tiny_cell(workload="m88ksim", config=BASE, seed=0) -> Cell:
    return Cell(workload=workload, config=config, settings=TINY, seed=seed)


class TestCellKey:
    def test_stable(self):
        assert cell_key("swim", BASE, TINY, 0) == cell_key("swim", BASE, TINY, 0)

    def test_distinguishes_every_dimension(self):
        base = cell_key("swim", BASE, TINY, 0)
        assert cell_key("gcc", BASE, TINY, 0) != base
        assert cell_key("swim", CoreConfig.base().with_pipe(3, 3), TINY, 0) != base
        assert cell_key("swim", BASE, ExperimentSettings(instructions=99), 0) != base
        assert cell_key("swim", BASE, TINY, 1) != base

    def test_independent_of_campaign_seed_list(self):
        # The same (workload, config, seed) cell must share a cache slot
        # whether it was requested by a 1-seed or a 3-seed campaign.
        one = ExperimentSettings(instructions=250, warmup=2_000,
                                 detailed_warmup=80, seeds=(0,))
        many = ExperimentSettings(instructions=250, warmup=2_000,
                                  detailed_warmup=80, seeds=(0, 1, 2))
        assert cell_key("swim", BASE, one, 1) == cell_key("swim", BASE, many, 1)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, {"ipc": 1.5}, meta={"workload": "swim"})
        assert cache.get("ab" + "0" * 62) == {"ipc": 1.5}
        assert cache.hits == 1

    def test_missing_is_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ff" + "0" * 62) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.corrupt_swallowed == 0
        assert cache.get(key) is None
        assert not path.exists()
        # the swallowed decode failure is counted, not silent
        assert cache.corrupt_swallowed == 1

    def test_version_mismatch_is_not_counted_corrupt(self, tmp_path):
        # stale-version entries decode fine; only decode failures count
        cache = ResultCache(tmp_path)
        key = "ee" + "1" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"version": -1, "result": 42}))
        assert cache.get(key) is None
        assert cache.corrupt_swallowed == 0

    def test_unexpected_error_in_load_propagates(self, tmp_path):
        # the narrowed except must not swallow arbitrary exceptions:
        # a KeyboardInterrupt-ish programming error escapes _load
        cache = ResultCache(tmp_path)
        key = "cf" + "0" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"whatever")
        real_load = pickle.load

        def boom(handle):
            raise KeyboardInterrupt

        pickle.load = boom
        try:
            with pytest.raises(KeyboardInterrupt):
                cache.get(key)
        finally:
            pickle.load = real_load
        assert cache.corrupt_swallowed == 0

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ee" + "0" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"version": -1, "result": 42}))
        assert cache.get(key) is None

    def test_contains_validates_like_get(self, tmp_path):
        # __contains__ must not report corrupt or stale-version entries
        # as present (a resume would then skip recomputing them), and
        # its probes count in the hit/miss stats like get's do.
        cache = ResultCache(tmp_path)
        good, stale, corrupt, absent = (
            tag + "0" * 62 for tag in ("aa", "bb", "cc", "dd"))
        cache.put(good, {"ipc": 1.0})
        for key, payload in ((stale, pickle.dumps({"version": -1})),
                             (corrupt, b"garbage")):
            path = cache.path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload)
        assert good in cache
        assert stale not in cache
        assert corrupt not in cache
        assert absent not in cache
        assert (cache.hits, cache.misses) == (1, 3)
        assert not cache.path(corrupt).exists()  # dropped, like get

    def test_remove_corrupt_spares_a_racing_rewrite(self, tmp_path):
        # The corrupt-entry unlink races concurrent put()s: once another
        # writer os.replace()s a fresh payload in (new inode), the
        # removal must leave it alone.
        import os

        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"garbage")
        with path.open("rb") as handle:
            stat = os.fstat(handle.fileno())
        cache.put(key, {"ipc": 2.0})  # the racing rewrite (new inode)
        ResultCache._remove_corrupt(path, stat)
        assert cache.get(key) == {"ipc": 2.0}
        # Same inode (no race): the unlink fires.
        path2 = cache.path("ba" + "0" * 62)
        path2.parent.mkdir(parents=True)
        path2.write_bytes(b"garbage")
        with path2.open("rb") as handle:
            stat2 = os.fstat(handle.fileno())
        ResultCache._remove_corrupt(path2, stat2)
        assert not path2.exists()
        # A vanished entry (stat=None or already unlinked) never raises.
        ResultCache._remove_corrupt(path2, stat2)
        ResultCache._remove_corrupt(path2, None)


class TestCacheCorruptionRecovery:
    """A damaged entry reads as a miss exactly once, then the cell is
    recomputed and re-cached (the ISSUE's corruption-recovery triad)."""

    def prime(self, tmp_path):
        harness = HarnessSettings(isolate="inline", backoff_base=0.0,
                                  cache_dir=str(tmp_path))
        cell = tiny_cell()
        first = run_cell(cell, harness)
        assert first.ok and not first.cached
        return harness, cell, ResultCache(tmp_path)

    def recheck(self, harness, cell, cache):
        recomputed = run_cell(cell, harness)
        assert recomputed.ok and not recomputed.cached
        again = run_cell(cell, harness)
        assert again.ok and again.cached
        assert again.result.ipc == recomputed.result.ipc

    def test_truncated_pickle(self, tmp_path):
        harness, cell, cache = self.prime(tmp_path)
        path = cache.path(cell.key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get(cell.key) is None
        assert cache.misses == 1
        assert not path.exists()  # dropped on first read
        self.recheck(harness, cell, cache)

    def test_version_mismatch(self, tmp_path):
        harness, cell, cache = self.prime(tmp_path)
        path = cache.path(cell.key)
        path.write_bytes(pickle.dumps({"version": -1, "result": "old"}))
        assert cache.get(cell.key) is None
        assert path.exists()  # stale, not garbage: put() overwrites it
        self.recheck(harness, cell, cache)

    @pytest.mark.skipif(
        hasattr(os, "geteuid") and os.geteuid() == 0,
        reason="root ignores file permission bits",
    )
    def test_unreadable_permissions(self, tmp_path):
        harness, cell, cache = self.prime(tmp_path)
        path = cache.path(cell.key)
        path.chmod(0o000)
        try:
            assert cache.get(cell.key) is None
            assert cache.misses == 1
            # Recompute; put()'s atomic replace supersedes the entry.
            self.recheck(harness, cell, cache)
        finally:
            if path.exists():
                path.chmod(0o644)


class TestFaultSpecs:
    def test_parse_round_trip(self):
        specs = parse_faults("hang|swim|Base:5_5|0|1;crash|compress")
        assert specs[0] == FaultSpec("hang", "swim", "Base:5_5", "0", 1)
        assert specs[1] == FaultSpec("crash", "compress")

    def test_matching_respects_attempts(self):
        spec = FaultSpec("transient", "swim", attempts=2)
        assert spec.matches("swim", "Base:5_5", 0, 1)
        assert spec.matches("swim", "Base:5_5", 0, 2)
        assert not spec.matches("swim", "Base:5_5", 0, 3)
        assert not spec.matches("gcc", "Base:5_5", 0, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("meltdown")

    def test_slow_parse_round_trip(self):
        specs = parse_faults("slow|*|*|*|2|0.5;slow|swim")
        assert specs[0] == FaultSpec("slow", attempts=2, delay_s=0.5)
        assert specs[1] == FaultSpec("slow", "swim")  # delay optional
        for spec in specs + (FaultSpec("crash", "gcc", attempts=3),):
            assert parse_faults(spec.encode()) == (spec,)

    def test_malformed_slow_specs_rejected(self):
        with pytest.raises(ConfigError):
            parse_faults("slow|*|*|*|1|fast")  # non-numeric delay
        with pytest.raises(ConfigError):
            parse_faults("slow|*|*|*|1|0.5|extra")  # too many fields
        with pytest.raises(ConfigError):
            FaultSpec("slow", delay_s=-1.0)

    def test_slow_fault_delays_then_succeeds(self):
        harness = HarnessSettings(
            backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("slow", "m88ksim", attempts=1, delay_s=0.2),),
        )
        started = time.monotonic()
        outcome = run_cell(tiny_cell(), harness)
        assert outcome.ok
        assert outcome.attempts == 1  # slowed, not failed
        assert time.monotonic() - started >= 0.2

    def test_slow_delay_is_capped(self, monkeypatch):
        # A typo'd delay must not wedge a campaign: trigger() clamps the
        # sleep to SLOW_DELAY_CAP.
        from repro.harness import faults as faults_mod

        naps = []
        monkeypatch.setattr(faults_mod.time, "sleep",
                            lambda seconds: naps.append(seconds))
        faults_mod.trigger(FaultSpec("slow", delay_s=1e9), isolated=False)
        assert naps == [faults_mod.SLOW_DELAY_CAP]

    def test_disconnect_is_a_worker_noop(self):
        # disconnect is a service-level kind: the executor filters it
        # out (WORKER_KINDS) and the cell runs untouched.
        harness = HarnessSettings(
            backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("disconnect", attempts=99),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert outcome.ok
        assert outcome.attempts == 1

    def test_attempt_offset_gives_global_fault_numbering(self):
        # A service re-leasing a failed job passes the attempts already
        # consumed, so an attempts=2 fault fires twice globally rather
        # than twice per lease.
        harness = HarnessSettings(
            retries=0, backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("crash", "m88ksim", attempts=2),),
        )
        first = run_cell(tiny_cell(), harness)
        assert not first.ok and isinstance(first.error, CellCrashError)
        second = run_cell(tiny_cell(), harness, attempt_offset=1)
        assert not second.ok  # global attempt 2: still inside the fault
        third = run_cell(tiny_cell(), harness, attempt_offset=2)
        assert third.ok  # global attempt 3: past it
        assert third.attempts == 1  # local numbering unaffected


class TestRetry:
    def test_transient_fault_retries_to_success(self):
        harness = HarnessSettings(
            backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("transient", "m88ksim", attempts=1),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert outcome.ok
        assert outcome.attempts == 2

    def test_persistent_fault_exhausts_retries(self):
        harness = HarnessSettings(
            retries=2, backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("transient", "m88ksim", attempts=99),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert not outcome.ok
        assert outcome.attempts == 3
        assert isinstance(outcome.error, TransientCellError)
        assert is_retryable(outcome.error)

    def test_config_errors_are_not_retried(self):
        bad = ExperimentSettings(instructions=0, warmup=100, detailed_warmup=0)
        cell = Cell(workload="m88ksim", config=BASE, settings=bad, seed=0)
        outcome = run_cell(cell, HarnessSettings(isolate="inline"))
        assert not outcome.ok
        assert outcome.attempts == 1
        assert isinstance(outcome.error, ConfigError)

    def test_unknown_workload_classified(self):
        outcome = run_cell(
            tiny_cell(workload="doom3"), HarnessSettings(isolate="inline")
        )
        assert not outcome.ok
        assert isinstance(outcome.error, WorkloadError)
        assert outcome.attempts == 1


class TestProcessIsolation:
    def test_subprocess_matches_inline_result(self):
        inline = run_cell(tiny_cell(), HarnessSettings(isolate="inline"))
        isolated = run_cell(tiny_cell(), HarnessSettings(isolate="process"))
        assert inline.ok and isolated.ok
        assert isolated.result.ipc == inline.result.ipc

    def test_hang_timeout_retry_success(self):
        # Attempt 1 hangs and is killed by the watchdog; attempt 2 runs
        # clean: the exact recovery sequence the harness exists for.
        harness = HarnessSettings(
            cell_timeout=2.0, retries=1, backoff_base=0.0,
            faults=(FaultSpec("hang", "m88ksim", attempts=1),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert outcome.ok
        assert outcome.attempts == 2

    def test_persistent_hang_reports_timeout(self):
        harness = HarnessSettings(
            cell_timeout=0.5, retries=1, backoff_base=0.0,
            faults=(FaultSpec("hang", "m88ksim", attempts=99),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert not outcome.ok
        assert isinstance(outcome.error, CellTimeoutError)
        assert outcome.attempts == 2

    def test_crash_reports_exit_code(self):
        harness = HarnessSettings(
            isolate="process", retries=0, backoff_base=0.0,
            faults=(FaultSpec("crash", "m88ksim", attempts=99),),
        )
        outcome = run_cell(tiny_cell(), harness)
        assert not outcome.ok
        assert isinstance(outcome.error, CellCrashError)
        assert "86" in str(outcome.error)

    def test_hang_error_from_worker_carries_snapshot(self, tmp_path):
        # SimulationHangError must survive the pipe crossing intact.
        from repro.errors import HangSnapshot
        from repro.harness.executor import _decode_error, _encode_error

        snapshot = HangSnapshot(
            cycle=7, last_retire_cycle=1, retired=0, inflight=3,
            stage_occupancy={"rob": 3}, oldest_instruction="T0 uid=5",
        )
        encoded = _encode_error(SimulationHangError("wedged", snapshot))
        decoded = _decode_error(encoded)
        assert isinstance(decoded, SimulationHangError)
        assert decoded.snapshot.stage_occupancy == {"rob": 3}


class TestCampaignRecovery:
    """The ISSUE acceptance scenario: one hang + one crash, then resume."""

    WORKLOADS = ("m88ksim", "swim", "compress", "gcc")
    FAULTS = (
        FaultSpec("hang", "swim", attempts=99),
        FaultSpec("crash", "gcc", attempts=99),
    )

    def harness(self, cache_dir, faults=()):
        return HarnessSettings(
            cell_timeout=2.0, retries=1, backoff_base=0.0,
            cache_dir=str(cache_dir), faults=faults,
        )

    def test_partial_campaign_then_resume(self, tmp_path, fresh_memo):
        harness = self.harness(tmp_path, self.FAULTS)
        campaign = run_campaign(
            [(w, BASE) for w in self.WORKLOADS], TINY, harness
        )
        # The campaign completed and reports exactly the two injected
        # failures; healthy cells produced points.
        assert set(
            workload for workload, _ in campaign.points
        ) == {"m88ksim", "compress"}
        assert {f.workload for f in campaign.failures} == {"swim", "gcc"}
        kinds = {f.workload: f.kind for f in campaign.failures}
        assert kinds["swim"] == "CellTimeoutError"
        assert kinds["gcc"] == "CellCrashError"
        assert all(f.attempts == 2 for f in campaign.failures)
        report = campaign.failure_report()
        assert "swim" in report and "gcc" in report

        # --resume with the faults gone: healthy cells come from the
        # cache (no re-execution), only the two failed cells run.
        resumed = self.harness(tmp_path)
        cells = [
            Cell(workload=w, config=BASE, settings=TINY, seed=0)
            for w in self.WORKLOADS
        ]
        outcomes = {o.cell.workload: o for o in execute_cells(cells, resumed)}
        assert all(o.ok for o in outcomes.values())
        assert outcomes["m88ksim"].cached
        assert outcomes["compress"].cached
        assert not outcomes["swim"].cached
        assert not outcomes["gcc"].cached

    def test_resume_disabled_recomputes(self, tmp_path, fresh_memo):
        harness = self.harness(tmp_path)
        first = run_cell(tiny_cell(), harness)
        again = run_cell(tiny_cell(), harness)
        forced = run_cell(tiny_cell(), harness.replace(resume=False))
        assert not first.cached and again.cached and not forced.cached


class TestRunConfigIntegration:
    def test_run_config_raises_classified_errors(self, fresh_memo):
        with pytest.raises(WorkloadError):
            run_config("doom3", BASE, TINY)
        bad = ExperimentSettings(instructions=0)
        with pytest.raises(ConfigError):
            run_config("m88ksim", BASE, bad)

    def test_run_config_reads_through_persistent_cache(
        self, tmp_path, fresh_memo, monkeypatch
    ):
        harness = HarnessSettings(cache_dir=str(tmp_path))
        first = run_config("m88ksim", BASE, TINY, harness=harness)
        # New memo: the point must be rebuilt from disk, not re-simulated.
        monkeypatch.setattr(runner_mod, "_CACHE", _RunCache())
        calls = []
        from repro.harness import executor as executor_mod
        real = executor_mod._simulate_cell
        monkeypatch.setattr(
            executor_mod, "_simulate_cell",
            lambda cell: calls.append(cell) or real(cell),
        )
        second = run_config("m88ksim", BASE, TINY, harness=harness)
        assert second.ipc == first.ipc
        assert calls == []


class TestRunCacheLRU:
    def make_point(self, tag):
        return RunPoint(workload=tag, config=BASE, ipc=1.0)

    def test_bounded(self):
        cache = _RunCache(maxsize=2)
        for tag in ("a", "b", "c"):
            cache.put((tag,), self.make_point(tag))
        assert len(cache) == 2
        assert cache.get(("a",)) is None
        assert cache.get(("c",)) is not None

    def test_get_refreshes_recency(self):
        cache = _RunCache(maxsize=2)
        cache.put(("a",), self.make_point("a"))
        cache.put(("b",), self.make_point("b"))
        cache.get(("a",))  # 'a' is now most recent; 'b' should evict
        cache.put(("c",), self.make_point("c"))
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None


class TestGracefulFigures:
    def test_figure4_marks_failed_cells(self, fresh_memo):
        from repro.experiments import run_figure4

        harness = HarnessSettings(
            retries=0, backoff_base=0.0, isolate="inline",
            faults=(FaultSpec("crash", "m88ksim", "Base:9_9", attempts=99),),
        )
        result = run_figure4(TINY, workloads=("m88ksim",), harness=harness)
        assert result.rows["m88ksim"][0] == pytest.approx(1.0)
        assert result.rows["m88ksim"][-1] is None
        assert len(result.failures) == 1
        text = result.render()
        assert "n/a" in text
        assert "failed" in text
