"""Property-based tests (hypothesis) for core data structures."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.analysis import EmpiricalCDF
from repro.branch.predictors import _CounterTable
from repro.core.dra import ClusterRegisterCache, InsertionTable
from repro.core.regfile import PhysRegFile
from repro.core.stats import CoreStats
from repro.memory import Cache, CacheConfig

lines = st.integers(min_value=0, max_value=63)


class TestCacheProperties:
    @given(st.lists(lines, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru_model(self, accesses):
        """The cache must behave exactly like a per-set LRU reference."""
        config = CacheConfig(
            name="p", size_bytes=512, line_bytes=64, assoc=2, hit_latency=1
        )
        cache = Cache(config)
        reference = {}  # set index -> OrderedDict of lines (LRU first)
        for line in accesses:
            addr = line * 64
            set_index = line % config.num_sets
            ways = reference.setdefault(set_index, OrderedDict())
            expected_hit = line in ways
            assert cache.access(addr) == expected_hit
            ways.pop(line, None)
            ways[line] = True
            if len(ways) > config.assoc:
                ways.popitem(last=False)

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        config = CacheConfig(
            name="p", size_bytes=256, line_bytes=64, assoc=2, hit_latency=1
        )
        cache = Cache(config)
        for line in accesses:
            cache.access(line * 64)
            assert cache.occupancy <= config.num_sets * config.assoc

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = Cache(CacheConfig(name="p", size_bytes=512, line_bytes=64,
                                  assoc=2, hit_latency=1))
        for line in accesses:
            cache.access(line * 64)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(accesses)


class TestCounterProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_counters_stay_in_range(self, outcomes):
        table = _CounterTable(16)
        for taken in outcomes:
            table.update(3, taken)
            assert 0 <= table._counters[3] <= 3

    @given(st.integers(min_value=4, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_repeated_taken_converges_to_taken(self, repeats):
        table = _CounterTable(16)
        for _ in range(repeats):
            table.update(5, True)
        assert table.predict(5)


class TestCRCProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_size_bounded_and_newest_retained(self, pregs):
        crc = ClusterRegisterCache(entries=4, stats=CoreStats())
        for preg in pregs:
            crc.insert(preg)
            assert len(crc) <= 4
            assert crc.contains(preg)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "inv"]),
                      st.integers(min_value=0, max_value=15)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_invalidate_removes(self, events):
        crc = ClusterRegisterCache(entries=4, stats=CoreStats())
        for kind, preg in events:
            if kind == "ins":
                crc.insert(preg)
            else:
                crc.invalidate(preg)
                assert not crc.contains(preg)


class TestInsertionTableProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["inc", "dec", "clr"]),
                      st.integers(min_value=0, max_value=7)),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_bounded(self, events):
        table = InsertionTable(8, counter_max=3, stats=CoreStats())
        for kind, preg in events:
            if kind == "inc":
                table.increment(preg)
            elif kind == "dec":
                table.decrement(preg)
            else:
                table.clear(preg)
            assert 0 <= table.count(preg) <= 3


class TestRegFileProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_conservation(self, ops):
        rf = PhysRegFile(32)
        held = []
        for allocate in ops:
            if allocate and rf.can_allocate():
                held.append(rf.allocate())
            elif held:
                rf.free(held.pop())
            assert rf.free_count + len(held) == 32


class TestCDFProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF(samples)
        previous = 0.0
        for x in range(0, 1001, 50):
            value = cdf.at(x)
            assert 0.0 <= value <= 1.0
            assert value >= previous
            previous = value
        assert cdf.at(max(samples)) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_tail_complements_cdf(self, samples):
        cdf = EmpiricalCDF(samples)
        for x in (0, 10, 50, 100):
            assert abs(cdf.at(x) + cdf.tail_fraction(x) - 1.0) < 1e-12
