"""Property-based tests (hypothesis) for core data structures."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.analysis import EmpiricalCDF
from repro.branch.predictors import _CounterTable
from repro.core.config import CoreConfig
from repro.core.dra import ClusterRegisterCache, InsertionTable
from repro.core.forwarding import ForwardingBuffer
from repro.core.iq import IssueQueue
from repro.core.regfile import PhysRegFile
from repro.core.stats import CoreStats
from repro.isa import MicroOp, OpClass
from repro.isa.instructions import DynInst
from repro.memory import Cache, CacheConfig
from repro.workloads import SMOKE_PROFILES, SPEC95_PROFILES, SyntheticTraceGenerator

lines = st.integers(min_value=0, max_value=63)


class TestCacheProperties:
    @given(st.lists(lines, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_lru_model(self, accesses):
        """The cache must behave exactly like a per-set LRU reference."""
        config = CacheConfig(
            name="p", size_bytes=512, line_bytes=64, assoc=2, hit_latency=1
        )
        cache = Cache(config)
        reference = {}  # set index -> OrderedDict of lines (LRU first)
        for line in accesses:
            addr = line * 64
            set_index = line % config.num_sets
            ways = reference.setdefault(set_index, OrderedDict())
            expected_hit = line in ways
            assert cache.access(addr) == expected_hit
            ways.pop(line, None)
            ways[line] = True
            if len(ways) > config.assoc:
                ways.popitem(last=False)

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        config = CacheConfig(
            name="p", size_bytes=256, line_bytes=64, assoc=2, hit_latency=1
        )
        cache = Cache(config)
        for line in accesses:
            cache.access(line * 64)
            assert cache.occupancy <= config.num_sets * config.assoc

    @given(st.lists(lines, min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = Cache(CacheConfig(name="p", size_bytes=512, line_bytes=64,
                                  assoc=2, hit_latency=1))
        for line in accesses:
            cache.access(line * 64)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(accesses)


class TestCounterProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_counters_stay_in_range(self, outcomes):
        table = _CounterTable(16)
        for taken in outcomes:
            table.update(3, taken)
            assert 0 <= table._counters[3] <= 3

    @given(st.integers(min_value=4, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_repeated_taken_converges_to_taken(self, repeats):
        table = _CounterTable(16)
        for _ in range(repeats):
            table.update(5, True)
        assert table.predict(5)


class TestCRCProperties:
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_size_bounded_and_newest_retained(self, pregs):
        crc = ClusterRegisterCache(entries=4, stats=CoreStats())
        for preg in pregs:
            crc.insert(preg)
            assert len(crc) <= 4
            assert crc.contains(preg)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "inv"]),
                      st.integers(min_value=0, max_value=15)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_invalidate_removes(self, events):
        crc = ClusterRegisterCache(entries=4, stats=CoreStats())
        for kind, preg in events:
            if kind == "ins":
                crc.insert(preg)
            else:
                crc.invalidate(preg)
                assert not crc.contains(preg)


class TestInsertionTableProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["inc", "dec", "clr"]),
                      st.integers(min_value=0, max_value=7)),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_bounded(self, events):
        table = InsertionTable(8, counter_max=3, stats=CoreStats())
        for kind, preg in events:
            if kind == "inc":
                table.increment(preg)
            elif kind == "dec":
                table.decrement(preg)
            else:
                table.clear(preg)
            assert 0 <= table.count(preg) <= 3


class TestRegFileProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_alloc_free_conservation(self, ops):
        rf = PhysRegFile(32)
        held = []
        for allocate in ops:
            if allocate and rf.can_allocate():
                held.append(rf.allocate())
            elif held:
                rf.free(held.pop())
            assert rf.free_count + len(held) == 32


class TestCDFProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF(samples)
        previous = 0.0
        for x in range(0, 1001, 50):
            value = cdf.at(x)
            assert 0.0 <= value <= 1.0
            assert value >= previous
            previous = value
        assert cdf.at(max(samples)) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_tail_complements_cdf(self, samples):
        cdf = EmpiricalCDF(samples)
        for x in (0, 10, 50, 100):
            assert abs(cdf.at(x) + cdf.tail_fraction(x) - 1.0) < 1e-12


_profile_names = st.sampled_from(
    sorted(SPEC95_PROFILES) + sorted(SMOKE_PROFILES)
)


def _profile(name):
    return SPEC95_PROFILES.get(name) or SMOKE_PROFILES[name]


class TestGeneratorDeterminism:
    """The oracle's foundation: identical (profile, seed, thread) streams."""

    @given(
        _profile_names,
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=30, deadline=None)
    def test_same_inputs_same_stream(self, name, seed, thread, count):
        profile = _profile(name)
        a = SyntheticTraceGenerator(profile, seed=seed, thread=thread)
        b = SyntheticTraceGenerator(profile, seed=seed, thread=thread)
        for _ in range(count):
            assert a.next_op() == b.next_op()
        assert a.emitted == b.emitted == count

    @given(
        _profile_names,
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_fast_forward_resumes_stream(self, name, seed, skip, count):
        """A fresh generator fast-forwarded ``emitted`` ops continues the
        original stream — exactly how the golden retire model attaches
        after functional warmup."""
        profile = _profile(name)
        original = SyntheticTraceGenerator(profile, seed=seed, thread=0)
        for _ in range(skip):
            original.next_op()
        reference = SyntheticTraceGenerator(profile, seed=seed, thread=0)
        for _ in range(original.emitted):
            reference.next_op()
        for _ in range(count):
            assert original.next_op() == reference.next_op()

    @given(
        _profile_names,
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_distinct_threads_distinct_pcs(self, name, seed, count):
        """Per-thread address spaces never collide (SMT correctness)."""
        profile = _profile(name)
        a = SyntheticTraceGenerator(profile, seed=seed, thread=0)
        b = SyntheticTraceGenerator(profile, seed=seed, thread=1)
        pcs_a = {a.next_op().pc for _ in range(count)}
        pcs_b = {b.next_op().pc for _ in range(count)}
        assert not (pcs_a & pcs_b)


class TestForwardingBufferProperties:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=250),
    )
    @settings(max_examples=60, deadline=None)
    def test_holds_exactly_inside_window(self, depth, avail, cycle):
        """A value is forwardable iff avail <= cycle <= avail + depth."""
        regfile = PhysRegFile(4)
        fb = ForwardingBuffer(regfile, depth=depth)
        regfile.avail[1] = avail
        expected = avail <= cycle <= avail + depth
        assert fb.holds(1, cycle) == expected
        assert not fb.holds(2, cycle)  # never-produced register

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_writeback_follows_age_out(self, depth, avail):
        """The RF write lands exactly when the value ages out."""
        regfile = PhysRegFile(2)
        fb = ForwardingBuffer(regfile, depth=depth)
        wb = fb.writeback_time(avail)
        assert wb == avail + depth
        regfile.avail[0] = avail
        assert fb.holds(0, wb)          # last forwardable cycle
        assert not fb.holds(0, wb + 1)  # aged out


def _iq_inst(cluster, src_pregs):
    inst = DynInst(op=MicroOp(pc=0x1000, opclass=OpClass.INT_ALU), thread=0)
    inst.cluster = cluster
    inst.src_pregs = list(src_pregs)
    return inst


class TestIssueQueueProperties:
    """Wakeup/select invariants of the clustered IQ."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),     # cluster
                st.lists(st.integers(min_value=0, max_value=15),
                         max_size=2),                      # sources
            ),
            min_size=1,
            max_size=40,
        ),
        st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
            min_size=16, max_size=16,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_select_is_sound_per_cluster_oldest_first(
        self, specs, spec_avail
    ):
        config = CoreConfig.base()
        regfile = PhysRegFile(config.num_pregs)
        for preg, avail in enumerate(spec_avail):
            regfile.spec_avail[preg] = avail
        iq = IssueQueue(config, regfile)
        insts = [_iq_inst(cluster, srcs) for cluster, srcs in specs]
        for inst in insts:
            iq.insert(inst, cycle=0)
        inserted = len(insts)
        issued_total = 0
        for cycle in range(0, 40):
            ready_before = {
                inst.uid
                for inst in insts
                if inst.issue_cycle < 0 and iq._ready(inst, cycle)
            }
            issued = iq.select(cycle)
            issued_total += len(issued)
            # at most one per cluster, every pick was ready
            clusters = [inst.cluster for inst in issued]
            assert len(clusters) == len(set(clusters))
            horizon = cycle + config.iq_ex
            for inst in issued:
                assert inst.uid in ready_before
                for preg in inst.src_pregs:
                    avail = regfile.spec_avail[preg]
                    assert avail is not None and avail <= horizon
                # oldest-first within the cluster
                for other in insts:
                    if (
                        other.cluster == inst.cluster
                        and other.uid in ready_before
                        and other.uid < inst.uid
                    ):
                        assert other in issued
            # entries are retained until confirmed: count never drops
            assert iq.count == inserted
            assert iq.unissued_count() + iq.issued_waiting == inserted
        # spec_avail never retracted here, so everything with known
        # sources eventually issues
        for inst in insts:
            if all(
                spec_avail[preg] is not None for preg in inst.src_pregs
            ):
                assert inst.issue_cycle >= 0
        assert issued_total == sum(1 for i in insts if i.issue_cycle >= 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=7),
                 min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_port_limit_bounds_issue_width(self, clusters, ports):
        """Base-machine issue never reads more RF ports than exist."""
        config = CoreConfig.base(rf_read_ports=ports)
        regfile = PhysRegFile(config.num_pregs)
        regfile.spec_avail[0] = 0
        regfile.spec_avail[1] = 0
        iq = IssueQueue(config, regfile)
        for cluster in clusters:
            iq.insert(_iq_inst(cluster, [0, 1]), cycle=0)
        issued = iq.select(0)
        assert sum(len(inst.src_pregs) for inst in issued) <= ports

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),     # cluster
                st.lists(st.integers(min_value=0, max_value=15),
                         max_size=2),                      # sources
            ),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from(["oldest_first", "operand_share", "banked"]),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_port_demand_bounded_under_any_arbitration(
        self, specs, arbitration, ports
    ):
        """No arbitration scheme ever over-subscribes the read ports.

        The per-cycle bound each scheme guarantees: oldest-first charges
        every operand read, operand sharing charges each *distinct* preg
        once (same-cycle consumers share a broadcast), banking bounds
        each bank's reads by its slice of the ports.
        """
        from repro.core.config import PortConfig

        banks = 2
        config = CoreConfig.base(
            rf_read_ports=ports,
            ports=PortConfig(arbitration=arbitration, banks=banks),
        )
        regfile = PhysRegFile(config.num_pregs)
        for preg in range(16):
            regfile.spec_avail[preg] = 0   # readiness never the limiter
        iq = IssueQueue(config, regfile)
        for cluster, srcs in specs:
            iq.insert(_iq_inst(cluster, srcs), cycle=0)
        for cycle in range(8):
            issued = iq.select(cycle)
            reads = [p for inst in issued for p in inst.src_pregs]
            if arbitration == "operand_share":
                assert len(set(reads)) <= ports
            elif arbitration == "banked":
                for bank in range(banks):
                    demand = sum(1 for p in reads if p % banks == bank)
                    assert demand <= ports // banks
            else:
                assert len(reads) <= ports
