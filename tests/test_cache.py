"""Unit tests for the cache model."""

import pytest

from repro.memory import Cache, CacheConfig


def small_cache(**overrides) -> Cache:
    params = dict(
        name="test", size_bytes=1024, line_bytes=64, assoc=2, hit_latency=2,
    )
    params.update(overrides)
    return Cache(CacheConfig(**params))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(name="c", size_bytes=64 * 1024, line_bytes=64, assoc=2)
        assert config.num_sets == 512

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=192, line_bytes=64, assoc=1)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=1000, line_bytes=64, assoc=2)

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(name="c", size_bytes=1024, line_bytes=64, assoc=2,
                        hit_latency=0)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1004)
        assert cache.access(0x103F)

    def test_adjacent_lines_are_distinct(self):
        cache = small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1040)

    def test_lru_eviction_within_set(self):
        cache = small_cache()  # 8 sets, 2 ways
        set_stride = 8 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # same set index 0
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_does_not_mutate(self):
        cache = small_cache()
        cache.access(0x0)
        hits_before = cache.stats.hits
        cache.probe(0x0)
        assert cache.stats.hits == hits_before

    def test_occupancy_bounded_by_capacity(self):
        cache = small_cache()
        for i in range(100):
            cache.access(i * 64)
        assert cache.occupancy <= 16  # 1024/64 lines

    def test_invalidate_all(self):
        cache = small_cache()
        cache.access(0x0)
        cache.invalidate_all()
        assert not cache.probe(0x0)
        assert cache.occupancy == 0

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_miss_rate_idle_is_zero(self):
        assert small_cache().stats.miss_rate == 0.0


class TestBankConflicts:
    def test_same_bank_same_cycle_conflicts(self):
        cache = small_cache(banks=4)
        addr_a = 0 * 64
        addr_b = 4 * 64  # same bank (line-interleaved, 4 banks)
        assert not cache.had_bank_conflict(addr_a, cycle=10)
        cache.access(addr_a, cycle=10)
        assert cache.had_bank_conflict(addr_b, cycle=10)
        cache.access(addr_b, cycle=10)
        assert cache.stats.bank_conflicts == 1

    def test_different_banks_no_conflict(self):
        cache = small_cache(banks=4)
        cache.access(0 * 64, cycle=10)
        assert not cache.had_bank_conflict(1 * 64, cycle=10)

    def test_same_bank_different_cycles_no_conflict(self):
        cache = small_cache(banks=4)
        cache.access(0, cycle=10)
        assert not cache.had_bank_conflict(4 * 64, cycle=11)

    def test_single_bank_cache_never_reports_conflicts(self):
        cache = small_cache(banks=1)
        cache.access(0, cycle=5)
        assert not cache.had_bank_conflict(64, cycle=5)
