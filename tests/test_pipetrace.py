"""Tests for the pipetrace tooling and the next-line predictor."""

import pytest

from repro.analysis.pipetrace import collect_trace, render_pipetrace
from repro.branch.line_predictor import LinePredictor, LinePredictorConfig
from repro.core import CoreConfig


class TestCollectTrace:
    @pytest.fixture(scope="class")
    def rows(self):
        return collect_trace(
            "m88ksim", instructions=20, skip=400, warmup=15_000
        )

    def test_row_count(self, rows):
        assert len(rows) == 20

    def test_stage_ordering(self, rows):
        for row in rows:
            assert row.fetch < row.rename < row.insert
            assert row.insert <= row.issue
            assert row.issue < row.exec_start
            assert row.exec_start <= row.complete
            assert row.complete <= row.retire
            assert row.latency == row.retire - row.fetch

    def test_iq_ex_traversal_length(self, rows):
        config = CoreConfig.base()
        for row in rows:
            assert row.exec_start - row.issue == config.iq_ex

    def test_render_contains_legend_and_rows(self, rows):
        text = render_pipetrace(rows)
        assert "legend" in text
        assert f"#{rows[0].uid}" in text
        for char in "FRQIXT":
            assert char in text

    def test_render_empty(self):
        assert render_pipetrace([]) == "(empty trace)"

    def test_dra_config_traces(self):
        rows = collect_trace(
            "m88ksim", CoreConfig.with_dra(), instructions=8, skip=300,
            warmup=10_000,
        )
        assert len(rows) == 8


class TestLinePredictor:
    def test_learns_stable_transition(self):
        lp = LinePredictor(LinePredictorConfig(entries=64, line_bytes=32))
        assert not lp.observe(0x100, 0x900)   # cold: mispredict, train
        assert lp.observe(0x100, 0x900)       # learned
        assert lp.observe(0x104, 0x910)       # same line, same target line

    def test_retrains_on_change(self):
        lp = LinePredictor(LinePredictorConfig(entries=64))
        lp.observe(0x100, 0x900)
        assert not lp.observe(0x100, 0x2000)
        assert lp.observe(0x100, 0x2000)

    def test_mispredict_rate(self):
        lp = LinePredictor(LinePredictorConfig(entries=64))
        lp.observe(0x100, 0x900)
        lp.observe(0x100, 0x900)
        assert lp.mispredict_rate == pytest.approx(0.5)
        assert LinePredictor().mispredict_rate == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinePredictorConfig(entries=100)
        with pytest.raises(ValueError):
            LinePredictorConfig(line_bytes=33)
        with pytest.raises(ValueError):
            LinePredictorConfig(bubble=-1)

    def test_disabled_line_predictor_is_faster_or_equal(self):
        from repro.core.pipeline import Simulator
        from repro.workloads import SPEC95_PROFILES

        with_lp = Simulator(CoreConfig.base(), [SPEC95_PROFILES["go"]], seed=0)
        with_lp.functional_warmup(15_000)
        with_lp.run(1500)
        without = Simulator(
            CoreConfig.base().replace(line_predictor=None),
            [SPEC95_PROFILES["go"]], seed=0,
        )
        without.functional_warmup(15_000)
        without.run(1500)
        assert without.stats.ipc >= with_lp.stats.ipc * 0.98
