"""Unit tests for the micro-architectural loop framework (§1)."""

import pytest

from repro.core import CoreConfig
from repro.loops import (
    Loop,
    LoopCost,
    LoopKind,
    alpha_21264_loops,
    loops_for_config,
)


class TestLoopArithmetic:
    def test_loop_delay_is_length_plus_feedback(self):
        loop = Loop("x", LoopKind.DATA, "issue", "exec", length=5, feedback_delay=3)
        assert loop.loop_delay == 8

    def test_tight_versus_loose(self):
        tight = Loop("t", LoopKind.DATA, "ex", "ex", length=0, feedback_delay=1)
        loose = Loop("l", LoopKind.DATA, "a", "b", length=1, feedback_delay=1)
        assert tight.is_tight and not tight.is_loose
        assert loose.is_loose and not loose.is_tight

    def test_min_impact_includes_recovery_time(self):
        loop = Loop("x", LoopKind.DATA, "issue", "exec",
                    length=2, feedback_delay=1, recovery_time=4)
        assert loop.min_misspeculation_impact == 7

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Loop("x", LoopKind.DATA, "a", "b", length=-1, feedback_delay=1)
        with pytest.raises(ValueError):
            Loop("x", LoopKind.DATA, "a", "b", length=1, feedback_delay=-1)


class TestAlpha21264Examples:
    """The worked examples the paper quotes in Section 1."""

    def test_branch_loop_minimum_impact_is_seven_cycles(self):
        loops = {l.name: l for l in alpha_21264_loops()}
        branch = loops["21264_branch_resolution"]
        assert branch.length == 6
        assert branch.feedback_delay == 1
        assert branch.min_misspeculation_impact == 7

    def test_next_line_and_forwarding_are_tight(self):
        loops = {l.name: l for l in alpha_21264_loops()}
        assert loops["21264_next_line_prediction"].is_tight
        assert loops["21264_alu_forwarding"].is_tight

    def test_reorder_trap_recovers_at_fetch(self):
        loops = {l.name: l for l in alpha_21264_loops()}
        trap = loops["21264_load_store_reorder_trap"]
        assert trap.recovery_time > 0


class TestConfigInventory:
    def test_base_load_loop_delay_is_eight(self):
        loops = {l.name: l for l in loops_for_config(CoreConfig.base())}
        assert loops["load_resolution"].loop_delay == 8

    def test_branch_loop_spans_decode_to_execute(self):
        config = CoreConfig.base()
        loops = {l.name: l for l in loops_for_config(config)}
        assert loops["branch_resolution"].length == (
            config.fetch_depth + config.dec_iq + config.iq_ex
        )

    def test_operand_loop_only_with_dra(self):
        base_names = {l.name for l in loops_for_config(CoreConfig.base())}
        dra_names = {l.name for l in loops_for_config(CoreConfig.with_dra())}
        assert "operand_resolution" not in base_names
        assert "operand_resolution" in dra_names

    def test_dra_shrinks_load_loop(self):
        base = {l.name: l for l in loops_for_config(CoreConfig.base(5))}
        dra = {l.name: l for l in loops_for_config(CoreConfig.with_dra(5))}
        assert dra["load_resolution"].loop_delay < base["load_resolution"].loop_delay


class TestLoopCost:
    def test_event_count_is_occurrences_times_rate(self):
        loop = Loop("x", LoopKind.DATA, "a", "b", length=5, feedback_delay=3)
        cost = LoopCost(loop=loop, occurrences=1000, misspeculations=50)
        assert cost.misspeculation_rate == pytest.approx(0.05)
        assert cost.events == 50
        assert cost.min_cycles_lost == 50 * 8

    def test_idle_loop_rate_is_zero(self):
        loop = Loop("x", LoopKind.DATA, "a", "b", length=1, feedback_delay=1)
        assert LoopCost(loop=loop).misspeculation_rate == 0.0
