"""Tests for the named machine presets."""

import pytest

from repro.loops import loops_for_config
from repro.presets import MACHINE_PRESETS, preset


class TestPresets:
    def test_known_presets_build(self):
        for name in MACHINE_PRESETS:
            config = preset(name)
            assert config.iq_entries > 0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("itanium")

    def test_alpha_branch_loop_matches_paper_example(self):
        """§1: the 21264's branch loop minimum impact is 7 cycles."""
        config = preset("alpha21264")
        loops = {l.name: l for l in loops_for_config(config)}
        assert loops["branch_resolution"].min_misspeculation_impact == 7

    def test_pentium4_branch_loop_is_much_longer(self):
        """The paper's motivation: ~20-cycle branch resolution."""
        config = preset("pentium4")
        loops = {l.name: l for l in loops_for_config(config)}
        assert loops["branch_resolution"].min_misspeculation_impact >= 20

    def test_base_preset_is_the_papers_machine(self):
        config = preset("base")
        assert config.label == "Base:5_5"
        assert config.load_loop_delay == 8

    def test_presets_are_orderable_by_pipe_depth(self):
        depths = {
            name: preset(name).min_int_pipeline for name in MACHINE_PRESETS
        }
        assert depths["alpha21264"] < depths["base"] < depths["pentium4"]

    def test_alpha_preset_runs(self):
        from repro import simulate

        result = simulate("m88ksim", preset("alpha21264"),
                          instructions=600, warmup=5_000, detailed_warmup=100)
        assert result.ipc > 0.3
