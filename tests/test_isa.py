"""Unit tests for the micro-op ISA model."""

import pytest

from repro.isa import (
    DEFAULT_LATENCIES,
    ArchRegs,
    DynInst,
    MicroOp,
    NUM_ARCH_REGS,
    OpClass,
    ZERO_REG,
)


class TestOpClass:
    def test_memory_classes(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.INT_ALU.is_memory

    def test_control_classes(self):
        for opclass in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN):
            assert opclass.is_control
        assert not OpClass.LOAD.is_control

    def test_only_conditional_branch_needs_direction_prediction(self):
        assert OpClass.BRANCH.is_conditional
        assert not OpClass.JUMP.is_conditional
        assert not OpClass.RETURN.is_conditional

    def test_register_writers(self):
        assert OpClass.INT_ALU.writes_register
        assert OpClass.LOAD.writes_register
        assert OpClass.CALL.writes_register  # link register
        for opclass in (OpClass.STORE, OpClass.BRANCH, OpClass.JUMP,
                        OpClass.RETURN, OpClass.NOP, OpClass.MEM_BARRIER):
            assert not opclass.writes_register

    def test_every_class_has_a_latency(self):
        for opclass in OpClass:
            assert DEFAULT_LATENCIES[opclass] >= 1

    def test_int_alu_is_single_cycle(self):
        # required for the tight ALU forwarding loop of Figure 2
        assert DEFAULT_LATENCIES[OpClass.INT_ALU] == 1


class TestArchRegs:
    def test_layout(self):
        assert ArchRegs.TOTAL == NUM_ARCH_REGS == 64
        assert ArchRegs.is_int(0) and ArchRegs.is_int(31)
        assert ArchRegs.is_fp(32) and ArchRegs.is_fp(63)
        assert not ArchRegs.is_fp(31)
        assert not ArchRegs.is_valid(64)
        assert not ArchRegs.is_valid(-1)

    def test_reg_constructors(self):
        assert ArchRegs.int_reg(5) == 5
        assert ArchRegs.fp_reg(0) == 32
        with pytest.raises(ValueError):
            ArchRegs.int_reg(32)
        with pytest.raises(ValueError):
            ArchRegs.fp_reg(-1)


class TestMicroOp:
    def test_basic_alu(self):
        op = MicroOp(pc=0x1000, opclass=OpClass.INT_ALU, srcs=(1, 2), dst=3)
        assert op.exec_latency == 1
        assert op.real_srcs == (1, 2)

    def test_zero_reg_sources_are_not_dependences(self):
        op = MicroOp(pc=0x1000, opclass=OpClass.INT_ALU, srcs=(ZERO_REG, 2), dst=3)
        assert op.real_srcs == (2,)

    def test_too_many_sources_rejected(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0, opclass=OpClass.INT_ALU, srcs=(1, 2, 3), dst=4)

    def test_store_cannot_have_destination(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0, opclass=OpClass.STORE, srcs=(1, 2), dst=3, address=64)

    def test_memory_op_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(pc=0, opclass=OpClass.LOAD, srcs=(1,), dst=2)

    def test_frozen(self):
        op = MicroOp(pc=0, opclass=OpClass.NOP)
        with pytest.raises(AttributeError):
            op.pc = 4


class TestDynInst:
    def _inst(self, **kwargs):
        op = MicroOp(pc=0x20, opclass=OpClass.INT_ALU, srcs=(1,), dst=2)
        return DynInst(op=op, thread=0, **kwargs)

    def test_uids_are_unique_and_monotone(self):
        a, b = self._inst(), self._inst()
        assert a.uid != b.uid
        assert b.uid > a.uid

    def test_equality_is_identity_by_uid(self):
        a, b = self._inst(), self._inst()
        assert a == a
        assert a != b
        assert len({a, b, a}) == 2

    def test_load_detection(self):
        load = DynInst(
            op=MicroOp(pc=0, opclass=OpClass.LOAD, srcs=(1,), dst=2, address=64),
            thread=0,
        )
        assert load.is_load
        assert not self._inst().is_load

    def test_describe_mentions_uid_and_thread(self):
        inst = self._inst()
        text = inst.describe()
        assert f"#{inst.uid}" in text
        assert "t0" in text

    def test_initial_timestamps_unset(self):
        inst = self._inst()
        assert inst.fetch_cycle == -1
        assert inst.issue_cycle == -1
        assert inst.issue_count == 0
        assert not inst.executed
        assert not inst.squashed
