#!/usr/bin/env python3
"""Print the micro-architectural loop framework tables (paper §1).

Shows the loop inventory — length, feedback delay, loop delay,
tight/loose classification, minimum mis-speculation impact — for the
base machine, a stretched machine, the DRA machine, and the paper's
Alpha 21264 worked examples.

Usage::

    python examples/loop_inventory.py
"""

from repro import CoreConfig
from repro.experiments import render_loop_inventory


def main() -> None:
    print(render_loop_inventory(CoreConfig.base()))
    print()
    print(render_loop_inventory(CoreConfig.base(rf_read_latency=7)))
    print()
    print(render_loop_inventory(CoreConfig.with_dra(rf_read_latency=7)))


if __name__ == "__main__":
    main()
