#!/usr/bin/env python3
"""Scenario: searching the DRA design space instead of enumerating it.

``examples/dra_design_space.py`` sweeps every (rf latency, CRC size)
point at full fidelity.  This walkthrough runs the same space through
the exploration engine (:mod:`repro.explore`): the analytical loop
model prunes candidates the §1 arithmetic already condemns, successive
halving spends detailed-simulation instructions only on designs that
keep earning them, and the result is an IPC-vs-hardware-cost Pareto
frontier plus an append-only ledger entry that future runs diff
against.

Usage::

    python examples/dra_frontier.py [workload ...]

Pass ``--smoke`` as the first argument for the tiny CI-sized space.
"""

import sys

from repro.explore import (
    DEFAULT_WORKLOADS,
    HalvingSettings,
    dra_space,
    run_exploration,
    smoke_space,
)


def main() -> None:
    argv = sys.argv[1:]
    if argv and argv[0] == "--smoke":
        space, argv = smoke_space(), argv[1:]
        halving = HalvingSettings.quick()
    else:
        space = dra_space()
        halving = HalvingSettings(
            rungs=3, base_instructions=1_000, growth=3,
        )
    workloads = tuple(argv) or DEFAULT_WORKLOADS

    result = run_exploration(
        space,
        workloads=workloads,
        halving=halving,
        store_dir="results/explore",
        bench_out="results/explore/BENCH_explore.json",
    )
    print(result.render())
    print()
    print(
        f"The search spent {result.spent_instructions:,} detailed "
        f"instructions where the exhaustive grid would spend "
        f"{result.exhaustive_instructions:,} "
        f"({result.savings_fraction:.0%} saved), and the frontier "
        f"still carries every paper comparison: "
        f"{'ordering holds' if result.ordering_ok() else 'ORDERING BROKEN'}."
    )


if __name__ == "__main__":
    main()
