#!/usr/bin/env python3
"""Scenario: which loose loop should I attack for this workload?

Runs each workload on the base machine and applies the paper's §1
first-order cost model (events x minimum impact per loop) to attribute
its losses.  This mechanises the analysis of §3.1 — compress is
branch-loop bound, swim load-loop bound, turb3d shows a DTLB-trap
term — and then demonstrates the DRA's effect on the ledger.

Usage::

    python examples/loop_attribution.py [workload ...]
"""

import sys

from repro import CoreConfig, build_ledger, simulate

DEFAULT_WORKLOADS = ("compress", "swim", "turb3d", "apsi")
INSTRUCTIONS = 8_000


def main() -> None:
    workloads = tuple(sys.argv[1:]) or DEFAULT_WORKLOADS

    for workload in workloads:
        result = simulate(workload, CoreConfig.base(rf_read_latency=5),
                          instructions=INSTRUCTIONS)
        ledger = build_ledger(result.config, result.stats)
        print(f"=== {workload} on {result.config.label} "
              f"(IPC {result.ipc:.2f})")
        print(ledger.render())
        print()

    # the DRA moves the register read out of IQ->EX: the load loop's
    # min impact shrinks, and a (cheap) operand loop appears
    workload = workloads[0]
    dra = simulate(workload, CoreConfig.with_dra(rf_read_latency=5),
                   instructions=INSTRUCTIONS)
    print(f"=== {workload} again, with the DRA (IPC {dra.ipc:.2f})")
    print(build_ledger(dra.config, dra.stats).render())


if __name__ == "__main__":
    main()
