#!/usr/bin/env python3
"""Scenario: evaluating the DRA across the register-file design space.

As wire delays push register-file reads from 3 toward 7 cycles, the
base machine's issue-to-execute path stretches and the load resolution
loop gets looser.  This study reproduces Figures 8 and 9 on a subset of
workloads and then walks the CRC design space (the §5.1 discussion).

Usage::

    python examples/dra_design_space.py [workload ...]
"""

import sys

from repro.experiments import (
    ExperimentSettings,
    run_crc_ablation,
    run_figure8,
    run_figure9,
)

DEFAULT_WORKLOADS = ("compress", "swim", "turb3d", "apsi")


def main() -> None:
    workloads = tuple(sys.argv[1:]) or DEFAULT_WORKLOADS
    settings = ExperimentSettings(instructions=8_000)

    fig8 = run_figure8(settings, workloads=workloads)
    print(fig8.render())
    print()
    for rf in fig8.rf_latencies:
        print(f"rf={rf} cycles: best DRA gain {fig8.best_gain(rf):+.1%}")
    if "apsi" in workloads:
        print(
            f"apsi at rf=7: {fig8.speedup('apsi', 7) - 1:+.1%} "
            f"(operand miss rate {fig8.miss_rates['apsi'][-1]:.2%} — the "
            f"operand resolution loop fighting back)"
        )
    print()

    fig9 = run_figure9(settings, workloads=workloads)
    print(fig9.render())
    print()

    crc = run_crc_ablation(settings, workloads=workloads[:2])
    print(crc.render())
    print()
    print("operand miss rates by CRC variant:")
    for variant in crc.variants:
        rates = ", ".join(
            f"{w}={crc.aux[variant][w]:.2%}" for w in workloads[:2]
        )
        print(f"  {variant:>10s}: {rates}")


if __name__ == "__main__":
    main()
