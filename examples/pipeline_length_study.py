#!/usr/bin/env python3
"""Scenario: an architect exploring pipeline depth and balance.

Reproduces the paper's core argument on a subset of workloads:

1. the loop inventory of the machine (which loops get longer);
2. Figure 4 — raw pipeline-length sensitivity;
3. Figure 5 — at a fixed total length, where the stages sit matters,
   because only the IQ->EX segment is traversed by the load loop.

Usage::

    python examples/pipeline_length_study.py [workload ...]
"""

import sys

from repro.experiments import (
    ExperimentSettings,
    render_loop_inventory,
    run_figure4,
    run_figure5,
)

DEFAULT_WORKLOADS = ("compress", "m88ksim", "swim", "mgrid")


def main() -> None:
    workloads = tuple(sys.argv[1:]) or DEFAULT_WORKLOADS
    settings = ExperimentSettings(instructions=8_000)

    print(render_loop_inventory())
    print()

    fig4 = run_figure4(settings, workloads=workloads)
    print(fig4.render())
    print()
    worst = max(workloads, key=fig4.loss_at_longest)
    flattest = min(workloads, key=fig4.loss_at_longest)
    print(f"most pipeline-sensitive: {worst} "
          f"(-{fig4.loss_at_longest(worst):.1%} at 18 cycles)")
    print(f"least pipeline-sensitive: {flattest} "
          f"(-{fig4.loss_at_longest(flattest):.1%} at 18 cycles)")
    print()

    fig5 = run_figure5(settings, workloads=workloads)
    print(fig5.render())
    print()
    for workload in workloads:
        print(f"{workload:>10s}: moving 6 cycles out of IQ->EX buys "
              f"{fig5.gain_at_best(workload):+.1%}")


if __name__ == "__main__":
    main()
