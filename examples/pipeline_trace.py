#!/usr/bin/env python3
"""Scenario: watching loose loops in a pipeview-style trace.

Prints per-instruction stage timelines for the base machine and the
DRA machine.  Look for loads followed by dependents with
``(issues=2)`` — those are load-resolution-loop mis-speculations
replaying from the IQ — and for the shorter I→X distance (IQ→EX) under
the DRA.

Usage::

    python examples/pipeline_trace.py [workload] [count]
"""

import sys

from repro import CoreConfig
from repro.analysis import collect_trace, render_pipetrace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    for config in (CoreConfig.base(rf_read_latency=5),
                   CoreConfig.with_dra(rf_read_latency=5)):
        print(f"=== {config.label} on {workload} "
              f"(IQ->EX = {config.iq_ex} cycles)")
        rows = collect_trace(workload, config, instructions=count)
        print(render_pipetrace(rows))
        replays = sum(1 for r in rows if r.issue_count > 1)
        mean_latency = sum(r.latency for r in rows) / len(rows)
        print(f"\nreplayed instructions: {replays}/{len(rows)}, "
              f"mean fetch-to-retire latency {mean_latency:.1f} cycles\n")


if __name__ == "__main__":
    main()
