#!/usr/bin/env python3
"""Quickstart: simulate one workload on the base machine and the DRA.

Runs the paper's archetypal load-resolution-loop workload (swim) on the
base 5_5 pipeline and on the DRA 5_3 pipeline (register-file read moved
out of the issue-to-execute path), then prints the headline comparison.

Usage::

    python examples/quickstart.py [workload]
"""

import sys

from repro import CoreConfig, OperandSource, simulate


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = 10_000

    print(f"workload: {workload} ({instructions} measured instructions)\n")

    base = simulate(workload, CoreConfig.base(rf_read_latency=3),
                    instructions=instructions)
    dra = simulate(workload, CoreConfig.with_dra(rf_read_latency=3),
                   instructions=instructions)

    for result in (base, dra):
        stats = result.stats
        print(f"--- {result.config.label}")
        print(f"  IPC                  {result.ipc:6.2f}")
        print(f"  cycles               {stats.measured_cycles:6d}")
        print(f"  branch mispredicts   {stats.branch_mispredict_rate:6.1%}")
        print(f"  L1D load miss rate   {stats.load_l1_miss_rate:6.1%}")
        print(f"  load mis-speculation {stats.load_misspeculations:6d}")
        print(f"  reissues (useless)   {stats.total_reissues:6d}")
        print(f"  avg IQ occupancy     {stats.avg_iq_occupancy:6.1f}")
        if result.config.dra is not None:
            fractions = stats.operand_source_fractions()
            print(f"  operands: pre-read   {fractions[OperandSource.PREREAD]:6.1%}")
            print(f"            forwarding {fractions[OperandSource.FORWARD]:6.1%}")
            print(f"            CRC        {fractions[OperandSource.CRC]:6.1%}")
            print(f"            miss       {fractions[OperandSource.MISS]:6.2%}")
        print()

    change = dra.speedup_over(base) - 1.0
    print(f"DRA speedup over base: {change:+.1%}")


if __name__ == "__main__":
    main()
