#!/usr/bin/env python3
"""Scenario: how SMT damps loose-loop losses (§3.1).

The paper observes that multi-threaded runs are hurt less by pipeline
length than their worst component program: when one thread recovers
from a mis-speculation the other keeps doing useful work, and the
availability of a second thread keeps the machine from speculating as
deeply down any one path.

This example runs each SMT pair and its component programs at a short
and a long pipeline, then compares the losses.

Usage::

    python examples/smt_interference.py
"""

from repro import CoreConfig, simulate
from repro.workloads import SMT_PAIRS

INSTRUCTIONS = 8_000
SHORT = CoreConfig.base().with_pipe(3, 3)
LONG = CoreConfig.base().with_pipe(9, 9)


def loss(workload: str) -> float:
    short = simulate(workload, SHORT, instructions=INSTRUCTIONS)
    long_run = simulate(workload, LONG, instructions=INSTRUCTIONS)
    return 1.0 - long_run.ipc / short.ipc


def main() -> None:
    print("performance loss going from a 6- to an 18-cycle DEC->EX region\n")
    for pair, (left, right) in SMT_PAIRS.items():
        pair_loss = loss(pair)
        component_losses = {name: loss(name) for name in (left, right)}
        worst_name = max(component_losses, key=component_losses.get)
        print(f"{pair}:")
        for name, value in component_losses.items():
            print(f"  {name:>10s} alone: -{value:.1%}")
        print(f"  {pair:>10s} (SMT): -{pair_loss:.1%}")
        damped = pair_loss < component_losses[worst_name]
        verdict = "damped below the worst component" if damped else "NOT damped"
        print(f"  -> {verdict}\n")


if __name__ == "__main__":
    main()
