"""Micro-benchmarks of the simulator substrates themselves.

These measure simulator *throughput* (simulated instructions per host
second, structure operations per second), not modelled performance —
useful when optimising the hot loops.
"""

import random

from repro.branch.predictors import TournamentPredictor
from repro.core import CoreConfig
from repro.core.pipeline import Simulator
from repro.memory import Cache, CacheConfig
from repro.workloads import SPEC95_PROFILES, SyntheticTraceGenerator


def test_detailed_simulation_throughput(benchmark):
    def run():
        sim = Simulator(CoreConfig.base(), [SPEC95_PROFILES["m88ksim"]], seed=0)
        sim.functional_warmup(10_000)
        sim.run(3_000)
        return sim.stats.retired

    retired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert retired >= 3_000


def test_functional_warmup_throughput(benchmark):
    def run():
        sim = Simulator(CoreConfig.base(), [SPEC95_PROFILES["gcc"]], seed=0)
        sim.functional_warmup(50_000)
        return sim

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_trace_generation_throughput(benchmark):
    def run():
        gen = SyntheticTraceGenerator(SPEC95_PROFILES["gcc"], seed=0)
        for _ in range(20_000):
            gen.next_op()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_cache_access_throughput(benchmark):
    cache = Cache(CacheConfig(name="bench", size_bytes=64 * 1024,
                              line_bytes=64, assoc=2, hit_latency=3))
    rng = random.Random(0)
    addresses = [rng.randrange(1 << 20) & ~63 for _ in range(20_000)]

    def run():
        for addr in addresses:
            cache.access(addr)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_predictor_throughput(benchmark):
    predictor = TournamentPredictor()
    rng = random.Random(0)
    branches = [(rng.randrange(256) * 4, rng.random() < 0.7)
                for _ in range(20_000)]

    def run():
        for pc, taken in branches:
            predictor.predict(pc)
            predictor.update(pc, taken)

    benchmark.pedantic(run, rounds=3, iterations=1)
