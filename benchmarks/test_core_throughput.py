"""Micro-benchmarks of the simulator substrates themselves.

These measure simulator *throughput* (simulated instructions per host
second, structure operations per second), not modelled performance —
useful when optimising the hot loops.

``test_kernel_backend_throughput_matrix`` is the committed headline:
it times every shipped kernel backend on the same run, checks the
exact backends agree bit-for-bit and the sampled estimate lands inside
its own declared error bounds, writes ``BENCH_kernel.json`` at the
repo root, and fails if a backend regresses below its committed
speedup floor.
"""

import json
import os
import random
import time

from repro.branch.predictors import TournamentPredictor
from repro.core import CoreConfig
from repro.core.pipeline import Simulator
from repro.core.simulator import simulate
from repro.memory import Cache, CacheConfig
from repro.workloads import SPEC95_PROFILES, SyntheticTraceGenerator


def test_detailed_simulation_throughput(benchmark):
    def run():
        sim = Simulator(CoreConfig.base(), [SPEC95_PROFILES["m88ksim"]], seed=0)
        sim.functional_warmup(10_000)
        sim.run(3_000)
        return sim.stats.retired

    retired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert retired >= 3_000


def test_functional_warmup_throughput(benchmark):
    def run():
        sim = Simulator(CoreConfig.base(), [SPEC95_PROFILES["gcc"]], seed=0)
        sim.functional_warmup(50_000)
        return sim

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_trace_generation_throughput(benchmark):
    def run():
        gen = SyntheticTraceGenerator(SPEC95_PROFILES["gcc"], seed=0)
        for _ in range(20_000):
            gen.next_op()

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_cache_access_throughput(benchmark):
    cache = Cache(CacheConfig(name="bench", size_bytes=64 * 1024,
                              line_bytes=64, assoc=2, hit_latency=3))
    rng = random.Random(0)
    addresses = [rng.randrange(1 << 20) & ~63 for _ in range(20_000)]

    def run():
        for addr in addresses:
            cache.access(addr)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_predictor_throughput(benchmark):
    predictor = TournamentPredictor()
    rng = random.Random(0)
    branches = [(rng.randrange(256) * 4, rng.random() < 0.7)
                for _ in range(20_000)]

    def run():
        for pc, taken in branches:
            predictor.predict(pc)
            predictor.update(pc, taken)

    benchmark.pedantic(run, rounds=3, iterations=1)


# ---------------------------------------------------------------------------
# Kernel backend matrix — the committed throughput record
# ---------------------------------------------------------------------------

#: One shared run geometry for the whole matrix.  Large enough that the
#: per-run warmup amortises, sampled mode gets its full window budget,
#: and host-side timing noise stays small against each pass; small
#: enough that the matrix (two timed passes per backend) stays under a
#: minute on CI hardware.
KERNEL_RUN = {
    "workload": "int_test",
    "instructions": 120_000,
    "warmup": 20_000,
    "detailed_warmup": 500,
    "seed": 0,
}

#: Committed speedup floors over the reference backend.  A ratchet,
#: not a target: set below the measured speedup when the backend
#: landed, raised when the backend gets faster, never lowered to make
#: a PR pass.  ``sampled`` reports *effective* throughput (represented
#: instructions per host second); it is the only backend that clears
#: the paper-style 5x bar, and it pays for it with a declared,
#: cross-checked error bound instead of bit-exactness.
SPEEDUP_FLOORS = {
    "optimized": 1.5,
    "sampled": 3.5,
}

BENCH_KERNEL_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_kernel.json"
)


def _timed_simulate(backend):
    """Run the matrix cell once and return (wall_seconds, result)."""
    start = time.perf_counter()
    result = simulate(
        KERNEL_RUN["workload"],
        CoreConfig.base(3),
        instructions=KERNEL_RUN["instructions"],
        warmup=KERNEL_RUN["warmup"],
        detailed_warmup=KERNEL_RUN["detailed_warmup"],
        seed=KERNEL_RUN["seed"],
        backend=backend,
    )
    return time.perf_counter() - start, result


def test_kernel_backend_throughput_matrix():
    rows = {}
    results = {}
    for backend in ("reference", "optimized", "sampled"):
        # best-of-2: one run absorbs cache/branch warmup of the *host*,
        # the better one is the committed number
        walls = []
        for _ in range(2):
            wall, result = _timed_simulate(backend)
            walls.append(wall)
        wall = min(walls)
        results[backend] = result
        rows[backend] = {
            "instructions_per_second": round(
                KERNEL_RUN["instructions"] / wall, 1
            ),
            "ipc": round(result.ipc, 6),
            "wall_seconds": round(wall, 3),
            "exact": result.sampling is None,
        }

    # correctness gates first: speed without agreement is worthless
    assert results["reference"].ipc == results["optimized"].ipc, (
        "optimized backend diverged from reference: "
        f"{results['optimized'].ipc} != {results['reference'].ipc}"
    )
    report = results["sampled"].sampling
    assert report is not None
    assert report.cross_check(results["optimized"].ipc), (
        f"sampled estimate out of bounds: full={results['optimized'].ipc:.4f} "
        f"{report.describe()}"
    )
    rows["sampled"]["sampling"] = {
        "ipc_mean": round(report.ipc_mean, 6),
        "ci95": [round(x, 6) for x in report.ci95],
        "detail_fraction": round(report.detail_fraction, 4),
        "windows": len(report.windows),
    }

    reference_ips = rows["reference"]["instructions_per_second"]
    for backend, floor in SPEEDUP_FLOORS.items():
        speedup = rows[backend]["instructions_per_second"] / reference_ips
        rows[backend]["speedup_over_reference"] = round(speedup, 2)
        assert speedup >= floor, (
            f"{backend} backend regressed below its committed throughput "
            f"floor: measured {speedup:.2f}x, floor {floor}x over reference"
        )

    payload = {
        "run": dict(KERNEL_RUN),
        "backends": rows,
        "speedup_floors": dict(SPEEDUP_FLOORS),
    }

    # The committed file is also the perf-history importer's input
    # (`loopsim perf record --kernel BENCH_kernel.json`); a payload the
    # importer cannot profile must fail here, at the producer.
    from repro.perfhist.profile import kernel_profiles

    profiles = {p.key: p for p in kernel_profiles(payload)}
    assert "kernel:optimized:speedup" in profiles
    assert "kernel:sampled:speedup" in profiles
    assert profiles["kernel:reference:inst_per_s"].detector == "track"

    with open(BENCH_KERNEL_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
