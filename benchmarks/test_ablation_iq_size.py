"""Ablation: issue-queue capacity vs retention pressure (§2.2.2).

Issued instructions hold their IQ entries for a loop delay after issue;
the paper warns that near peak throughput "more than half the entries
in the IQ may be already issued instructions".  Shrinking the queue
makes that retention bind.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_iq_size_ablation

WORKLOADS = ("swim", "compress")


def test_ablation_iq_size(benchmark, settings, results_dir):
    result = run_once(benchmark, run_iq_size_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_iq_size", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # a 32-entry queue clearly throttles an 8-wide machine
        assert result.relative("iq-32", workload) < \
            result.relative("iq-128", workload), workload
        # doubling past 128 buys little (the paper's base is adequate)
        assert result.relative("iq-256", workload) < \
            result.relative("iq-128", workload) + 0.05, workload
        # issued-waiting entries are a real fraction of the queue
        assert result.aux["iq-128"][workload] > 1.0, workload
