"""Ablation: branch predictor choice (the branch loop's rate term).

The §1 cost model: lost cycles = occurrences x mis-speculation rate x
impact.  Pipeline length sets the impact; the predictor sets the rate.
Shape asserted: trained predictors beat static-taken on branchy codes,
and the tournament hybrid is at least as good as its components.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_predictor_ablation

WORKLOADS = ("compress", "go", "m88ksim")


def test_ablation_predictor(benchmark, settings, results_dir):
    result = run_once(benchmark, run_predictor_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_predictor", result.render())
    print()
    print(result.render())

    for workload in ("compress", "go"):
        # per-site predictors clearly beat always-taken on branchy codes
        # (gshare is excluded: with sites interleaved at random, global
        # history carries no information and pure gshare degenerates —
        # which is exactly why the machine uses a tournament)
        for kind in ("bimodal", "local", "tournament"):
            assert (
                result.rows[kind][workload]
                > result.rows["taken"][workload]
            ), (kind, workload)
        # better prediction = lower measured mispredict rate
        assert (
            result.aux["tournament"][workload]
            < result.aux["taken"][workload]
        ), workload

    # the chooser keeps the hybrid close to its best component even
    # when one component (gshare) is degenerate
    for workload in WORKLOADS:
        best_component = max(
            result.rows["bimodal"][workload],
            result.rows["gshare"][workload],
        )
        assert result.rows["tournament"][workload] > best_component - 0.08, \
            workload
        assert result.rows["tournament"][workload] > \
            result.rows["gshare"][workload], workload
