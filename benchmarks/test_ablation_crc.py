"""Ablation: cluster register cache geometry and policy (§5.1).

Paper claims: "a 16 entry CRC is more than adequate"; mechanisms with
"almost perfect knowledge of which values were needed" gave negligible
improvement over simple FIFO.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_crc_ablation

WORKLOADS = ("swim", "apsi")


def test_ablation_crc(benchmark, settings, results_dir):
    result = run_once(benchmark, run_crc_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_crc", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # a too-small CRC raises the operand miss rate
        assert (
            result.aux["fifo-4"][workload]
            >= result.aux["fifo-16"][workload]
        ), workload
        # 16 entries is adequate: doubling buys almost nothing
        assert (
            result.relative("fifo-32", workload)
            < result.relative("fifo-16", workload) + 0.02
        ), workload
        # near-oracle replacement over FIFO is a negligible win
        assert (
            result.relative("oracle-16", workload)
            < result.relative("fifo-16", workload) + 0.02
        ), workload
