"""Regenerates Figure 6: the operand-availability-gap CDF (turb3d).

Paper shape: a long-tailed distribution; the 9-cycle forwarding buffer
covers only part of all instructions while a substantial fraction
(~25 % in the paper) see gaps of 25 cycles or more — the motivation for
register caches with filtered insertion rather than a bigger forwarding
buffer.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_figure6


def test_fig6_operand_gap_cdf(benchmark, settings, results_dir):
    result = run_once(benchmark, run_figure6, settings)
    save_result(results_dir, "fig6", result.render())
    print()
    print(result.render())

    # the CDF is a valid distribution with a long tail
    assert result.cdf.at(0) > 0.2
    assert result.cdf.max > 50

    # the forwarding buffer covers a solid majority but not everything
    assert 0.5 < result.covered_by_forwarding < 0.95

    # the paper's headline: a large fraction of instructions wait 25+
    # cycles between their operands
    assert result.beyond_25_cycles > 0.10

    # a register cache would need far more than the FB window to cover
    # the tail: the 99th percentile is way past the forwarding window
    assert result.cdf.quantile(0.99) > 3 * result.fb_depth
