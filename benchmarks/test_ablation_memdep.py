"""Ablation: memory dependence loop management (paper Figure 2).

The memory dependence loop is in the paper's loop inventory with the
load/store reorder trap as §1's example of recovery at fetch.  Shape
asserted here: store-wait prediction traps less than always-speculating,
beats never-speculating, and approaches perfect disambiguation.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_memdep_ablation

WORKLOADS = ("compress", "swim")


def test_ablation_memdep(benchmark, settings, results_dir):
    result = run_once(benchmark, run_memdep_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_memdep", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # prediction keeps traps at or below the naive policy
        assert (
            result.aux["predict"][workload]
            <= result.aux["naive"][workload]
        ), workload
        # conservative ordering never traps but costs performance
        assert result.aux["conservative"][workload] == 0, workload
        assert (
            result.relative("predict", workload)
            >= result.relative("conservative", workload) - 0.01
        ), workload
        # perfect disambiguation is the (unreachable) upper bound
        assert (
            result.relative("disabled", workload)
            >= result.relative("predict", workload) - 0.02
        ), workload
