"""Ablation: how the load resolution loop is managed (§2.2.2).

Paper claims: speculating with reissue-from-the-IQ performs best;
recovery by re-fetching "performs significantly worse than reissue"
(bad enough that the paper drops it); stalling load dependents
"effectively adds [IQ->EX] cycles to the load-to-use latency".
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_recovery_ablation

WORKLOADS = ("compress", "swim", "hydro2d", "apsi")


def test_ablation_recovery_policy(benchmark, settings, results_dir):
    result = run_once(benchmark, run_recovery_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_recovery", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        reissue = result.relative("reissue", workload)
        refetch = result.relative("refetch", workload)
        stall = result.relative("stall", workload)
        # reissue is the best policy everywhere
        assert reissue >= refetch - 0.01, workload
        assert reissue >= stall - 0.01, workload

    # on the load-loop workloads re-fetch is disastrous
    for workload in ("swim", "hydro2d"):
        assert result.relative("refetch", workload) < 0.9, workload
    # stalling clearly hurts where load-to-use latency is on the
    # critical path; on main-memory-bound codes (hydro2d) the extra
    # IQ->EX cycles hide behind the memory latency, as §3.1 predicts
    assert result.relative("stall", "swim") < 0.98
