"""Ablation: forwarding-buffer depth under the DRA (§4 / Figure 6).

Paper claims: the forwarding buffer is "an integral part" of the
design — timely operands are the single largest operand source — so
shrinking the window shifts traffic onto the CRCs and the operand
resolution loop.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_forwarding_ablation

WORKLOADS = ("swim", "compress")


def test_ablation_forwarding(benchmark, settings, results_dir):
    result = run_once(benchmark, run_forwarding_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_forwarding", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # a deeper window serves more operands from the forwarding buffer
        assert (
            result.aux["fb-15"][workload] > result.aux["fb-3"][workload]
        ), workload
        # a shallow window costs performance
        assert (
            result.relative("fb-3", workload)
            <= result.relative("fb-9", workload) + 0.01
        ), workload
