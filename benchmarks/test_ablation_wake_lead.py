"""Ablation: load-fill wake lead (the mechanism behind Figure 5).

With lead 0 (the paper's semantics) a missed load's dependents reissue
only after the fill and pay a full IQ->EX before executing; larger
leads progressively hide the issue traversal.  If performance rises
with the lead, the IQ->EX segment really is inside the load resolution
loop — the paper's central claim.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_wake_lead_ablation

WORKLOADS = ("swim", "turb3d")


def test_ablation_wake_lead(benchmark, settings, results_dir):
    result = run_once(benchmark, run_wake_lead_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_wake_lead", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # hiding the IQ->EX traversal after a fill recovers performance
        assert (
            result.relative("lead-12", workload)
            > result.relative("lead-0", workload)
        ), workload
