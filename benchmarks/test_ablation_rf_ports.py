"""Ablation: register-file read ports (§2.1).

Paper claim: "The full port capability is not needed in most cases
because either the operands are forwarded from the execution units, or
the number of instructions issued is less than 8, or not all
instructions have 2 input operands" — i.e. moderately reduced ports
cost little bandwidth (the paper keeps full ports for complexity
reasons, not bandwidth ones).
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_rf_ports_ablation

WORKLOADS = ("m88ksim", "swim")


def test_ablation_rf_ports(benchmark, settings, results_dir):
    result = run_once(benchmark, run_rf_ports_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_rf_ports", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # halving the ports costs very little bandwidth (§2.1's point)
        assert result.relative("ports-8", workload) > 0.96, workload
        # but a severely port-starved issue stage does lose performance
        assert (
            result.relative("ports-4", workload)
            <= result.relative("ports-16", workload) + 0.01
        ), workload
