"""Shared machinery for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure of the paper, asserts the
*shape* the paper reports (who wins, roughly by how much, where the
crossovers fall — see DESIGN.md §6), and writes the rendered table to
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from a run.

Set ``REPRO_BENCH_FULL=1`` for the seed-averaged settings used to record
the committed EXPERIMENTS.md numbers.
"""

import os
import pathlib

import pytest

from repro.experiments import ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_settings() -> ExperimentSettings:
    """Benchmark fidelity, overridable via REPRO_BENCH_FULL."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return ExperimentSettings.full()
    return ExperimentSettings(instructions=8_000)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return bench_settings()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered figure for EXPERIMENTS.md."""
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
