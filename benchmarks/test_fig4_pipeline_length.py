"""Regenerates Figure 4: performance vs pipeline length.

Paper shape: every workload loses performance as the decode-to-execute
region grows from 6 to 18 cycles; losses reach ~20-25 % for the branchy
integer codes; the memory-bound codes (hydro2d, mgrid) and the low-ILP
code (apsi) are the flattest; SMT pairs lose less than their worst
component.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_figure4


def test_fig4_pipeline_length(benchmark, settings, results_dir):
    result = run_once(benchmark, run_figure4, settings)
    save_result(results_dir, "fig4", result.render())
    print()
    print(result.render())

    rows = result.rows
    # every workload pays for a longer pipeline
    for workload, values in rows.items():
        assert values[-1] < 1.0, workload
        # and the series is (weakly) downward overall
        assert values[-1] <= values[0]

    # branchy integer codes are the most sensitive
    for branchy in ("compress", "gcc", "go"):
        assert result.loss_at_longest(branchy) > 0.15, branchy

    # m88ksim is the least sensitive integer benchmark
    for other in ("compress", "gcc", "go"):
        assert result.loss_at_longest("m88ksim") < result.loss_at_longest(other)

    # memory-bound and low-ILP codes are the flattest
    for flat in ("hydro2d", "mgrid", "apsi"):
        assert result.loss_at_longest(flat) < 0.20, flat

    # SMT damps the loss below the worst component (paper §3.1)
    assert result.loss_at_longest("go+su2cor") < result.loss_at_longest("go")
    assert result.loss_at_longest("m88ksim+compress") < result.loss_at_longest(
        "compress"
    )
