"""Regenerates Figure 9: operand sources under the 7_3 DRA.

Paper shape: on average more than half of all operands are read from
the forwarding buffer; the remainder is split between register-file
pre-reads and the cluster register caches; operand miss rates are well
under 1 % for every workload except apsi (~1.5 %).
"""

from benchmarks.conftest import run_once, save_result
from repro.analysis.metrics import mean
from repro.core import OperandSource
from repro.experiments import run_figure9


def test_fig9_operand_sources(benchmark, settings, results_dir):
    result = run_once(benchmark, run_figure9, settings)
    save_result(results_dir, "fig9", result.render())
    print()
    print(result.render())

    rows = result.rows
    # fractions partition the reads
    for workload, fractions in rows.items():
        assert abs(sum(fractions.values()) - 1.0) < 1e-9, workload
        assert fractions[OperandSource.REGFILE] == 0.0, workload

    # more than half of operands come from the forwarding buffer
    fwd = [f[OperandSource.FORWARD] for f in rows.values()]
    assert mean(fwd) > 0.5

    # pre-read and the CRCs both carry real traffic
    assert mean([f[OperandSource.PREREAD] for f in rows.values()]) > 0.10
    assert mean([f[OperandSource.CRC] for f in rows.values()]) > 0.03

    # miss rates: well under 1 % everywhere except apsi's ~1.5 %
    for workload, fractions in rows.items():
        if workload in ("apsi", "apsi+swim"):
            continue
        assert fractions[OperandSource.MISS] < 0.01, workload
    assert rows["apsi"][OperandSource.MISS] > 0.01
