"""Regenerates Figure 8: DRA speedup over the base architecture.

Paper shape: the DRA wins for (almost) every workload, with the
achievable gain growing as the register-file read latency grows from 3
to 5 to 7 cycles ("up to 4 %, 9 % and 15 %" in the paper); apsi — and to
a lesser degree apsi+swim — *loses* because its ~1.5 % operand miss
rate on the new operand resolution loop outweighs the shorter pipe, and
the loss deepens with the register-file latency.
"""

from benchmarks.conftest import run_once, save_result
from repro.analysis import geometric_mean
from repro.experiments import run_figure8


def test_fig8_dra_speedup(benchmark, settings, results_dir):
    result = run_once(benchmark, run_figure8, settings)
    save_result(results_dir, "fig8", result.render())
    print()
    print(result.render())

    # the DRA helps overall at every register-file latency
    for rf in result.rf_latencies:
        index = result.rf_latencies.index(rf)
        mean_speedup = geometric_mean(
            [values[index] for w, values in result.rows.items() if w != "apsi"]
        )
        assert mean_speedup > 1.0, f"rf={rf}"

    # the best gain grows with the register file latency
    assert result.best_gain(7) > result.best_gain(3)
    assert result.best_gain(7) > 0.04

    # apsi loses, and the loss deepens with the rf latency
    assert result.speedup("apsi", 7) < 1.0
    assert result.speedup("apsi", 7) < result.speedup("apsi", 3) + 0.01

    # apsi's operand miss rate is the paper's ~1.5 % outlier
    apsi_miss = result.miss_rates["apsi"][-1]
    assert apsi_miss > 0.01
    for workload, misses in result.miss_rates.items():
        if workload not in ("apsi", "apsi+swim"):
            assert misses[-1] < 0.01, workload

    # apsi is the worst-performing workload under the DRA
    for rf in (5, 7):
        index = result.rf_latencies.index(rf)
        apsi = result.rows["apsi"][index]
        others = [v[index] for w, v in result.rows.items() if w != "apsi"]
        assert apsi <= min(others) + 0.02
