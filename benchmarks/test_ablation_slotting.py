"""Ablation: cluster slotting policy under the DRA.

Dependence-based slotting concentrates a value's consumers in one
cluster — the §5.4 saturation scenario — while round-robin spreads them
and shifts the miss mechanisms toward capacity effects.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_slotting_ablation

WORKLOADS = ("swim", "apsi")


def test_ablation_slotting(benchmark, settings, results_dir):
    result = run_once(benchmark, run_slotting_ablation, settings, WORKLOADS)
    save_result(results_dir, "ablation_slotting", result.render())
    print()
    print(result.render())

    # both policies run correctly and land in the same ballpark on the
    # parallel code
    assert 0.85 < result.relative("round_robin", "swim") < 1.20

    # apsi's concentrated fan-out makes dependence slotting the
    # operand-miss-prone configuration: spreading consumers round-robin
    # cuts its operand misses and recovers performance
    assert (
        result.aux["dependence"]["apsi"] > result.aux["round_robin"]["apsi"]
    )
    assert result.relative("round_robin", "apsi") > 1.0
