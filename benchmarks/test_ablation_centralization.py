"""Ablation: one central register cache vs the distributed CRCs (§4).

Paper claim: "Register caches must be small to reduce access latency ...
A small register cache results in a high miss rate for our base
architecture ... a register cache may need to be of comparable size to
a register file to hold all the relevant information."  The DRA's
answer is distribution: eight 16-entry CRCs fed by filtered insertion.
"""

from benchmarks.conftest import run_once, save_result
from repro.experiments import run_centralization_ablation

WORKLOADS = ("swim", "compress", "turb3d")


def test_ablation_centralization(benchmark, settings, results_dir):
    result = run_once(
        benchmark, run_centralization_ablation, settings, WORKLOADS
    )
    save_result(results_dir, "ablation_centralization", result.render())
    print()
    print(result.render())

    for workload in WORKLOADS:
        # one small central cache misses far more than the distributed CRCs
        assert (
            result.aux["central-16"][workload]
            > 1.5 * result.aux["distributed-8x16"][workload]
        ), workload
        # and costs performance
        assert (
            result.relative("central-16", workload)
            < result.relative("distributed-8x16", workload)
        ), workload
        # register-file-class capacity recovers the miss rate — the
        # "comparable size to a register file" observation
        assert (
            result.aux["central-128"][workload]
            < result.aux["central-16"][workload]
        ), workload
