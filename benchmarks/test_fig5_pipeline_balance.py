"""Regenerates Figure 5: fixed-length pipelines are not equal.

Paper shape: with DEC->EX held at 12 cycles, moving stages out of the
IQ->EX segment monotonically improves performance; the load-loop codes
(swim, turb3d, apsi+swim) gain the most; the branch-bound integer codes
barely move because the branch resolution loop's length is unchanged.
"""

from benchmarks.conftest import run_once, save_result
from repro.analysis import geometric_mean
from repro.experiments import run_figure5


def test_fig5_pipeline_balance(benchmark, settings, results_dir):
    result = run_once(benchmark, run_figure5, settings)
    save_result(results_dir, "fig5", result.render())
    print()
    print(result.render())

    rows = result.rows
    # shrinking IQ->EX never hurts meaningfully
    for workload, values in rows.items():
        assert values[-1] > 0.97, workload

    # and helps overall
    assert geometric_mean([v[-1] for v in rows.values()]) > 1.01

    # the IQ->EX-sensitive workloads benefit clearly (the paper's top
    # gainers: swim, turb3d, apsi+swim; hydro2d/mgrid are memory-bound
    # and not expected to move much)
    load_gain = min(
        result.gain_at_best(w) for w in ("swim", "apsi+swim")
    )
    assert load_gain > 0.02

    # branch-bound codes move less than the best load-loop code
    best_load = max(
        result.gain_at_best(w) for w in ("swim", "turb3d", "apsi+swim",
                                         "hydro2d", "mgrid")
    )
    for branchy in ("compress", "gcc", "go"):
        assert result.gain_at_best(branchy) < best_load + 0.01, branchy
