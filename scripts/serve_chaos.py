#!/usr/bin/env python
"""Chaos smoke test for the campaign service, against the real CLI.

Unlike ``tests/test_serve.py`` (in-process servers), this drives
``python -m repro serve`` subprocesses exactly as an operator would, and
walks the service through its four headline robustness claims:

1. **dedup** — two concurrent clients submitting the same cell get the
   same result from exactly one simulation.
2. **crash re-lease** — with an injected worker crash (``REPRO_FAULTS``)
   and no harness retries, the service re-leases the job and the client
   still gets its result.
3. **kill -9 + resume** — SIGKILL a server with accepted-but-unfinished
   jobs; ``loopsim serve --resume`` replays the journal and finishes
   every one of them into the cache.
4. **SIGTERM drain** — a terminated server exits 0 with a clean ``drain``
   marker as its final journal record.

Exit code 0 means every scenario held.  Used by the ``serve-smoke`` CI
job; runnable locally with ``python scripts/serve_chaos.py``.
"""

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness import ResultCache  # noqa: E402
from repro.serve import CampaignClient, build_cell, make_cell_spec  # noqa: E402
from repro.serve.journal import last_drain, pending_jobs, read_records  # noqa: E402

TINY = dict(instructions=300, warmup=2_000, detailed_warmup=80)
WORKLOAD = "int_test"
LISTEN_RE = re.compile(r"listening on [\d.]+:(\d+)")


class Failure(Exception):
    pass


class Server:
    """One ``loopsim serve`` subprocess."""

    def __init__(self, workdir: Path, name: str, faults: str = "",
                 extra_args=()):
        self.workdir = workdir
        self.journal = workdir / "journal.jsonl"
        self.cache_dir = workdir / "cache"
        self.log = workdir / f"{name}.log"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        if faults:
            env["REPRO_FAULTS"] = faults
        else:
            env.pop("REPRO_FAULTS", None)
        command = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--isolate", "inline",
            "--journal", str(self.journal),
            "--cache-dir", str(self.cache_dir),
            *extra_args,
        ]
        self._log_handle = self.log.open("w")
        self.process = subprocess.Popen(
            command, env=env, cwd=str(workdir),
            stdout=self._log_handle, stderr=subprocess.STDOUT,
        )
        self.port = self._wait_for_port()

    def _wait_for_port(self, timeout: float = 30.0) -> int:
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.process.poll() is not None:
                raise Failure(
                    f"server died at startup:\n{self.log.read_text()}")
            match = LISTEN_RE.search(self.log.read_text())
            if match:
                return int(match.group(1))
            time.sleep(0.05)
        raise Failure(f"server never listened:\n{self.log.read_text()}")

    def client(self, **kwargs) -> CampaignClient:
        return CampaignClient(port=self.port, **kwargs)

    def metric(self, name: str) -> float:
        with self.client() as client:
            return client.stats()["metrics"].get(f"serve.{name}", 0)

    def sigterm(self) -> None:
        self.process.send_signal(signal.SIGTERM)

    def sigkill(self) -> None:
        self.process.kill()

    def wait(self, timeout: float = 30.0) -> int:
        try:
            code = self.process.wait(timeout)
        finally:
            self._log_handle.close()
        return code

    def stop(self) -> None:
        """Best-effort cleanup for failure paths."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(10)
        if not self._log_handle.closed:
            self._log_handle.close()


def check(condition: bool, what: str) -> None:
    if not condition:
        raise Failure(what)


def scenario_dedup(root: Path) -> None:
    """Two concurrent identical submits -> exactly one simulation."""
    workdir = root / "dedup"
    workdir.mkdir()
    # The slow fault holds the one execution open so the submits overlap.
    server = Server(workdir, "serve", faults="slow|*|*|*|1|1.0")
    try:
        replies = []
        lock = threading.Lock()

        def submit():
            with server.client() as client:
                reply = client.submit(WORKLOAD, want_result=False, **TINY)
            with lock:
                replies.append(reply)

        first = threading.Thread(target=submit)
        second = threading.Thread(target=submit)
        first.start()
        time.sleep(0.4)  # first submit is leased and sleeping
        second.start()
        first.join(60)
        second.join(60)
        check(len(replies) == 2 and all(r.ok for r in replies),
              f"dedup submits failed: {replies}")
        check(replies[0].ipc == replies[1].ipc,
              "coalesced submits disagree on ipc")
        check(any(r.dedup for r in replies), "second submit did not dedup")
        executed = server.metric("executed")
        check(executed == 1, f"expected 1 execution, saw {executed}")
        print(f"  dedup: 2 clients, 1 execution, ipc={replies[0].ipc:.4f}")
    finally:
        server.stop()


def scenario_crash_release(root: Path) -> None:
    """Worker crash with no harness retries -> service re-leases."""
    workdir = root / "crash"
    workdir.mkdir()
    server = Server(workdir, "serve", faults="crash|*|*|*|1",
                    extra_args=("--retries", "0"))
    try:
        with server.client() as client:
            reply = client.submit(WORKLOAD, want_result=False, **TINY)
        check(reply.ok, f"crash-faulted submit failed: {reply.error_message}")
        requeued = server.metric("requeued")
        executed = server.metric("executed")
        check(requeued >= 1, f"no re-lease recorded (requeued={requeued})")
        check(executed >= 2, f"expected >=2 executions, saw {executed}")
        records = [r["rec"] for r in read_records(server.journal)]
        check("requeued" in records, "journal missing the requeue record")
        print(f"  crash: lease re-queued (executions={executed:.0f}), "
              f"result delivered ipc={reply.ipc:.4f}")
    finally:
        server.stop()


def scenario_kill9_resume(root: Path) -> tuple:
    """SIGKILL with a backlog -> --resume finishes every accepted job."""
    workdir = root / "resume"
    workdir.mkdir()
    # Every first attempt naps far longer than the test: nothing can
    # finish before the kill.
    server = Server(workdir, "serve-a", faults="slow|*|*|*|1|600",
                    extra_args=("--workers", "1"))
    specs = [make_cell_spec(WORKLOAD, seed=seed, **TINY) for seed in range(5)]
    keys = [build_cell(spec).key for spec in specs]
    try:
        with server.client() as client:
            for spec in specs:
                reply = client.submit_spec(spec, wait=False)
                check(reply.ok, "submit not accepted")
        server.sigkill()
        code = server.wait()
        check(code != 0, "SIGKILL'd server exited cleanly?!")
    finally:
        server.stop()
    pending = pending_jobs(server.journal)
    check(len(pending) == 5,
          f"journal lost accepted jobs: {len(pending)}/5 pending")
    check(last_drain(server.journal) is None, "dirty shutdown left a drain marker")

    resumed = Server(workdir, "serve-b", extra_args=("--resume", "--workers", "2"))
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            check(resumed.process.poll() is None, "resumed server died")
            if resumed.metric("completed") >= 5:
                break
            time.sleep(0.25)
        check(resumed.metric("resumed") == 5,
              f"replayed {resumed.metric('resumed')}/5 jobs")
        check(resumed.metric("completed") >= 5,
              f"resume finished {resumed.metric('completed')}/5 jobs")
        cache = ResultCache(server.cache_dir)
        missing = [key[:8] for key in keys if cache.get(key) is None]
        check(not missing, f"cache missing resumed cells: {missing}")
        print("  kill -9: 5 accepted jobs journaled, replayed and "
              "finished after --resume")
    except BaseException:
        resumed.stop()
        raise
    return resumed, server.journal


def scenario_sigterm_drain(resumed: Server, journal: Path) -> None:
    """SIGTERM -> exit 0 with a final drain record."""
    resumed.sigterm()
    code = resumed.wait(30)
    check(code == 0, f"drained server exited {code}")
    log = resumed.log.read_text()
    check("drained, bye" in log, f"no drain farewell in log:\n{log}")
    records = read_records(journal)
    check(records and records[-1]["rec"] == "drain",
          "journal does not end with a drain record")
    print("  SIGTERM: clean drain, exit 0, drain record journaled")


def main() -> int:
    started = time.time()
    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as tmp:
        root = Path(tmp)
        print("serve chaos: dedup under concurrency")
        scenario_dedup(root)
        print("serve chaos: worker crash -> lease re-queue")
        scenario_crash_release(root)
        print("serve chaos: kill -9 -> journal resume")
        resumed, journal = scenario_kill9_resume(root)
        print("serve chaos: SIGTERM -> graceful drain")
        try:
            scenario_sigterm_drain(resumed, journal)
        finally:
            resumed.stop()
    print(f"serve chaos: all scenarios held ({time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Failure as failure:
        print(f"serve chaos: FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
