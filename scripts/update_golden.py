#!/usr/bin/env python
"""Regenerate the pinned golden numbers in tests/golden/.

Run after an *intentional* timing-model change, then review the diff:

    PYTHONPATH=src python scripts/update_golden.py

Every entry is exact integer state (cycles, retired, reissues) from a
small deterministic run, so any unintended timing change shows up as a
test failure with a reviewable diff instead of a silent drift.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.core.backend import parse_backend  # noqa: E402
from repro.core.config import CoreConfig  # noqa: E402
from repro.core.simulator import simulate  # noqa: E402

# The run geometry is owned by repro.perfhist.profile so the pins and
# the committed performance history can never drift apart.
from repro.perfhist.profile import (  # noqa: E402
    GOLDEN_RUN as RUN,
    golden_cells,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "tests", "golden",
    "ipc_numbers.json",
)

#: Scenario-family pins.  Each embeds its full run geometry (unlike the
#: core cells, which share RUN) so new families can pick their own.
SCENARIO_RUNS = {
    "pointer_chase_base_rf3": {
        "workload": "pointer_chase",
        "kind": "base",
        "rf": 3,
        "instructions": 2_000,
        "warmup": 20_000,
        "detailed_warmup": 400,
        "seed": 0,
    },
}


def _scenario_config(run: dict) -> CoreConfig:
    if run["kind"] == "dra":
        return CoreConfig.with_dra(run["rf"])
    return CoreConfig.base(run["rf"])


def collect() -> dict:
    cells = {}
    for label, config in golden_cells():
        stats = simulate(
            RUN["workload"],
            config,
            instructions=RUN["instructions"],
            warmup=RUN["warmup"],
            detailed_warmup=RUN["detailed_warmup"],
            seed=RUN["seed"],
        ).stats
        cells[label] = {
            "pipe": config.label,
            "cycles": stats.cycles,
            "retired": stats.retired,
            "total_reissues": stats.total_reissues,
        }
        print(f"{label:12s} {config.label:>8s} cycles={stats.cycles} "
              f"retired={stats.retired} reissues={stats.total_reissues}")
    scenario_cells = {}
    for label, run in SCENARIO_RUNS.items():
        config = _scenario_config(run)
        stats = simulate(
            run["workload"],
            config,
            instructions=run["instructions"],
            warmup=run["warmup"],
            detailed_warmup=run["detailed_warmup"],
            seed=run["seed"],
        ).stats
        scenario_cells[label] = {
            "run": dict(run),
            "pipe": config.label,
            "cycles": stats.cycles,
            "retired": stats.retired,
            "total_reissues": stats.total_reissues,
        }
        print(f"{label:24s} {config.label:>8s} cycles={stats.cycles} "
              f"retired={stats.retired} reissues={stats.total_reissues}")
    return {"run": RUN, "cells": cells, "scenario_cells": scenario_cells}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend to regenerate from; anything but the "
             "reference loop is refused — pins are ground truth, and "
             "ground truth comes only from the reference kernel "
             "(every other backend is *tested against* these numbers)",
    )
    args = parser.parse_args()
    try:
        backend = parse_backend(args.backend)
    except Exception as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if backend.name != "reference":
        print(
            f"error: refusing to regenerate golden pins from backend "
            f"{backend.token!r}; pins define the ground truth other "
            f"backends are verified against, so they may only come "
            f"from the reference kernel",
            file=sys.stderr,
        )
        return 2
    golden = collect()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {os.path.relpath(GOLDEN_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
