"""First-order analytical model of loose-loop costs (§1).

The paper's framework says the performance lost to a loose loop is, to
first order::

    events        = loop occurrences x mis-speculation rate
    cost / event >= loop delay + recovery time   (queueing adds more)
    cycles lost  ~= events x cost/event

This module turns a finished simulation into that ledger: per-loop event
counts from the measured statistics, per-event minimum impacts from the
configured loop geometry, and a predicted total slowdown that can be
checked against the simulator (the benches do exactly that when
comparing two pipeline lengths).

The model is deliberately *first order* — it ignores overlap between
recoveries, queueing delay inside loops, and SMT fill-in — so its total
is an attribution weight rather than a prediction of realised loss.
Its value is answering: which loop is costing what.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import format_heading, format_table
from repro.core.config import CoreConfig
from repro.core.stats import CoreStats
from repro.loops.model import Loop, loops_for_config


@dataclass(frozen=True)
class LoopLedgerEntry:
    """One loop's measured events and modelled cost."""

    loop: Loop
    occurrences: int
    misspeculations: int
    min_cycles_lost: int

    @property
    def misspeculation_rate(self) -> float:
        if self.occurrences == 0:
            return 0.0
        return self.misspeculations / self.occurrences


@dataclass
class LoopLedger:
    """The §1 cost ledger for one simulation run."""

    entries: List[LoopLedgerEntry]
    measured_cycles: int

    def entry(self, loop_name: str) -> LoopLedgerEntry:
        """Look up one loop's ledger row."""
        for entry in self.entries:
            if entry.loop.name == loop_name:
                return entry
        raise KeyError(loop_name)

    @property
    def total_min_cycles_lost(self) -> int:
        """Serial (no-overlap) cycles attributable to loop recovery.

        Each event is costed at its loop's *minimum* impact, but events
        are summed as if recoveries never overlapped, so the total is an
        attribution weight, not a bound on the realised loss.
        """
        return sum(e.min_cycles_lost for e in self.entries)

    @property
    def predicted_loss_fraction(self) -> float:
        """Modelled (no-overlap) fraction of runtime on loop recovery."""
        if self.measured_cycles == 0:
            return 0.0
        return min(1.0, self.total_min_cycles_lost / self.measured_cycles)

    def render(self) -> str:
        """The ledger as a text table."""
        headers = [
            "loop", "occurrences", "misspec", "rate",
            "min impact", "cycles lost",
        ]
        rows = []
        for e in sorted(
            self.entries, key=lambda x: x.min_cycles_lost, reverse=True
        ):
            rows.append(
                [
                    e.loop.name,
                    e.occurrences,
                    e.misspeculations,
                    f"{e.misspeculation_rate:.2%}",
                    e.loop.min_misspeculation_impact,
                    e.min_cycles_lost,
                ]
            )
        footer = (
            f"\nserial (no-overlap) recovery cost: "
            f"{self.total_min_cycles_lost} cycle-equivalents over "
            f"{self.measured_cycles} measured cycles "
            f"({self.predicted_loss_fraction:.1%}); out-of-order overlap "
            f"hides part of this"
        )
        return (
            format_heading("Loose-loop cost ledger (paper §1 first-order model)")
            + "\n" + format_table(headers, rows) + footer
        )


def build_ledger(config: CoreConfig, stats: CoreStats) -> LoopLedger:
    """Assemble the §1 ledger from a finished run's statistics."""
    loops: Dict[str, Loop] = {l.name: l for l in loops_for_config(config)}
    entries: List[LoopLedgerEntry] = []

    def add(name: str, occurrences: int, misspeculations: int) -> None:
        loop = loops.get(name)
        if loop is None:
            return
        entries.append(
            LoopLedgerEntry(
                loop=loop,
                occurrences=occurrences,
                misspeculations=misspeculations,
                min_cycles_lost=(
                    misspeculations * loop.min_misspeculation_impact
                ),
            )
        )

    add(
        "branch_resolution",
        stats.cond_branches,
        stats.cond_mispredicts + stats.ras_mispredicts,
    )
    add("load_resolution", stats.loads_executed, stats.load_misspeculations)
    add(
        "memory_dependence",
        stats.loads_executed,
        stats.memdep_traps,
    )
    add("dtlb_trap", stats.loads_executed, stats.dtlb_misses)
    add(
        "operand_resolution",
        stats.total_operand_reads,
        stats.operand_miss_events,
    )
    return LoopLedger(entries=entries, measured_cycles=stats.measured_cycles)


def attribute_slowdown(
    config: CoreConfig,
    stats: CoreStats,
    top: Optional[int] = None,
) -> List[str]:
    """Names of the costliest loops, most expensive first."""
    ledger = build_ledger(config, stats)
    ordered = sorted(
        ledger.entries, key=lambda e: e.min_cycles_lost, reverse=True
    )
    names = [e.loop.name for e in ordered if e.min_cycles_lost > 0]
    return names[:top] if top else names
