"""The paper's micro-architectural loop framework (§1).

A *loop* exists wherever a computation in one pipeline stage is needed
by the same or an earlier stage.  This package gives the framework a
first-class representation: loop length, feedback delay, loop delay
(tight vs loose), recovery stage and recovery time, plus the §1 cost
model (mis-speculation events x useless work).
"""

from repro.loops.model import (
    Loop,
    LoopCost,
    LoopKind,
    alpha_21264_loops,
    loops_for_config,
)
from repro.loops.analytical import (
    LoopLedger,
    LoopLedgerEntry,
    attribute_slowdown,
    build_ledger,
)

__all__ = [
    "Loop",
    "LoopKind",
    "LoopCost",
    "alpha_21264_loops",
    "loops_for_config",
    "LoopLedger",
    "LoopLedgerEntry",
    "build_ledger",
    "attribute_slowdown",
]
