"""First-class model of micro-architectural loops.

Implements the definitional framework of the paper's §1:

* **loop length** — pipeline stages traversed from initiation to
  resolution stage;
* **feedback delay** — cycles to communicate the result back from the
  resolution stage to the initiation stage;
* **loop delay** — loop length + feedback delay; a loop with delay 1 is
  *tight*, anything else is *loose*;
* **recovery time** — extra refill cycles when the recovery stage sits
  earlier in the pipe than the initiation stage;
* minimum mis-speculation impact — loop delay + recovery time (the §1
  lower bound; queueing delays add to it).

``loops_for_config`` instantiates the paper's loop inventory (Figure 2)
for a given core configuration so experiments and examples can print
and test the framework numbers, e.g. the 21264 branch loop's 7-cycle
minimum impact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import CoreConfig


class LoopKind(enum.Enum):
    """Hazard classes that give rise to loops (§1)."""

    CONTROL = "control"
    DATA = "data"
    RESOURCE = "resource"


@dataclass(frozen=True)
class Loop:
    """One micro-architectural loop.

    Stage names are descriptive labels; the arithmetic uses only the
    cycle counts.
    """

    name: str
    kind: LoopKind
    initiation_stage: str
    resolution_stage: str
    length: int
    feedback_delay: int
    #: Extra cycles to refill from the recovery stage to the initiation
    #: stage (0 when they coincide).
    recovery_time: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"{self.name}: loop length cannot be negative")
        if self.feedback_delay < 0:
            raise ValueError(f"{self.name}: feedback delay cannot be negative")
        if self.recovery_time < 0:
            raise ValueError(f"{self.name}: recovery time cannot be negative")

    @property
    def loop_delay(self) -> int:
        """Loop length plus feedback delay (§1)."""
        return self.length + self.feedback_delay

    @property
    def is_tight(self) -> bool:
        """Tight loops have a loop delay of one."""
        return self.loop_delay == 1

    @property
    def is_loose(self) -> bool:
        """Loose loops extend over multiple stages (delay > 1)."""
        return not self.is_tight

    @property
    def min_misspeculation_impact(self) -> int:
        """Lower bound of cycles lost per mis-speculation (§1).

        Queueing delays inside the loop add to this in practice.
        """
        return self.loop_delay + self.recovery_time


@dataclass
class LoopCost:
    """The §1 cost model for one loop over a run.

    The number of useless-work events is ``occurrences x
    misspeculation_rate``; total cost scales with the per-event impact.
    """

    loop: Loop
    occurrences: int = 0
    misspeculations: int = 0
    useless_work_instructions: int = 0

    @property
    def misspeculation_rate(self) -> float:
        """Fraction of loop-generating instructions that mis-speculated."""
        if self.occurrences == 0:
            return 0.0
        return self.misspeculations / self.occurrences

    @property
    def events(self) -> int:
        """Number of useless-work events (mis-speculations)."""
        return self.misspeculations

    @property
    def min_cycles_lost(self) -> int:
        """Lower-bound cycles lost: events x minimum per-event impact."""
        return self.misspeculations * self.loop.min_misspeculation_impact


def loops_for_config(config: "CoreConfig") -> List[Loop]:
    """The loop inventory of a simulated core (paper Figures 1-2).

    Includes the two loose loops the paper studies in depth (branch
    resolution and load resolution), the loops the base design already
    closes (forwarding), and — when the DRA is enabled — the new operand
    resolution loop.
    """
    loops = [
        Loop(
            name="next_line_prediction",
            kind=LoopKind.CONTROL,
            initiation_stage="fetch",
            resolution_stage="fetch",
            length=0,
            feedback_delay=1,
        ),
        Loop(
            name="alu_forwarding",
            kind=LoopKind.DATA,
            initiation_stage="execute",
            resolution_stage="execute",
            length=0,
            feedback_delay=1,
        ),
        Loop(
            name="branch_resolution",
            kind=LoopKind.CONTROL,
            initiation_stage="fetch",
            resolution_stage="execute",
            length=config.fetch_depth + config.dec_iq + config.iq_ex,
            feedback_delay=config.branch_feedback_delay,
        ),
        Loop(
            name="load_resolution",
            kind=LoopKind.DATA,
            initiation_stage="issue",
            resolution_stage="dcache",
            length=config.iq_ex,
            feedback_delay=config.iq_feedback_delay,
        ),
        Loop(
            name="memory_barrier",
            kind=LoopKind.RESOURCE,
            initiation_stage="rename",
            resolution_stage="retire",
            # the barrier waits at the mapper until all preceding
            # instructions complete: the loop spans rename to completion
            length=(config.dec_iq - config.rename_offset) + config.iq_ex + 1,
            feedback_delay=config.iq_feedback_delay,
        ),
        Loop(
            name="dtlb_trap",
            kind=LoopKind.DATA,
            initiation_stage="issue",
            resolution_stage="dcache",
            length=config.iq_ex,
            feedback_delay=config.iq_feedback_delay,
            # trap recovery restarts at fetch: refill the whole front
            recovery_time=config.fetch_depth + config.dec_iq,
        ),
    ]
    if config.memdep is not None:
        loops.append(
            Loop(
                name="memory_dependence",
                kind=LoopKind.DATA,
                initiation_stage="issue",
                resolution_stage="execute",
                length=config.iq_ex,
                feedback_delay=config.iq_feedback_delay,
                # the reorder trap recovers at fetch, not at issue: the
                # §1 example of recovery stage != initiation stage
                recovery_time=config.fetch_depth + config.dec_iq,
            )
        )
    if config.dra is not None:
        loops.append(
            Loop(
                name="operand_resolution",
                kind=LoopKind.DATA,
                initiation_stage="issue",
                resolution_stage="execute",
                length=config.iq_ex,
                feedback_delay=config.iq_feedback_delay,
            )
        )
    return loops


def alpha_21264_loops() -> List[Loop]:
    """The Alpha 21264 loops the paper uses as worked examples (§1).

    The branch resolution loop encompasses 6 stages with a feedback
    delay of 1 and no recovery time, so its minimum mis-speculation
    impact is 7 cycles — the number quoted in the paper.
    """
    return [
        Loop(
            name="21264_next_line_prediction",
            kind=LoopKind.CONTROL,
            initiation_stage="fetch",
            resolution_stage="fetch",
            length=0,
            feedback_delay=1,
        ),
        Loop(
            name="21264_alu_forwarding",
            kind=LoopKind.DATA,
            initiation_stage="execute",
            resolution_stage="execute",
            length=0,
            feedback_delay=1,
        ),
        Loop(
            name="21264_branch_resolution",
            kind=LoopKind.CONTROL,
            initiation_stage="fetch",
            resolution_stage="execute",
            length=6,
            feedback_delay=1,
        ),
        Loop(
            name="21264_load_resolution",
            kind=LoopKind.DATA,
            initiation_stage="issue",
            resolution_stage="dcache",
            length=2,
            feedback_delay=1,
        ),
        Loop(
            name="21264_load_store_reorder_trap",
            kind=LoopKind.DATA,
            initiation_stage="issue",
            resolution_stage="execute",
            length=2,
            feedback_delay=1,
            recovery_time=4,  # recovery stage is fetch, not issue
        ),
    ]
