"""Wire protocol of the campaign service: JSON lines over TCP.

Every message is one JSON object on one ``\\n``-terminated line.  The
vocabulary is small and explicit:

Client -> server
    ``submit``      run (or coalesce onto) one simulation cell
    ``status``      queue depths, job states, lease occupancy
    ``stats``       the server's :mod:`repro.obs` metrics snapshot
    ``health``      liveness/readiness probe
    ``drain``       ask the server to drain gracefully

Server -> client
    ``accepted``    the submit was queued (or deduplicated / cache-hit)
    ``result``      terminal outcome of a submitted cell
    ``rejected``    load shed (429-style, with ``retry_after``) or
                    drain refusal (503-style)
    ``error``       malformed request / invalid cell spec
    ``status`` / ``stats`` / ``health`` / ``draining``  replies in kind

A *cell spec* is the JSON description of one simulation cell::

    {"workload": "swim", "seed": 0,
     "config": {"dra": true, "rf": 5, "recovery": "reissue",
                "overrides": {...}, "dra_overrides": {...}},
     "instructions": 10000, "warmup": 100000, "detailed_warmup": 1500}

The server rebuilds the :class:`~repro.harness.Cell` from the spec, so
the cell's content address (:func:`~repro.harness.cache.cell_key`) is
computed exactly once, server-side, from the same frozen dataclasses a
direct :func:`~repro.core.simulator.simulate` call would use — which is
what makes at-least-once execution idempotent and deduplication exact.

Results travel as a JSON summary (ipc + the ``CoreStats`` summary dict)
plus, when the client asks for ``pickle``, a base64-pickled
:class:`~repro.core.SimResult` so local tooling gets the full object
back, bit-identical to a direct run.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.experiments.runner import ExperimentSettings
from repro.harness import Cell

#: Protocol version, echoed in health replies; bump on breaking change.
PROTOCOL_VERSION = 1

#: Upper bound on one wire line (a pickled SimResult is ~tens of kB;
#: this also caps hostile input).
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Priority lanes, in dispatch order.
LANES = ("interactive", "batch")

#: Config overrides a submit may set (scalar CoreConfig fields only —
#: nested sub-configs stay server-default so cell keys remain portable).
ALLOWED_CONFIG_OVERRIDES = frozenset((
    "fetch_width", "rename_width", "issue_width", "retire_width",
    "fetch_depth", "dec_iq", "iq_ex", "rename_offset",
    "iq_entries", "rob_entries", "num_clusters", "num_pregs",
    "fb_depth", "rf_read_ports", "iq_feedback_delay", "iq_clear_cycles",
    "branch_feedback_delay", "load_fill_wake_lead", "slotting",
    "fetch_policy",
))

#: DRAConfig overrides a submit may set.
ALLOWED_DRA_OVERRIDES = frozenset((
    "crc_entries", "counter_bits", "payload_transit", "frontend_stall",
    "oracle_crc", "centralized", "insertion_policy",
    "shadow_fb_decrement",
))


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line for ``message``."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """The message on one wire line; raises :class:`ConfigError` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise ConfigError(f"wire line over {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ConfigError(f"malformed wire line: {error}")
    if not isinstance(message, dict) or "type" not in message:
        raise ConfigError("wire message must be an object with a 'type'")
    return message


# --------------------------------------------------------------------------
# Cell specs
# --------------------------------------------------------------------------

def make_cell_spec(
    workload: str,
    seed: int = 0,
    dra: bool = False,
    rf: int = 3,
    recovery: str = "",
    overrides: Optional[Dict[str, Any]] = None,
    dra_overrides: Optional[Dict[str, Any]] = None,
    instructions: int = ExperimentSettings.instructions,
    warmup: int = ExperimentSettings.warmup,
    detailed_warmup: int = ExperimentSettings.detailed_warmup,
    backend: str = ExperimentSettings.backend,
) -> Dict[str, Any]:
    """A client-side cell spec (see module docstring for the shape)."""
    config: Dict[str, Any] = {"dra": bool(dra), "rf": int(rf)}
    if recovery:
        config["recovery"] = recovery
    if overrides:
        config["overrides"] = dict(overrides)
    if dra_overrides:
        config["dra_overrides"] = dict(dra_overrides)
    return {
        "workload": workload,
        "seed": int(seed),
        "config": config,
        "instructions": int(instructions),
        "warmup": int(warmup),
        "detailed_warmup": int(detailed_warmup),
        "backend": str(backend),
    }


def build_cell(spec: Dict[str, Any]) -> Cell:
    """Rebuild the harness :class:`Cell` a spec describes.

    Raises :class:`ConfigError` (or lets ``CoreConfig``'s own
    ``ValueError``-compatible validation surface) on anything the
    simulator would reject — the server turns that into an ``error``
    reply instead of accepting a poison job.
    """
    from repro.core import CoreConfig, LoadRecovery

    if not isinstance(spec, dict):
        raise ConfigError("cell spec must be an object")
    workload = spec.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ConfigError("cell spec needs a workload name")
    conf = spec.get("config") or {}
    if not isinstance(conf, dict):
        raise ConfigError("cell config must be an object")
    overrides = dict(conf.get("overrides") or {})
    unknown = set(overrides) - ALLOWED_CONFIG_OVERRIDES
    if unknown:
        raise ConfigError(f"unknown config override(s): {sorted(unknown)}")
    rf = int(conf.get("rf", 3))
    if conf.get("dra"):
        dra_overrides = dict(conf.get("dra_overrides") or {})
        unknown = set(dra_overrides) - ALLOWED_DRA_OVERRIDES
        if unknown:
            raise ConfigError(f"unknown DRA override(s): {sorted(unknown)}")
        from repro.core.config import DRAConfig

        config = CoreConfig.with_dra(rf, dra=DRAConfig(**dra_overrides),
                                     **overrides)
    elif conf.get("dra_overrides"):
        raise ConfigError("dra_overrides given for a non-DRA config")
    else:
        config = CoreConfig.base(rf, **overrides)
    if conf.get("recovery"):
        config = config.replace(load_recovery=LoadRecovery(conf["recovery"]))
    seed = int(spec.get("seed", 0))
    backend = str(spec.get("backend", ExperimentSettings.backend))
    # reject bad backend specs here so the server replies with an error
    # instead of accepting a poison job
    from repro.core.backend import parse_backend

    parse_backend(backend)
    settings = ExperimentSettings(
        instructions=int(spec.get("instructions",
                                  ExperimentSettings.instructions)),
        warmup=int(spec.get("warmup", ExperimentSettings.warmup)),
        detailed_warmup=int(spec.get("detailed_warmup",
                                     ExperimentSettings.detailed_warmup)),
        seeds=(seed,),
        backend=backend,
    )
    return Cell(workload=workload, config=config, settings=settings,
                seed=seed)


# --------------------------------------------------------------------------
# Result rendering
# --------------------------------------------------------------------------

def result_to_wire(result: Any, want_pickle: bool) -> Dict[str, Any]:
    """The JSON-safe rendering of a :class:`~repro.core.SimResult`."""
    wire: Dict[str, Any] = {
        "ipc": result.ipc,
        "workload": result.workload,
        "config": result.config.label,
        "seed": result.seed,
        "backend": getattr(result, "backend", "reference"),
        "summary": {k: float(v) for k, v in result.stats.summary().items()},
    }
    if want_pickle:
        wire["payload"] = base64.b64encode(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    return wire


def result_from_wire(wire: Dict[str, Any]) -> Optional[Any]:
    """The full ``SimResult`` when the wire carried a pickle payload."""
    payload = wire.get("payload")
    if not payload:
        return None
    return pickle.loads(base64.b64decode(payload))
