"""Thin synchronous client for the campaign service.

One JSON-lines TCP connection per client; :meth:`CampaignClient.submit`
sends a cell spec and blocks for the result.  The client is where the
service's failure modes become invisible to callers:

* ``rejected`` (429, lane full) — honour ``retry_after`` and resubmit,
  up to ``retries`` times.
* dropped connection mid-wait (server restart, injected ``disconnect``
  fault) — reconnect and resubmit; the cell key makes the retry free
  (cache hit or dedup onto the still-running job).
* ``rejected`` (503, draining) — surface immediately; a draining server
  will not come back on this address.

Everything the server answers is returned as a :class:`Reply`.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    encode,
    make_cell_spec,
    result_from_wire,
)


class ServiceError(ReproError):
    """The service refused or failed a request terminally."""


class ServiceUnavailableError(ServiceError):
    """Could not reach (or stay connected to) the server."""


@dataclass
class Reply:
    """Terminal answer to one submit."""

    ok: bool
    job: Optional[str] = None
    key: Optional[str] = None
    dedup: bool = False
    cached: bool = False
    attempts: int = 0
    ipc: Optional[float] = None
    summary: Dict[str, float] = field(default_factory=dict)
    #: The full ``SimResult`` when the submit asked for a pickle.
    result: Optional[Any] = None
    error_kind: Optional[str] = None
    error_message: Optional[str] = None
    #: submits shed then retried successfully.
    sheds: int = 0
    reconnects: int = 0


class _Connection:
    """One line-oriented TCP connection."""

    def __init__(self, host: str, port: int, timeout: Optional[float]):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.reader = self.sock.makefile("rb")

    def send(self, message: Dict[str, Any]) -> None:
        self.sock.sendall(encode(message))

    def recv(self) -> Dict[str, Any]:
        line = self.reader.readline(MAX_LINE_BYTES)
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class CampaignClient:
    """Synchronous campaign-service client."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 300.0,
        retries: int = 5,
        retry_delay: float = 0.2,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay
        self._conn: Optional[_Connection] = None
        self._rid = 0

    # -- plumbing ----------------------------------------------------------

    def _connection(self, fresh: bool = False) -> _Connection:
        if fresh and self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._conn is None:
            try:
                self._conn = _Connection(self.host, self.port, self.timeout)
            except OSError as error:
                raise ServiceUnavailableError(
                    f"cannot connect to {self.host}:{self.port}: {error}"
                )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CampaignClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply round trip (no retry semantics)."""
        conn = self._connection()
        try:
            conn.send(message)
            return conn.recv()
        except (OSError, ConnectionResetError, json.JSONDecodeError) as error:
            self.close()
            raise ServiceUnavailableError(f"request failed: {error}")

    # -- control endpoints -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request({"type": "health"})

    def status(self) -> Dict[str, Any]:
        return self._request({"type": "status"})

    def stats(self) -> Dict[str, Any]:
        return self._request({"type": "stats"})

    def drain(self) -> Dict[str, Any]:
        """Ask the server to drain; the connection dies with it."""
        try:
            return self._request({"type": "drain"})
        finally:
            self.close()

    # -- submits -----------------------------------------------------------

    def submit(
        self,
        workload: str,
        seed: int = 0,
        priority: str = "batch",
        wait: bool = True,
        want_result: bool = True,
        **spec_kwargs: Any,
    ) -> Reply:
        """Submit one cell and (by default) block for its result.

        ``spec_kwargs`` are forwarded to
        :func:`~repro.serve.protocol.make_cell_spec` (``dra``, ``rf``,
        ``instructions``, ``warmup``, ``detailed_warmup``, ``recovery``,
        ``overrides``, ``dra_overrides``).
        """
        spec = make_cell_spec(workload, seed=seed, **spec_kwargs)
        return self.submit_spec(spec, priority=priority, wait=wait,
                                want_result=want_result)

    def submit_spec(self, spec: Dict[str, Any], priority: str = "batch",
                    wait: bool = True, want_result: bool = True) -> Reply:
        sheds = 0
        reconnects = 0
        last_error: Optional[BaseException] = None
        for attempt in range(1 + self.retries):
            self._rid += 1
            message = {
                "type": "submit", "id": self._rid, "cell": spec,
                "priority": priority, "wait": wait,
                "pickle": bool(want_result),
            }
            try:
                conn = self._connection()
                conn.send(message)
                accepted = conn.recv()
                if accepted.get("type") == "rejected":
                    if accepted.get("code") == 503:
                        raise ServiceError("server is draining")
                    sheds += 1
                    delay = accepted.get("retry_after") or self.retry_delay
                    time.sleep(min(float(delay), 10.0))
                    continue
                if accepted.get("type") == "error":
                    raise ServiceError(accepted.get("message", "rejected"))
                if accepted.get("type") != "accepted":
                    raise ServiceError(
                        f"unexpected reply {accepted.get('type')!r}")
                if not wait:
                    return Reply(
                        ok=True, job=accepted.get("job"),
                        key=accepted.get("key"),
                        dedup=bool(accepted.get("dedup")),
                        cached=bool(accepted.get("cached")),
                        sheds=sheds, reconnects=reconnects,
                    )
                reply = conn.recv()
                if reply.get("type") != "result":
                    raise ServiceError(
                        f"unexpected reply {reply.get('type')!r}")
                return self._parse_result(reply, accepted, sheds, reconnects)
            except (OSError, ConnectionResetError,
                    json.JSONDecodeError) as error:
                # Dropped mid-flight (server bounce or injected
                # disconnect): reconnect and resubmit — idempotent by
                # content address.
                last_error = error
                reconnects += 1
                self.close()
                time.sleep(self.retry_delay)
                continue
        raise ServiceUnavailableError(
            f"submit failed after {1 + self.retries} attempt(s): "
            f"{last_error or 'shed every time'}"
        )

    @staticmethod
    def _parse_result(reply: Dict[str, Any], accepted: Dict[str, Any],
                      sheds: int, reconnects: int) -> Reply:
        base = dict(
            job=accepted.get("job"),
            key=accepted.get("key"),
            dedup=bool(accepted.get("dedup")),
            cached=bool(reply.get("cached") or accepted.get("cached")),
            attempts=int(reply.get("attempts") or 0),
            sheds=sheds,
            reconnects=reconnects,
        )
        if reply.get("ok"):
            wire = reply.get("result") or {}
            return Reply(
                ok=True,
                ipc=wire.get("ipc"),
                summary=dict(wire.get("summary") or {}),
                result=result_from_wire(wire),
                **base,
            )
        error = reply.get("error") or {}
        return Reply(
            ok=False,
            error_kind=error.get("kind"),
            error_message=error.get("message"),
            **base,
        )
