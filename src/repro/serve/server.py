"""The campaign server: asyncio TCP front end over the fault-tolerant
harness.

Architecture (mirroring the SMTcheck profiling-server shape: listener ->
job queue -> core scheduler -> storage)::

    TCP listener (JSON lines)
        -> dedup (content-addressed cell keys; concurrent identical
           submits coalesce onto one in-flight job)
        -> bounded priority lanes (interactive > batch) with 429-style
           load shedding
        -> worker pool, each execution under a lease
        -> repro.harness.run_cell (subprocess isolation, watchdog,
           classified retries)  -> shared ResultCache (storage)

Robustness properties, each tested by the chaos suite:

* **At-least-once, idempotent.**  Leases expire and jobs requeue; a
  duplicate execution writes the same content-addressed bytes and the
  first terminal outcome wins.
* **Crash-safe.**  Every accepted job is journaled before it is
  acknowledged; ``--resume`` replays accepted-but-not-done jobs after a
  ``kill -9``.
* **Bounded.**  Full lanes shed load with a ``retry_after`` hint
  instead of growing without bound.
* **Inherited cell fault tolerance.**  Worker crashes, hangs and
  transient faults are classified and retried by the harness; what
  escapes the harness (an expired lease) the service layer requeues.
* **Gracefully drainable.**  SIGTERM (or a ``drain`` message) stops
  intake, finishes accepted work, journals a clean-shutdown marker and
  exits.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import (
    CellTimeoutError,
    ConfigError,
    ReproError,
    WorkloadError,
    is_retryable,
)
from repro.harness import (
    SERVICE_KINDS,
    CellOutcome,
    HarnessSettings,
    ResultCache,
    active_fault,
    run_cell,
)
from repro.obs import MetricsRegistry
from repro.serve import journal as journal_mod
from repro.serve.journal import Journal
from repro.serve.leases import LeaseManager
from repro.serve.protocol import (
    LANES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    build_cell,
    decode,
    encode,
    result_to_wire,
)
from repro.serve.queue import (
    DONE,
    FAILED,
    LEASED,
    QUEUED,
    Job,
    JobQueue,
    QueueFullError,
)


@dataclass
class ServeSettings:
    """How the campaign server listens, queues, leases and journals."""

    host: str = "127.0.0.1"
    #: 0 = pick a free port (reported by ``CampaignServer.port``).
    port: int = 0
    #: Concurrent cell executions (each one a leased worker slot).
    workers: int = 2
    #: Queued jobs tolerated per priority lane before load shedding.
    lane_depth: int = 64
    #: Lease wall-clock budget; expiry requeues the job.
    lease_ttl: float = 120.0
    #: Lease grants per job before it is failed outright.
    max_lease_attempts: int = 3
    #: Crash-safe journal location (None = journalling off).
    journal_path: Optional[str] = None
    #: fsync each journal record (safest; slower).
    journal_fsync: bool = False
    #: Replay accepted-but-unfinished journal jobs on startup.
    resume: bool = False
    #: Cell execution policy (isolation, watchdog, retries, cache).
    harness: HarnessSettings = field(default_factory=HarnessSettings)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("serve workers must be >= 1")
        if self.max_lease_attempts < 1:
            raise ConfigError("max lease attempts must be >= 1")
        if self.lease_ttl <= 0:
            raise ConfigError("lease ttl must be positive")
        if self.resume and not self.journal_path:
            raise ConfigError("--resume needs a journal path")


class CampaignServer:
    """One listening campaign service instance."""

    def __init__(self, settings: ServeSettings):
        self.settings = settings
        self.harness = settings.harness
        self.queue = JobQueue(lane_depth=settings.lane_depth)
        self.leases = LeaseManager(ttl=settings.lease_ttl)
        self.jobs: Dict[str, Job] = {}
        #: cell key -> non-terminal job (the dedup register).
        self.inflight: Dict[str, Job] = {}
        self.cache: Optional[ResultCache] = (
            ResultCache(self.harness.cache_dir)
            if self.harness.cache_dir else None
        )
        self.journal: Optional[Journal] = None
        self.registry = MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"serve.{name}")
            for name in (
                "submitted", "accepted", "rejected_full",
                "rejected_draining", "dedup_coalesced", "cache_hits",
                "executed", "completed", "failed", "requeued",
                "lease_expired", "disconnects_injected", "resumed",
            )
        }
        self._service_ms = self.registry.histogram("serve.service_ms")
        self._draining = False
        self._drained = False
        self._started_at = time.monotonic()
        self._seq = 0
        self._est_cell_seconds = 1.0
        #: cell key -> delivery attempts seen by the disconnect fault.
        self._disconnect_counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._worker_tasks: list = []
        self._reaper_task: Optional[asyncio.Task] = None
        self._writers: set = set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        """Open the journal (replaying if resuming), the listener and
        the worker pool."""
        pending = []
        if self.settings.journal_path:
            if self.settings.resume:
                journal_mod.compact(self.settings.journal_path)
                pending = journal_mod.pending_jobs(self.settings.journal_path)
            self.journal = Journal(self.settings.journal_path,
                                   fsync=self.settings.journal_fsync)
        self._pool = ThreadPoolExecutor(
            max_workers=self.settings.workers,
            thread_name_prefix="serve-cell",
        )
        for record in pending:
            await self._restore_job(record)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.settings.host,
            port=self.settings.port,
            limit=MAX_LINE_BYTES,
        )
        self._worker_tasks = [
            asyncio.ensure_future(self._worker(f"w{index}"))
            for index in range(self.settings.workers)
        ]
        self._reaper_task = asyncio.ensure_future(self._reaper())

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def drain(self) -> None:
        """Graceful shutdown: stop intake, finish accepted work, journal
        the clean-shutdown marker, close everything."""
        if self._draining:
            return
        self._draining = True
        await self.queue.close()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        if self._reaper_task is not None:
            self._reaper_task.cancel()
        # Give waiting connection handlers a tick to deliver results.
        await asyncio.sleep(0.05)
        if self.journal is not None:
            self.journal.append({"rec": "drain"})
            self.journal.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._close_lingering_connections()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._drained = True

    async def abort(self) -> None:
        """Abrupt shutdown (test stand-in for ``kill -9``): no drain
        record, no backlog flush — the journal must carry the state."""
        for task in self._worker_tasks:
            task.cancel()
        if self._reaper_task is not None:
            self._reaper_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._close_lingering_connections()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()

    def _close_lingering_connections(self) -> None:
        """EOF any still-open client connections so their handler tasks
        unwind with the loop still running."""
        for writer in list(self._writers):
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass

    # -- job intake --------------------------------------------------------

    def _next_job_id(self) -> str:
        self._seq += 1
        return f"j-{self._seq}"

    async def _restore_job(self, record: Dict[str, Any]) -> None:
        """Re-queue one journaled accepted-but-unfinished job."""
        job_id = record.get("job", self._next_job_id())
        # Keep fresh ids clear of replayed ones.
        try:
            self._seq = max(self._seq, int(str(job_id).rsplit("-", 1)[-1]))
        except ValueError:
            pass
        try:
            cell = build_cell(record["cell"])
        except (KeyError, ReproError, ValueError) as error:
            if self.journal is not None:
                self.journal.append({
                    "rec": "done", "job": job_id, "ok": False,
                    "reason": f"unreplayable: {error}",
                })
            return
        priority = record.get("priority", "batch")
        if priority not in LANES:
            priority = "batch"
        job = Job(id=str(job_id), cell=cell, spec=dict(record["cell"]),
                  priority=priority)
        self.jobs[job.id] = job
        self.inflight[job.key] = job
        await self.queue.restore(job)
        self._counters["resumed"].inc()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "type": "error", "message": "wire line too long",
                    })
                    break
                if not line:
                    break
                try:
                    message = decode(line)
                except ConfigError as error:
                    await self._send(writer, {
                        "type": "error", "message": str(error),
                    })
                    continue
                if not await self._dispatch(message, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    message: Dict[str, Any]) -> None:
        writer.write(encode(message))
        await writer.drain()

    async def _dispatch(self, message: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one message; False closes the connection."""
        kind = message.get("type")
        if kind == "submit":
            return await self._handle_submit(message, writer)
        if kind == "health":
            await self._send(writer, self._health())
            return True
        if kind == "status":
            await self._send(writer, self._status())
            return True
        if kind == "stats":
            await self._send(writer, self._stats())
            return True
        if kind == "drain":
            await self._send(writer, {"type": "draining"})
            asyncio.ensure_future(self.drain())
            return False
        await self._send(writer, {
            "type": "error", "message": f"unknown message type {kind!r}",
        })
        return True

    async def _handle_submit(self, message: Dict[str, Any],
                             writer: asyncio.StreamWriter) -> bool:
        rid = message.get("id")
        self._counters["submitted"].inc()
        if self._draining:
            self._counters["rejected_draining"].inc()
            await self._send(writer, {
                "type": "rejected", "id": rid, "code": 503,
                "reason": "draining", "retry_after": None,
            })
            return True
        try:
            cell = build_cell(message.get("cell"))
        except (ReproError, ValueError) as error:
            await self._send(writer, {
                "type": "error", "id": rid, "message": str(error),
            })
            return True
        priority = message.get("priority", "batch")
        if priority not in LANES:
            await self._send(writer, {
                "type": "error", "id": rid,
                "message": f"unknown priority {priority!r}; "
                           f"lanes: {', '.join(LANES)}",
            })
            return True
        want_pickle = bool(message.get("pickle"))
        wait = message.get("wait", True)
        key = cell.key

        # Storage fast path: the cache already holds this cell.
        cached = (self.cache.get(key)
                  if self.cache is not None and self.harness.resume
                  else None)
        if cached is not None:
            outcome = CellOutcome(cell=cell, result=cached, cached=True)
            self._counters["cache_hits"].inc()
            await self._send(writer, {
                "type": "accepted", "id": rid, "job": None, "key": key,
                "dedup": False, "cached": True,
            })
            if wait:
                return await self._deliver(writer, rid, outcome, want_pickle)
            return True

        # Dedup: coalesce onto the in-flight job for the same cell.
        job = self.inflight.get(key)
        dedup = job is not None and not job.terminal
        if dedup:
            self._counters["dedup_coalesced"].inc()
        else:
            job = Job(id=self._next_job_id(), cell=cell,
                      spec=dict(message.get("cell") or {}),
                      priority=priority)
            try:
                await self.queue.offer(
                    job, est_cell_seconds=self._est_cell_seconds,
                    workers=self.settings.workers,
                )
            except QueueFullError as error:
                self._counters["rejected_full"].inc()
                await self._send(writer, {
                    "type": "rejected", "id": rid, "code": 429,
                    "reason": str(error),
                    "retry_after": round(error.retry_after, 3),
                })
                return True
            self.jobs[job.id] = job
            self.inflight[key] = job
            self._counters["accepted"].inc()
            if self.journal is not None:
                self.journal.append({
                    "rec": "accepted", "job": job.id, "key": key,
                    "priority": priority, "cell": job.spec,
                })
        await self._send(writer, {
            "type": "accepted", "id": rid, "job": job.id, "key": key,
            "dedup": dedup, "cached": False,
        })
        if not wait:
            return True
        outcome = await job.subscribe()
        return await self._deliver(writer, rid, outcome, want_pickle)

    async def _deliver(self, writer: asyncio.StreamWriter, rid: Any,
                       outcome: CellOutcome, want_pickle: bool) -> bool:
        """Send a terminal outcome — unless a ``disconnect`` chaos fault
        says to drop the connection instead (the client's retry then
        rides the cache/dedup path)."""
        cell = outcome.cell
        if self._maybe_disconnect(cell):
            return False
        if outcome.ok:
            reply = {
                "type": "result", "id": rid, "ok": True,
                "cached": outcome.cached, "attempts": outcome.attempts,
                "result": result_to_wire(outcome.result, want_pickle),
            }
        else:
            reply = {
                "type": "result", "id": rid, "ok": False,
                "cached": False, "attempts": outcome.attempts,
                "error": {
                    "kind": type(outcome.error).__name__,
                    "message": str(outcome.error),
                },
            }
        await self._send(writer, reply)
        return True

    def _maybe_disconnect(self, cell) -> bool:
        count = self._disconnect_counts.get(cell.key, 0) + 1
        fault = active_fault(
            self.harness.all_faults(), cell.workload, cell.config.label,
            cell.seed, count, kinds=SERVICE_KINDS,
        )
        if fault is None:
            return False
        self._disconnect_counts[cell.key] = count
        self._counters["disconnects_injected"].inc()
        return True

    # -- execution ---------------------------------------------------------

    async def _worker(self, name: str) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self.queue.take()
            if job is None:
                return
            if job.terminal:
                continue
            job.state = LEASED
            self.leases.grant(job, name)
            if self.journal is not None:
                self.journal.append({
                    "rec": "leased", "job": job.id, "worker": name,
                })
            self._counters["executed"].inc()
            started = time.monotonic()
            try:
                outcome = await loop.run_in_executor(
                    self._pool,
                    functools.partial(
                        run_cell, job.cell, self.harness, self.cache,
                        attempt_offset=job.harness_attempts,
                    ),
                )
            except Exception as error:  # defensive: run_cell never raises
                outcome = CellOutcome(
                    cell=job.cell, error=ReproError(str(error)), attempts=1,
                )
            job.harness_attempts += max(1, outcome.attempts)
            self.leases.release(job)
            elapsed = time.monotonic() - started
            self._service_ms.observe(int(elapsed * 1000))
            self._est_cell_seconds = (
                0.7 * self._est_cell_seconds + 0.3 * max(elapsed, 0.01)
            )
            if job.terminal:
                continue  # a post-expiry duplicate already finished it
            if outcome.ok:
                self._complete(job, outcome)
            elif (outcome.error is not None and is_retryable(outcome.error)
                    and job.leases < self.settings.max_lease_attempts):
                self._counters["requeued"].inc()
                if self.journal is not None:
                    self.journal.append({
                        "rec": "requeued", "job": job.id,
                        "reason": type(outcome.error).__name__,
                    })
                await self.queue.requeue(job)
            else:
                self._complete(job, outcome)

    def _complete(self, job: Job, outcome: CellOutcome) -> None:
        job.resolve(outcome, DONE if outcome.ok else FAILED)
        if self.inflight.get(job.key) is job:
            del self.inflight[job.key]
        self._counters["completed" if outcome.ok else "failed"].inc()
        if self.journal is not None:
            self.journal.append({
                "rec": "done", "job": job.id, "ok": outcome.ok,
                "cached": outcome.cached,
            })

    async def _reaper(self) -> None:
        """Requeue (or fail) jobs whose leases expired."""
        interval = max(0.05, min(1.0, self.settings.lease_ttl / 4))
        while True:
            await asyncio.sleep(interval)
            for lease in self.leases.reap():
                job = lease.job
                if job.terminal:
                    continue
                self._counters["lease_expired"].inc()
                if job.leases >= self.settings.max_lease_attempts:
                    self._complete(job, CellOutcome(
                        cell=job.cell,
                        error=CellTimeoutError(
                            f"job {job.id} exhausted "
                            f"{job.leases} lease(s)"),
                        attempts=job.harness_attempts,
                    ))
                    continue
                if self.journal is not None:
                    self.journal.append({
                        "rec": "requeued", "job": job.id,
                        "reason": "lease-expired",
                    })
                await self.queue.requeue(job)

    # -- introspection -----------------------------------------------------

    def _job_states(self) -> Dict[str, int]:
        states = {QUEUED: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return states

    def _refresh_gauges(self) -> None:
        depths = self.queue.depths()
        for lane in LANES:
            self.registry.gauge(f"serve.queue_{lane}").set(depths[lane])
        self.registry.gauge("serve.leases_active").set(len(self.leases))
        self.registry.gauge("serve.jobs_inflight").set(len(self.inflight))

    def _health(self) -> Dict[str, Any]:
        return {
            "type": "health",
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "uptime": round(time.monotonic() - self._started_at, 3),
            "jobs": len(self.jobs),
            "leases": len(self.leases),
        }

    def _status(self) -> Dict[str, Any]:
        return {
            "type": "status",
            "draining": self._draining,
            "queues": self.queue.depths(),
            "jobs": self._job_states(),
            "leases": len(self.leases),
            "lease_expirations": self.leases.expirations,
            "est_cell_seconds": round(self._est_cell_seconds, 4),
        }

    def _stats(self) -> Dict[str, Any]:
        self._refresh_gauges()
        reply: Dict[str, Any] = {
            "type": "stats",
            "metrics": self.registry.snapshot(),
        }
        if self.cache is not None:
            reply["cache"] = {
                "hits": self.cache.hits, "misses": self.cache.misses,
                "corrupt_swallowed": self.cache.corrupt_swallowed,
            }
        return reply


async def run_server(settings: ServeSettings,
                     install_signal_handlers: bool = True) -> None:
    """Start a server and run it until drained (the CLI entry point).

    SIGTERM and SIGINT trigger a graceful drain: intake stops, accepted
    cells finish, the journal gets its clean-shutdown marker.
    """
    server = CampaignServer(settings)
    await server.start()
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.drain())
            )
    print(f"loopsim serve: listening on "
          f"{settings.host}:{server.port}", flush=True)
    serve_task = asyncio.ensure_future(server.serve_forever())
    while not server._drained:
        await asyncio.sleep(0.1)
    serve_task.cancel()
    print("loopsim serve: drained, bye", flush=True)
