"""Crash-safe job journal: append-only JSONL, replayable on restart.

The server appends one record per job-lifecycle transition::

    {"rec": "accepted", "job": "j-3", "key": "...", "priority": "batch",
     "cell": {...spec...}, "t": 12.5}
    {"rec": "leased",   "job": "j-3", "worker": "w0", "t": 12.6}
    {"rec": "requeued", "job": "j-3", "reason": "lease-expired", ...}
    {"rec": "done",     "job": "j-3", "ok": true, "cached": false, ...}
    {"rec": "drain",    "t": 99.0}

Writes are flushed per record (and optionally fsynced), so after a
``kill -9`` the journal holds every accepted job; replay re-queues the
accepted-but-not-done set and a resumed server finishes them into the
content-addressed result cache.  A torn final line (the crash landed
mid-write) parses as garbage and is skipped — by construction it can
only be the very last record, and an ``accepted`` record that never
fully hit the disk was never acknowledged to a client either.

Replay is deliberately dumb: it never trusts ``leased`` records as
progress (the lease died with the process) — only ``done`` retires a
job.  :func:`compact` rewrites the journal to just the pending
``accepted`` records so a long-lived service's journal stays bounded by
its backlog, not its history.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union


class Journal:
    """Append-only JSONL writer with per-record durability."""

    def __init__(self, path: Union[str, Path], fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self.records_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (stamped with a wall-clock ``t``)."""
        record = dict(record)
        record.setdefault("t", time.time())
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All parseable records in a journal, in order.

    Unparseable lines are skipped (the torn tail of a crashed writer);
    a missing file reads as an empty journal.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "rec" in record:
                records.append(record)
    return records


def pending_jobs(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The ``accepted`` records with no matching ``done``, in order.

    This is the at-least-once replay set: a job that was accepted (and
    acknowledged to a client) but not completed before the crash.  Jobs
    that were mid-lease count as pending — their lease died with the
    server and the content-addressed cache makes re-execution free if
    the result actually landed before the crash.
    """
    accepted: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for record in read_records(path):
        kind = record.get("rec")
        job = record.get("job")
        if kind == "accepted" and isinstance(job, str):
            if job not in accepted:
                order.append(job)
            accepted[job] = record
        elif kind == "done" and isinstance(job, str):
            accepted.pop(job, None)
    return [accepted[job] for job in order if job in accepted]


def compact(path: Union[str, Path]) -> int:
    """Atomically rewrite the journal to only its pending jobs.

    Returns the number of records kept.  Called by a resuming server
    before it starts appending again, so the journal's size tracks the
    backlog rather than growing without bound.
    """
    path = Path(path)
    pending = pending_jobs(path)
    if not path.exists():
        return 0
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in pending:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(pending)


def last_drain(path: Union[str, Path]) -> Optional[float]:
    """Timestamp of the journal's final ``drain`` record, if it ends
    with one (i.e. the previous shutdown was clean)."""
    records = read_records(path)
    if records and records[-1].get("rec") == "drain":
        return records[-1].get("t")
    return None
