"""Per-job leases: the at-least-once execution contract.

A worker takes a job only under a :class:`Lease` with a wall-clock
deadline.  If the lease expires before the worker reports back — the
worker wedged somewhere the harness watchdog doesn't cover, or the
executor thread died — the reaper re-queues the job for another worker.
Execution is therefore *at least once*; it is safe because results are
content-addressed (a duplicate execution writes the same bytes to the
same cache key) and job completion is idempotent (first terminal
outcome wins, see :meth:`~repro.serve.queue.Job.resolve`).

The clock is injectable so tests can expire leases without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.serve.queue import Job


@dataclass
class Lease:
    """One worker's claim on one job."""

    job: Job
    worker: str
    granted_at: float
    deadline: float
    #: Set when the reaper expired this lease (the job went back to the
    #: queue); the original worker's late result is then advisory only.
    expired: bool = False

    def remaining(self, now: float) -> float:
        return self.deadline - now


class LeaseManager:
    """Grant, release and reap the live leases."""

    def __init__(self, ttl: float = 60.0,
                 clock: Callable[[], float] = time.monotonic):
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.ttl = ttl
        self.clock = clock
        self._leases: Dict[str, Lease] = {}  # job id -> lease
        self.granted = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._leases)

    def active(self) -> List[Lease]:
        return list(self._leases.values())

    def grant(self, job: Job, worker: str) -> Lease:
        """Lease ``job`` to ``worker`` for ``ttl`` seconds."""
        now = self.clock()
        lease = Lease(job=job, worker=worker, granted_at=now,
                      deadline=now + self.ttl)
        self._leases[job.id] = lease
        self.granted += 1
        job.leases += 1
        return lease

    def renew(self, job: Job) -> None:
        """Extend a live lease by a fresh ttl (long-running cells)."""
        lease = self._leases.get(job.id)
        if lease is not None and not lease.expired:
            lease.deadline = self.clock() + self.ttl

    def release(self, job: Job) -> bool:
        """Drop the lease at completion; False if it had already been
        expired out from under the worker."""
        lease = self._leases.pop(job.id, None)
        return lease is not None and not lease.expired

    def reap(self) -> List[Lease]:
        """Pop every overdue lease (marked ``expired``) for requeueing."""
        now = self.clock()
        overdue = [lease for lease in self._leases.values()
                   if lease.deadline <= now]
        for lease in overdue:
            lease.expired = True
            del self._leases[lease.job.id]
            self.expirations += 1
        return overdue
