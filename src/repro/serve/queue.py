"""Job model and bounded priority lanes with explicit load shedding.

A :class:`Job` is one accepted simulation cell travelling through the
service::

    queued -> leased -> done | failed
       ^         |
       +---------+   (retryable failure / expired lease: requeued)

The :class:`JobQueue` holds two bounded lanes — ``interactive`` ahead of
``batch`` — and *rejects* (:class:`QueueFullError`, carrying a
``retry_after`` hint) rather than buffering without bound: memory growth
under overload becomes the client's backoff problem, not the server's
OOM.  Requeues bypass the bound (the job was already accepted; dropping
it would break the at-least-once promise) and go to the front of their
lane so retried work is not starved by fresh arrivals.

The queue is asyncio-native: ``take()`` parks workers on a condition
variable; ``close()`` wakes them with ``None`` so drain can join them.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ReproError
from repro.harness import Cell
from repro.serve.protocol import LANES

#: Job lifecycle states.
QUEUED, LEASED, DONE, FAILED = "queued", "leased", "done", "failed"


class QueueFullError(ReproError):
    """The target lane is at capacity; retry after ``retry_after``s."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One accepted cell and everything the service knows about it."""

    id: str
    cell: Cell
    spec: Dict[str, Any]          # wire spec, journaled for replay
    priority: str = "batch"
    state: str = QUEUED
    #: Lease grants consumed (1-based once leased).
    leases: int = 0
    #: Harness attempts consumed across all leases — the fault
    #: machinery's global attempt offset (see ``run_cell``).
    harness_attempts: int = 0
    #: Terminal outcome (a ``CellOutcome``) once done/failed.
    outcome: Optional[Any] = None
    #: Futures resolved with the outcome at completion; one per waiting
    #: client request (deduplicated submits all land here).
    waiters: List["asyncio.Future"] = field(default_factory=list)

    @property
    def key(self) -> str:
        """The cell's content address (dedup identity)."""
        return self.cell.key

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def subscribe(self) -> "asyncio.Future":
        """A future resolved with this job's terminal outcome."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if self.terminal:
            future.set_result(self.outcome)
        else:
            self.waiters.append(future)
        return future

    def resolve(self, outcome: Any, state: str) -> None:
        """Move to a terminal state and wake every waiter (idempotent:
        a late second completion of a requeued job is ignored)."""
        if self.terminal:
            return
        self.state = state
        self.outcome = outcome
        waiters, self.waiters = self.waiters, []
        for future in waiters:
            if not future.done():
                future.set_result(outcome)


class JobQueue:
    """Two bounded priority lanes feeding the worker pool."""

    def __init__(self, lane_depth: int = 64):
        if lane_depth < 1:
            raise ValueError("lane depth must be >= 1")
        self.lane_depth = lane_depth
        self._lanes: Dict[str, Deque[Job]] = {lane: deque() for lane in LANES}
        self._condition = asyncio.Condition()
        self._closed = False
        self.rejected = 0

    def depth(self, lane: str) -> int:
        return len(self._lanes[lane])

    def depths(self) -> Dict[str, int]:
        return {lane: len(jobs) for lane, jobs in self._lanes.items()}

    def __len__(self) -> int:
        return sum(len(jobs) for jobs in self._lanes.values())

    def retry_after(self, lane: str, est_cell_seconds: float,
                    workers: int) -> float:
        """Backoff hint for a shed request: roughly the time for the
        lane's current backlog to clear."""
        backlog = self.depth(lane) + 1
        return max(0.1, backlog * est_cell_seconds / max(1, workers))

    async def offer(self, job: Job, est_cell_seconds: float = 1.0,
                    workers: int = 1) -> None:
        """Enqueue a fresh job, or shed it with :class:`QueueFullError`."""
        lane = job.priority
        if lane not in self._lanes:
            raise ValueError(f"unknown priority lane {lane!r}")
        async with self._condition:
            if len(self._lanes[lane]) >= self.lane_depth:
                self.rejected += 1
                raise QueueFullError(
                    f"{lane} lane full ({self.lane_depth} queued)",
                    retry_after=self.retry_after(
                        lane, est_cell_seconds, workers),
                )
            job.state = QUEUED
            self._lanes[lane].append(job)
            self._condition.notify()

    async def requeue(self, job: Job) -> None:
        """Put an already-accepted job back at the front of its lane
        (never shed: acceptance was acknowledged)."""
        async with self._condition:
            job.state = QUEUED
            self._lanes[job.priority].appendleft(job)
            self._condition.notify()

    async def restore(self, job: Job) -> None:
        """Append a journal-replayed job in arrival order, bypassing the
        bound (it was accepted by a previous server incarnation)."""
        async with self._condition:
            job.state = QUEUED
            self._lanes[job.priority].append(job)
            self._condition.notify()

    async def take(self) -> Optional[Job]:
        """The next job, interactive lane first; None once closed."""
        async with self._condition:
            while True:
                for lane in LANES:
                    if self._lanes[lane]:
                        return self._lanes[lane].popleft()
                if self._closed:
                    return None
                await self._condition.wait()

    async def close(self) -> None:
        """Stop the queue: blocked and future ``take()`` calls get None
        once the lanes are empty."""
        async with self._condition:
            self._closed = True
            self._condition.notify_all()
