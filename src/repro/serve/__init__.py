"""repro.serve — the fault-tolerant async campaign service.

Simulation-as-a-service on top of :mod:`repro.harness`: an asyncio
TCP/JSON-lines server (``loopsim serve``) with request deduplication
against the content-addressed result cache, bounded priority lanes with
explicit load shedding, per-job leases for at-least-once execution, a
crash-safe journal with ``--resume`` replay, graceful drain on SIGTERM,
and health/stats endpoints wired to :mod:`repro.obs` metrics — plus the
thin synchronous client behind ``loopsim submit``.

The robustness story is chaos-tested end to end by extending the
``REPRO_FAULTS`` machinery (:mod:`repro.harness.faults`) with
service-level fault kinds (``slow``, ``disconnect``) on top of the
worker-level ones (``hang``, ``crash``, ``transient``); see
``docs/service.md``.
"""

from repro.serve.client import (
    CampaignClient,
    Reply,
    ServiceError,
    ServiceUnavailableError,
)
from repro.serve.journal import Journal, compact, pending_jobs, read_records
from repro.serve.leases import Lease, LeaseManager
from repro.serve.protocol import (
    LANES,
    PROTOCOL_VERSION,
    build_cell,
    make_cell_spec,
)
from repro.serve.queue import Job, JobQueue, QueueFullError
from repro.serve.server import CampaignServer, ServeSettings, run_server

__all__ = [
    "CampaignClient",
    "Reply",
    "ServiceError",
    "ServiceUnavailableError",
    "Journal",
    "read_records",
    "pending_jobs",
    "compact",
    "Lease",
    "LeaseManager",
    "Job",
    "JobQueue",
    "QueueFullError",
    "CampaignServer",
    "ServeSettings",
    "run_server",
    "build_cell",
    "make_cell_spec",
    "LANES",
    "PROTOCOL_VERSION",
]
