"""Fault injection for exercising the harness's own recovery paths.

A :class:`FaultSpec` targets cells by workload, config label and seed
and injects one of five failure modes into matching cells:

* ``hang`` — the worker sleeps forever; the watchdog must kill it
  (requires process isolation; the inline executor degrades it to a
  transient error so a test run can never actually wedge).
* ``crash`` — the worker process dies with ``os._exit`` (process mode)
  or raises :class:`~repro.errors.CellCrashError` (inline mode).
* ``transient`` — raises :class:`~repro.errors.TransientCellError`.
* ``slow`` — sleeps ``delay_s`` seconds (bounded by
  :data:`SLOW_DELAY_CAP`) before the cell runs, then lets it proceed.
  Drives latency/timeout chaos: under a ``--cell-timeout`` shorter than
  the delay the watchdog fires, otherwise the cell just finishes late.
* ``disconnect`` — a *service-level* fault: :mod:`repro.serve` drops the
  client connection instead of delivering a matching cell's result.
  Worker-side it is a no-op (the simulation itself is untouched).

``attempts`` bounds how many attempts the fault fires on: ``attempts=1``
models a transient glitch (first try fails, the retry succeeds);
a large value models a persistent failure the harness must give up on.

Specs come from the ``REPRO_FAULTS`` environment variable (which also
reaches worker subprocesses for free) or programmatically via
``HarnessSettings.faults``.  The string format is ``;``-separated specs
of ``kind|workload|config_label|seed|attempts|delay_s`` where trailing
fields may be omitted and ``*`` matches anything (``delay_s`` only
means something for ``slow``), e.g.::

    REPRO_FAULTS="hang|swim|Base:5_5|0|1;crash|compress;slow|*|*|*|2|0.5"
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import CellCrashError, ConfigError, TransientCellError

#: Environment variable holding fault specs.
FAULTS_ENV = "REPRO_FAULTS"

#: The injected-crash exit code (distinctive, for failure reports).
CRASH_EXIT_CODE = 86

KINDS = ("hang", "crash", "transient", "slow", "disconnect")

#: Kinds the cell executor fires inside (or around) a worker.
WORKER_KINDS = ("hang", "crash", "transient", "slow")

#: Kinds interpreted by the service layer (:mod:`repro.serve`), not the
#: worker: the simulation runs normally, the *delivery* is sabotaged.
SERVICE_KINDS = ("disconnect",)

#: Hard ceiling on an injected ``slow`` delay, so a typo'd spec cannot
#: wedge a campaign for hours (the point of ``slow`` is to race a
#: watchdog measured in seconds).
SLOW_DELAY_CAP = 30.0


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault, targeted at matching cells."""

    kind: str
    workload: str = "*"
    config_label: str = "*"
    seed: str = "*"
    #: Fire on attempt numbers <= this (1-based).
    attempts: int = 1
    #: Sleep before the cell runs (``slow`` only; capped at
    #: :data:`SLOW_DELAY_CAP` when triggered).
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.attempts < 1:
            raise ConfigError("fault attempts must be >= 1")
        if self.delay_s < 0:
            raise ConfigError("fault delay_s cannot be negative")

    def matches(self, workload: str, config_label: str, seed: int,
                attempt: int) -> bool:
        """Whether this fault fires for a cell on a given attempt."""
        return (
            attempt <= self.attempts
            and self.workload in ("*", workload)
            and self.config_label in ("*", config_label)
            and self.seed in ("*", str(seed))
        )

    def encode(self) -> str:
        """The spec in ``REPRO_FAULTS`` string form."""
        fields = [self.kind, self.workload, self.config_label, self.seed,
                  str(self.attempts)]
        if self.kind == "slow" or self.delay_s:
            fields.append(repr(self.delay_s))
        return "|".join(fields)


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS``-style spec string."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = chunk.split("|")
        if len(fields) > 6:
            raise ConfigError(f"malformed fault spec {chunk!r}")
        kind, rest = fields[0], fields[1:]
        kwargs = dict(zip(("workload", "config_label", "seed"), rest[:3]))
        if len(rest) > 3:
            try:
                kwargs["attempts"] = int(rest[3])
            except ValueError:
                raise ConfigError(f"malformed fault attempts in {chunk!r}")
        if len(rest) > 4:
            try:
                kwargs["delay_s"] = float(rest[4])
            except ValueError:
                raise ConfigError(f"malformed fault delay in {chunk!r}")
        specs.append(FaultSpec(kind=kind, **kwargs))
    return tuple(specs)


def env_faults() -> Tuple[FaultSpec, ...]:
    """Fault specs from the environment (empty when unset)."""
    text = os.environ.get(FAULTS_ENV, "")
    return parse_faults(text) if text else ()


def active_fault(
    faults: Sequence[FaultSpec],
    workload: str,
    config_label: str,
    seed: int,
    attempt: int,
    kinds: Optional[Sequence[str]] = None,
) -> Optional[FaultSpec]:
    """The first configured fault matching a cell attempt, if any.

    ``kinds`` restricts the search: the cell executor asks for
    :data:`WORKER_KINDS` and the service layer for :data:`SERVICE_KINDS`,
    so one ``REPRO_FAULTS`` string can arm both layers at once.
    """
    for spec in faults:
        if kinds is not None and spec.kind not in kinds:
            continue
        if spec.matches(workload, config_label, seed, attempt):
            return spec
    return None


def trigger(spec: FaultSpec, isolated: bool) -> None:
    """Fire an injected fault.

    ``isolated`` says whether we are inside a killable worker process;
    only then may a hang actually hang or a crash actually kill the
    interpreter.  ``slow`` sleeps and returns (the cell then runs);
    ``disconnect`` is a worker-side no-op — it only means something to
    the service layer, which checks for it at result-delivery time.
    """
    detail = f"injected {spec.kind} fault ({spec.encode()})"
    if spec.kind == "disconnect":
        return
    if spec.kind == "slow":
        time.sleep(min(spec.delay_s, SLOW_DELAY_CAP))
        return
    if spec.kind == "transient":
        raise TransientCellError(detail)
    if spec.kind == "crash":
        if isolated:
            os._exit(CRASH_EXIT_CODE)
        raise CellCrashError(detail, exitcode=CRASH_EXIT_CODE)
    # hang
    if isolated:
        while True:  # the watchdog will kill this process
            time.sleep(3600)
    raise TransientCellError(detail + " (degraded to transient: no isolation)")
