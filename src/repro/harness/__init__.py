"""Fault-tolerant experiment harness.

Campaign-scale experiment runs (the paper's figures and ablations are
dozens to thousands of simulation cells) route through this package for
process isolation, hang watchdogs, retry with capped backoff, persistent
content-addressed caching with resume, and fault injection for testing
the recovery paths themselves.  See DESIGN.md §"Experiment harness".
"""

from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigError,
    HangSnapshot,
    ReproError,
    SimulationHangError,
    TransientCellError,
    VerificationError,
    WorkloadError,
    is_retryable,
)
from repro.harness.cache import (
    CACHE_DIR_ENV,
    CACHE_VERSION,
    ResultCache,
    cell_key,
    default_cache_dir,
)
from repro.harness.executor import (
    Cell,
    CellFailure,
    CellOutcome,
    HarnessSettings,
    default_harness,
    execute_cells,
    run_cell,
    set_default_harness,
)
from repro.harness.faults import (
    FAULTS_ENV,
    SERVICE_KINDS,
    SLOW_DELAY_CAP,
    WORKER_KINDS,
    FaultSpec,
    active_fault,
    env_faults,
    parse_faults,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "WorkloadError",
    "SimulationHangError",
    "CellTimeoutError",
    "CellCrashError",
    "TransientCellError",
    "VerificationError",
    "HangSnapshot",
    "is_retryable",
    "ResultCache",
    "cell_key",
    "default_cache_dir",
    "CACHE_VERSION",
    "CACHE_DIR_ENV",
    "Cell",
    "CellFailure",
    "CellOutcome",
    "HarnessSettings",
    "default_harness",
    "set_default_harness",
    "execute_cells",
    "run_cell",
    "FaultSpec",
    "parse_faults",
    "env_faults",
    "active_fault",
    "FAULTS_ENV",
    "WORKER_KINDS",
    "SERVICE_KINDS",
    "SLOW_DELAY_CAP",
]
