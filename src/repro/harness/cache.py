"""Persistent, content-addressed result cache.

Every simulation cell — one (workload, :class:`~repro.core.CoreConfig`,
:class:`~repro.experiments.runner.ExperimentSettings`, seed) tuple — is
addressed by a stable SHA-256 digest of its full parameterisation, so a
campaign's results survive process death and a re-run only executes the
cells that are missing (the ``--resume`` workflow).

Layout on disk::

    <cache_dir>/
        ab/
            ab3f9c... .pkl     one pickled payload per cell

Payloads are pickled dicts carrying a format version plus enough
metadata (workload, config label, seed) to audit the cache with a shell
one-liner.  A corrupt or version-mismatched entry is treated as a miss
and quietly removed; the cache is an accelerator, never a correctness
dependency.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Bump when the payload layout (or anything feeding cell keys) changes
#: incompatibly; old entries then read as misses.
#: v2: CoreStats grew ``obs_snapshot`` — v1 pickles lack the attribute.
#: v3: cell keys fold in the workload's *content* signature, so a
#: retuned profile, an edited phase schedule, or a recaptured trace
#: file can never alias an entry computed from different content.
#: v4: ``ExperimentSettings`` grew a ``backend`` field (kernel backend
#: selection) and ``SimResult`` grew backend/sampling attributes — the
#: settings repr feeding keys changed shape, and v3 payloads lack the
#: new result fields.
#: v5: ``CoreConfig`` grew ``ports`` / ``ssr_threshold`` (mechanism
#: design space) and ``CoreStats`` grew ``port_stalls`` — the config
#: repr feeding keys changed shape, and v4 payloads lack the new field.
CACHE_VERSION = 5

#: The exception set a corrupt or cross-version cache entry can raise
#: while being read: I/O failures, truncated pickles (EOFError /
#: UnpicklingError / ValueError / IndexError from the pickle VM), and
#: payloads whose classes moved or vanished between versions
#: (AttributeError / ImportError during unpickling).  Anything outside
#: this set is a real bug and must propagate.
_CORRUPT_ENTRY_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    IndexError,
    pickle.UnpicklingError,
    AttributeError,
    ImportError,
)

#: Environment variable consulted for a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory used when none is configured explicitly."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "loopsim"


def cell_key(workload: str, config: Any, settings: Any, seed: int) -> str:
    """Stable content hash of one simulation cell.

    ``CoreConfig`` and ``ExperimentSettings`` are frozen dataclasses, so
    their ``repr`` is a complete, deterministic rendering of every field
    (including nested sub-configs and enums) — exactly the property a
    content address needs.  ``settings.seeds`` is deliberately excluded
    via the explicit ``seed`` so a cell's identity does not depend on
    which campaign requested it.

    The workload contributes both its *name* (human-auditable) and its
    resolved *content signature*
    (:func:`repro.scenarios.workload_signature`): profile knobs, phase
    schedules, and trace-file bytes all feed the digest, so same-named
    workloads with different content occupy different cells.
    """
    from repro.scenarios import workload_signature

    settings_repr = repr(settings).replace(repr(getattr(settings, "seeds", ())), "()")
    text = "|".join(
        (
            str(CACHE_VERSION),
            workload,
            workload_signature(workload),
            repr(config),
            settings_repr,
            str(seed),
        )
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-backed cell cache rooted at one directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: corrupt entries swallowed as misses (cache.corrupt_swallowed)
        self.corrupt_swallowed = 0

    def path(self, key: str) -> Path:
        """On-disk location of a cell's payload."""
        return self.root / key[:2] / f"{key}.pkl"

    def metrics_path(self, key: str) -> Path:
        """On-disk location of a cell's JSON metric snapshot."""
        return self.root / key[:2] / f"{key}.metrics.json"

    def put_metrics(self, key: str, snapshot: Dict[str, Any]) -> None:
        """Persist a JSON metric snapshot beside the cell's payload.

        The snapshot is auditable with shell tools (``jq``) without
        unpickling anything; failures to write are the caller's to
        swallow — the cache is an accelerator, never a dependency.
        """
        import json

        path = self.metrics_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        """The validated payload dict for ``key``, or None (a miss).

        Both :meth:`get` and :meth:`__contains__` route through here, so
        they agree on what "present" means (readable, unpicklable,
        current ``CACHE_VERSION``) and both count hit/miss stats.
        """
        path = self.path(key)
        stat: Optional[os.stat_result] = None
        try:
            with path.open("rb") as handle:
                stat = os.fstat(handle.fileno())
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except _CORRUPT_ENTRY_ERRORS:
            # Corrupt entry (truncated write, unpicklable across
            # versions, unreadable permissions, ...): treat as a miss;
            # drop it if we can prove it is still the file we read.
            # The set is deliberately narrow — a KeyboardInterrupt or a
            # genuine bug in a payload's __setstate__ must propagate,
            # not be eaten as a cache miss.
            self.misses += 1
            self.corrupt_swallowed += 1
            self._remove_corrupt(path, stat)
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            # A stale-version entry is a miss but not garbage: leave it
            # for put() to overwrite atomically after recomputation.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _remove_corrupt(path: Path, stat: Optional[os.stat_result]) -> None:
        """Best-effort removal of a corrupt entry, tolerant of racing
        writers.

        A concurrent ``put`` may ``os.replace`` a fresh payload in at
        any moment, so the unlink only fires when the path still refers
        to the inode we actually read the garbage from; a rewrite (new
        inode) or a racing reader's earlier unlink is left alone.  When
        the entry could not even be opened (``stat`` is None, e.g. an
        unreadable-permissions file) nothing is removed — ``put``'s
        atomic replace supersedes it after recomputation.  Never raises.
        """
        if stat is None:
            return
        try:
            current = os.stat(path)
            if (current.st_dev, current.st_ino) != (stat.st_dev, stat.st_ino):
                return  # a writer already replaced the entry; keep it
            path.unlink()
        except OSError:
            pass

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None on any kind of miss."""
        payload = self._load(key)
        if payload is None:
            return None
        return payload.get("result")

    def put(self, key: str, result: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically persist ``result`` under ``key``."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "key": key, "result": result}
        if meta:
            payload.update(meta)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` holds a *valid* entry.

        Validates exactly like :meth:`get` (payload shape and
        ``CACHE_VERSION``), so resume and request-deduplication logic
        never treat a stale or corrupt entry as present, and the probe
        is counted in the hit/miss stats.
        """
        return self._load(key) is not None

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
