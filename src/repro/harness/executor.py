"""Fault-tolerant cell execution: isolation, watchdog, retries, cache.

The unit of work is a :class:`Cell` — one (workload, config, settings,
seed) simulation.  :func:`execute_cells` runs a batch of cells and
*always returns*: every cell ends in a :class:`CellOutcome` carrying
either a :class:`~repro.core.SimResult` or the classified error that
defeated it, so campaigns degrade to partial results instead of
aborting (see :mod:`repro.experiments.runner` for the campaign layer).

Execution modes
---------------
* **inline** — the cell runs in this process.  No timeout protection,
  zero overhead; the default for interactive single runs and the test
  suite.
* **process** — the cell runs in a forked worker with a wall-clock
  watchdog; a hung worker is killed and reported as
  :class:`~repro.errors.CellTimeoutError`, a dead one as
  :class:`~repro.errors.CellCrashError`.

``isolate="auto"`` picks process mode whenever a timeout or ``jobs > 1``
asks for it.  Retryable failures (timeout, crash, transient) are retried
``retries`` times with capped exponential backoff; deterministic ones
(config/workload errors, simulation deadlocks) fail immediately.

With a cache directory configured, finished cells are persisted through
:class:`~repro.harness.cache.ResultCache` and later campaigns resume by
re-executing only the missing cells.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CellCrashError,
    CellTimeoutError,
    ConfigError,
    HangSnapshot,
    ReproError,
    SimulationHangError,
    TransientCellError,
    VerificationError,
    WorkloadError,
    is_retryable,
)
from repro.harness.cache import ResultCache, cell_key, default_cache_dir
from repro.harness.faults import (
    WORKER_KINDS,
    FaultSpec,
    active_fault,
    env_faults,
    trigger,
)


@dataclass(frozen=True)
class HarnessSettings:
    """How a campaign's cells are executed and recovered."""

    #: Concurrent worker slots (process mode when > 1).
    jobs: int = 1
    #: Per-cell wall-clock budget in seconds (None = unbounded).
    cell_timeout: Optional[float] = None
    #: Re-runs granted to retryably-failed cells.
    retries: int = 2
    #: First backoff delay in seconds; doubles per retry.
    backoff_base: float = 0.25
    #: Backoff ceiling in seconds.
    backoff_cap: float = 4.0
    #: "auto" | "process" | "inline".
    isolate: str = "auto"
    #: Persistent cache root (None = in-memory memoisation only).
    cache_dir: Optional[str] = None
    #: Read previously cached cells (writes happen whenever cache_dir
    #: is set; turning this off forces recomputation).
    resume: bool = True
    #: Programmatic fault injections (merged with $REPRO_FAULTS).
    faults: Tuple[FaultSpec, ...] = ()
    #: Run every freshly-computed cell under the verification layer
    #: (:mod:`repro.verify`): golden retire model plus event-stream
    #: invariant checkers.  Violations surface as a non-retryable
    #: :class:`~repro.errors.VerificationError`.  An execution policy,
    #: not part of the cell's identity — cached results are returned
    #: as-is without re-verification.
    verify: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if self.retries < 0:
            raise ConfigError("retries cannot be negative")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigError("cell timeout must be positive")
        if self.isolate not in ("auto", "process", "inline"):
            raise ConfigError(f"unknown isolation mode {self.isolate!r}")

    @property
    def uses_processes(self) -> bool:
        """Whether cells run in worker subprocesses."""
        if self.isolate == "process":
            return True
        if self.isolate == "inline":
            return False
        return self.jobs > 1 or self.cell_timeout is not None

    def all_faults(self) -> Tuple[FaultSpec, ...]:
        """Configured plus environment-specified faults."""
        return self.faults + env_faults()

    def replace(self, **changes) -> "HarnessSettings":
        """A modified copy."""
        return replace(self, **changes)


_DEFAULT_HARNESS = HarnessSettings()


def default_harness() -> HarnessSettings:
    """The process-wide harness used when a caller passes None."""
    return _DEFAULT_HARNESS


def set_default_harness(settings: HarnessSettings) -> HarnessSettings:
    """Install a new process-wide default harness; returns the old one."""
    global _DEFAULT_HARNESS
    previous = _DEFAULT_HARNESS
    _DEFAULT_HARNESS = settings
    return previous


@dataclass(frozen=True)
class Cell:
    """One (workload, config, settings, seed) simulation."""

    workload: str
    config: Any  # CoreConfig (typed loosely to keep this module core-free)
    settings: Any  # ExperimentSettings
    seed: int

    @property
    def key(self) -> str:
        """Content address of this cell in the persistent cache."""
        return cell_key(self.workload, self.config, self.settings, self.seed)

    @property
    def label(self) -> str:
        """Human-readable cell identity for reports."""
        return f"{self.workload}/{self.config.label}/seed{self.seed}"


@dataclass(frozen=True)
class CellFailure:
    """Terminal failure record for one cell (after retries)."""

    workload: str
    config_label: str
    seed: int
    kind: str
    message: str
    attempts: int

    def describe(self) -> str:
        """One report line."""
        return (
            f"{self.workload}/{self.config_label}/seed{self.seed}: "
            f"{self.kind} after {self.attempts} attempt(s): {self.message}"
        )


@dataclass
class CellOutcome:
    """What happened to one cell: a result, or a classified failure."""

    cell: Cell
    result: Optional[Any] = None  # SimResult on success
    error: Optional[ReproError] = None
    attempts: int = 0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None

    def failure(self) -> CellFailure:
        """This outcome as a failure record (requires ``not ok``)."""
        assert self.error is not None
        return CellFailure(
            workload=self.cell.workload,
            config_label=self.cell.config.label,
            seed=self.cell.seed,
            kind=type(self.error).__name__,
            message=str(self.error),
            attempts=self.attempts,
        )


# --------------------------------------------------------------------------
# Cell execution
# --------------------------------------------------------------------------

def _simulate_cell(cell: Cell, verify: bool = False) -> Any:
    """Run one cell's simulation in the current process."""
    from repro.core.simulator import simulate

    settings = cell.settings
    verifier = None
    if verify:
        from repro.verify import Verifier

        verifier = Verifier()
    result = simulate(
        cell.workload,
        cell.config,
        instructions=settings.instructions,
        warmup=settings.warmup,
        detailed_warmup=settings.detailed_warmup,
        seed=cell.seed,
        verifier=verifier,
        backend=getattr(settings, "backend", "reference"),
    )
    if verifier is not None:
        verifier.raise_if_failed(context=cell.label)
    return result


def _encode_error(error: BaseException) -> Dict[str, Any]:
    """A pipe-safe rendering of a worker-side exception."""
    encoded: Dict[str, Any] = {
        "kind": type(error).__name__ if isinstance(error, ReproError)
        else "CellCrashError",
        "message": str(error) if isinstance(error, ReproError)
        else f"worker raised {type(error).__name__}: {error}",
    }
    snapshot = getattr(error, "snapshot", None)
    if isinstance(snapshot, HangSnapshot):
        encoded["snapshot"] = snapshot
    return encoded


_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        ReproError, ConfigError, WorkloadError,
        SimulationHangError, CellTimeoutError, CellCrashError,
        TransientCellError, VerificationError,
    )
}


def _decode_error(encoded: Dict[str, Any]) -> ReproError:
    """Rebuild a worker-side exception from its pipe rendering."""
    cls = _ERROR_CLASSES.get(encoded["kind"], ReproError)
    if cls is SimulationHangError:
        return SimulationHangError(encoded["message"], encoded.get("snapshot"))
    return cls(encoded["message"])


def _worker_main(
    conn, cell: Cell, fault: Optional[FaultSpec], verify: bool = False
) -> None:
    """Subprocess entry point: run one cell, report through ``conn``."""
    try:
        if fault is not None:
            trigger(fault, isolated=True)
        result = _simulate_cell(cell, verify=verify)
        conn.send(("ok", result))
    except BaseException as error:  # classified on the parent side
        try:
            conn.send(("error", _encode_error(error)))
        except BaseException:
            pass
    finally:
        conn.close()


def _mp_context():
    """Prefer fork (fast, Linux) but survive fork-less platforms."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_isolated(
    cell: Cell,
    fault: Optional[FaultSpec],
    timeout: Optional[float],
    verify: bool = False,
) -> Any:
    """Run one cell attempt in a worker subprocess with a watchdog."""
    ctx = _mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_main, args=(child_conn, cell, fault, verify),
        daemon=True,
    )
    process.start()
    child_conn.close()
    try:
        # poll() wakes on data *or* EOF (worker death), so a crash is
        # noticed immediately rather than after the full timeout.
        if not parent_conn.poll(timeout):
            _kill(process)
            raise CellTimeoutError(
                f"cell {cell.label} exceeded {timeout:.1f}s and was killed",
                timeout=timeout,
            )
        try:
            status, payload = parent_conn.recv()
        except EOFError:
            process.join()
            raise CellCrashError(
                f"cell {cell.label} worker died "
                f"(exit code {process.exitcode})",
                exitcode=process.exitcode,
            )
        process.join()
        if status == "ok":
            return payload
        raise _decode_error(payload)
    finally:
        parent_conn.close()
        if process.is_alive():
            _kill(process)


def _kill(process) -> None:
    """Terminate a worker, escalating to SIGKILL if it lingers."""
    process.terminate()
    process.join(5)
    if process.is_alive():
        process.kill()
        process.join()


def _put_metrics_snapshot(cache: ResultCache, key: str, result: Any) -> None:
    """Persist the cell's JSON metric snapshot; best-effort only."""
    from repro.obs.export import result_snapshot

    try:
        cache.put_metrics(key, result_snapshot(result))
    except OSError:
        pass  # the snapshot is an audit aid, never worth failing a cell


def run_cell(
    cell: Cell,
    harness: Optional[HarnessSettings] = None,
    cache: Optional[ResultCache] = None,
    attempt_offset: int = 0,
) -> CellOutcome:
    """Execute one cell with caching, isolation, watchdog and retries.

    ``attempt_offset`` shifts the attempt numbers shown to the fault
    machinery: a service layer that re-leases a failed job passes the
    attempts already consumed, so an injected fault bounded by
    ``attempts=N`` fires N times *globally* rather than N times per
    lease (otherwise a lease-requeue loop against a first-attempt fault
    would never terminate).  The outcome's ``attempts`` stays local to
    this call.
    """
    harness = harness or default_harness()
    if cache is None and harness.cache_dir is not None:
        cache = ResultCache(harness.cache_dir)
    key = cell.key
    if cache is not None and harness.resume:
        cached = cache.get(key)
        if cached is not None:
            return CellOutcome(cell=cell, result=cached, cached=True)
    faults = harness.all_faults()
    isolated = harness.uses_processes
    attempts = 1 + harness.retries
    error: Optional[ReproError] = None
    for attempt in range(1, attempts + 1):
        fault = active_fault(
            faults, cell.workload, cell.config.label, cell.seed,
            attempt_offset + attempt, kinds=WORKER_KINDS,
        )
        try:
            if isolated:
                result = _run_isolated(
                    cell, fault, harness.cell_timeout, verify=harness.verify
                )
            else:
                if fault is not None:
                    trigger(fault, isolated=False)
                result = _simulate_cell(cell, verify=harness.verify)
        except ReproError as failure:
            error = failure
            if not is_retryable(failure) or attempt == attempts:
                break
            backoff = min(
                harness.backoff_cap,
                harness.backoff_base * (2 ** (attempt - 1)),
            )
            if backoff > 0:
                time.sleep(backoff)
            continue
        except KeyError as failure:
            # A raw KeyError escaping an unisolated worker (workload
            # lookups raise WorkloadError and are classified above).
            error = WorkloadError(str(failure))
            break
        if cache is not None:
            cache.put(
                key,
                result,
                meta={
                    "workload": cell.workload,
                    "config": cell.config.label,
                    "seed": cell.seed,
                    "backend": getattr(result, "backend", "reference"),
                },
            )
            _put_metrics_snapshot(cache, key, result)
        return CellOutcome(cell=cell, result=result, attempts=attempt)
    return CellOutcome(cell=cell, error=error, attempts=attempt)


def execute_cells(
    cells: Sequence[Cell],
    harness: Optional[HarnessSettings] = None,
) -> List[CellOutcome]:
    """Execute a batch of cells, ``jobs`` at a time; never raises.

    Outcomes are returned in input order.  Duplicate cells (same content
    key) are executed once and share the outcome.
    """
    harness = harness or default_harness()
    cache = ResultCache(harness.cache_dir) if harness.cache_dir else None
    unique: Dict[str, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key, cell)
    ordered = list(unique.values())
    if harness.jobs == 1 or len(ordered) <= 1:
        outcomes = [run_cell(cell, harness, cache) for cell in ordered]
    else:
        with ThreadPoolExecutor(max_workers=harness.jobs) as pool:
            outcomes = list(
                pool.map(lambda cell: run_cell(cell, harness, cache), ordered)
            )
    by_key = {outcome.cell.key: outcome for outcome in outcomes}
    return [by_key[cell.key] for cell in cells]
