"""The committed performance history: profiles keyed by commit.

``PERF_HISTORY.jsonl`` is a Perun-style version-controlled performance
ledger living at the repository root: one JSON line per *epoch*, where
an epoch is everything recorded about the repository's performance at
one commit — simulated-IPC profiles (golden-pin cells, exploration
frontier points) and simulator-throughput profiles (the kernel backend
matrix).  The file is append-only and committed, so the trajectory of
every metric across PRs is reviewable evidence, and the degradation
check (:mod:`repro.perfhist.check`) always has the full series to
calibrate its statistical detectors against.

Each profile carries the :mod:`repro.obs` loop-attribution and metrics
snapshot of the run that produced it, so a detected change can be
*attributed* — "load_resolution gained 4 points of cycle share" — not
just reported as a delta.

Schema compatibility: records are schema-versioned; unknown schemas
raise (a check against an unreadable record is not a check), while
unknown *fields* inside a known schema are preserved verbatim — older
readers must survive newer writers appending optional fields.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_NAME",
    "Profile",
    "Epoch",
    "PerfHistory",
    "default_history_path",
    "commit_of",
]

#: Bump when the epoch layout changes incompatibly.
HISTORY_SCHEMA = 1

#: The committed history file at the repository root.
DEFAULT_HISTORY_NAME = "PERF_HISTORY.jsonl"


def default_history_path(root: Union[str, Path, None] = None) -> Path:
    """The history file under ``root`` (default: current directory)."""
    base = Path(root) if root is not None else Path(".")
    return base / DEFAULT_HISTORY_NAME


@dataclass
class Profile:
    """One metric's measurement inside an epoch."""

    #: Stable identity across epochs, e.g. ``ipc:int_test:dra_rf3``,
    #: ``kernel:optimized:speedup``, ``explore:dra:rf=3,crc=16,...``.
    key: str
    #: "ipc" | "throughput" | "frontier" — what family of metric.
    kind: str
    #: Headline scalar; higher is better for every shipped kind.
    value: float
    #: Unit label for rendering ("ipc", "x", "inst/s").
    unit: str = ""
    #: Detector spec (:func:`repro.perfhist.detectors.get_detector`)
    #: the check layer resolves for this profile.
    detector: str = "band"
    #: Exact integer state behind the value (deterministic cells).
    exact: Optional[List[int]] = None
    #: Declared absolute tolerance (sampled runs).
    tolerance: Optional[float] = None
    #: :class:`~repro.obs.attribution.AttributionReport` rendering —
    #: the loop-bucket cycle accounting a change is attributed with.
    attribution: Optional[Dict[str, Any]] = None
    #: Trimmed :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
    metrics: Optional[Dict[str, float]] = None
    #: Free-form provenance (run geometry, source file, host notes).
    meta: Dict[str, Any] = field(default_factory=dict)

    def as_observation(self):
        """This profile as a detector-layer :class:`Observation`."""
        from repro.perfhist.detectors import Observation

        return Observation(
            value=self.value,
            exact=tuple(self.exact) if self.exact is not None else None,
            tolerance=self.tolerance,
        )

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "key": self.key,
            "kind": self.kind,
            "value": self.value,
            "unit": self.unit,
            "detector": self.detector,
        }
        for name in ("exact", "tolerance", "attribution", "metrics"):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        if self.meta:
            payload["meta"] = self.meta
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Profile":
        try:
            return cls(
                key=payload["key"],
                kind=payload["kind"],
                value=float(payload["value"]),
                unit=payload.get("unit", ""),
                detector=payload.get("detector", "band"),
                exact=payload.get("exact"),
                tolerance=payload.get("tolerance"),
                attribution=payload.get("attribution"),
                metrics=payload.get("metrics"),
                meta=payload.get("meta", {}),
            )
        except KeyError as missing:
            raise ConfigError(
                f"profile record is missing field {missing}"
            ) from None


@dataclass
class Epoch:
    """Everything recorded about the repository at one commit."""

    commit: str
    profiles: List[Profile]
    #: "record" for live measurement, "import:<file>" for migrations.
    source: str = "record"
    #: Line number in the history (stamped by :meth:`PerfHistory.append`).
    index: int = -1
    timestamp: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def profile(self, key: str) -> Optional[Profile]:
        """This epoch's profile under ``key`` (None when absent)."""
        for profile in self.profiles:
            if profile.key == key:
                return profile
        return None

    def keys(self) -> List[str]:
        return [p.key for p in self.profiles]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": HISTORY_SCHEMA,
            "index": self.index,
            "commit": self.commit,
            "timestamp": self.timestamp,
            "source": self.source,
            "profiles": [p.to_json() for p in self.profiles],
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Epoch":
        try:
            return cls(
                commit=payload["commit"],
                profiles=[
                    Profile.from_json(p) for p in payload["profiles"]
                ],
                source=payload.get("source", "record"),
                index=payload.get("index", -1),
                timestamp=payload.get("timestamp", ""),
                meta=payload.get("meta", {}),
            )
        except KeyError as missing:
            raise ConfigError(
                f"epoch record is missing field {missing}"
            ) from None


class PerfHistory:
    """Append-only JSONL store of :class:`Epoch` records."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, epoch: Epoch) -> Epoch:
        """Stamp and append one epoch; existing lines are never touched."""
        epoch.index = len(self.epochs())
        if not epoch.timestamp:
            epoch.timestamp = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(epoch.to_json(), sort_keys=True) + "\n")
        return epoch

    def epochs(self) -> List[Epoch]:
        """Every readable epoch, oldest first."""
        if not self.path.exists():
            return []
        epochs: List[Epoch] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConfigError(
                        f"{self.path}:{line_number + 1}: corrupt history "
                        f"line ({error})"
                    ) from error
                if payload.get("schema") != HISTORY_SCHEMA:
                    raise ConfigError(
                        f"{self.path}:{line_number + 1}: unsupported "
                        f"history schema {payload.get('schema')!r} "
                        f"(expected {HISTORY_SCHEMA})"
                    )
                epochs.append(Epoch.from_json(payload))
        return epochs

    def latest(self) -> Optional[Epoch]:
        """The newest epoch, or None for an empty history."""
        epochs = self.epochs()
        return epochs[-1] if epochs else None

    def epoch(self, index: int) -> Epoch:
        """The epoch at ``index`` (negative indexes from the end)."""
        epochs = self.epochs()
        try:
            return epochs[index]
        except IndexError:
            raise ConfigError(
                f"history has {len(epochs)} epoch(s); no epoch {index}"
            ) from None

    def series(
        self, key: str, before: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """``(epoch index, value)`` for every epoch carrying ``key``.

        ``before`` restricts the series to epochs with a strictly
        smaller index — the history a detector may calibrate against
        when judging that epoch.
        """
        points: List[Tuple[int, float]] = []
        for epoch in self.epochs():
            if before is not None and epoch.index >= before:
                continue
            profile = epoch.profile(key)
            if profile is not None:
                points.append((epoch.index, profile.value))
        return points

    def keys(self) -> List[str]:
        """Every profile key ever recorded, in first-seen order."""
        seen: Dict[str, None] = {}
        for epoch in self.epochs():
            for key in epoch.keys():
                seen.setdefault(key)
        return list(seen)

    def __len__(self) -> int:
        return len(self.epochs())


def commit_of(repo_root: Union[str, Path, None] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a repo."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"
