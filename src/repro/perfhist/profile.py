"""Profile builders: turn runs and benchmark files into history entries.

Three metric families feed the history:

* **IPC cells** (:func:`ipc_profiles`) — the golden-pin matrix
  (base/DRA at rf 3/5/7, §6's sweep) re-run live with the
  :mod:`repro.obs` bus attached, so every profile carries exact integer
  state (cycles, retired), the measured per-loop attribution, and the
  metrics snapshot.  One additional cell runs under the ``sampled``
  backend and carries its :class:`~repro.core.backend.SamplingReport`
  tolerance instead — the CI-band detector's input.
* **Kernel throughput** (:func:`kernel_profiles`) — the backend matrix
  from ``BENCH_kernel.json``.  The *gated* value is each backend's
  speedup over reference (host-normalised, comparable across machines);
  raw instructions/second ride along under the ``track`` detector
  because absolute host throughput is not comparable across CI
  hardware.
* **Exploration frontier** (:func:`frontier_profiles`) — final-rung
  IPC per design from ``BENCH_explore.json`` plus the paper-ordering
  predicate, so a refactor that silently breaks "DRA >= base at every
  rf" fails the history gate even if no single IPC moved beyond noise.

The golden run geometry lives here (`GOLDEN_RUN`, :func:`golden_cells`)
and is imported by ``scripts/update_golden.py`` so the pins and the
history can never drift apart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.perfhist.history import Epoch, PerfHistory, Profile

__all__ = [
    "GOLDEN_RUN",
    "RF_LATENCIES",
    "golden_cells",
    "ipc_profiles",
    "sampled_profile",
    "kernel_profiles",
    "frontier_profiles",
    "import_kernel_bench",
    "import_explore_bench",
    "record_epoch",
]

#: The run geometry every golden IPC cell uses — shared with
#: ``scripts/update_golden.py`` (small on purpose: exact-integer
#: regression pinning, not statistics).
GOLDEN_RUN = {
    "workload": "int_test",
    "instructions": 2_000,
    "warmup": 20_000,
    "detailed_warmup": 400,
    "seed": 0,
}

#: RF read latencies pinned per machine family (§6's 3/5/7 sweep).
RF_LATENCIES = (3, 5, 7)

#: Span for the sampled-backend cell (needs room for its windows).
SAMPLED_SPAN = 24_000

#: Detector spec for throughput speedup series: statistical once the
#: series supports it, a 4% band before that.  The history's speedup
#: values come from the *committed* BENCH file (CI re-imports it, it
#: never re-times kernels), so a drop here is a deliberate committed
#: change that must surface for review; the band is host-normalised
#: slack for benchmark refreshes run on different machines, and the
#: kernel-bench floor gate separately guards gross live regressions.
THROUGHPUT_DETECTOR = "best_model:0.04"

#: Detector spec for frontier IPC series (simulated, near-deterministic).
FRONTIER_DETECTOR = "best_model:0.02"


def golden_cells() -> Iterator[Tuple[str, Any]]:
    """(label, CoreConfig) for every golden-pin cell.

    Three machine families per rf latency: the base machine, the DRA
    machine, and a port-starved base machine (4 read ports under
    oldest-first arbitration) so the read-port stall path stays pinned
    cycle-exactly alongside the mechanisms it competes with.
    """
    from repro.core.config import CoreConfig

    for rf in RF_LATENCIES:
        yield f"base_rf{rf}", CoreConfig.base(rf)
        yield f"dra_rf{rf}", CoreConfig.with_dra(rf)
        yield f"base_p4_rf{rf}", CoreConfig.base(rf, rf_read_ports=4)


def _trim_attribution(report) -> Dict[str, Any]:
    """An AttributionReport.to_dict() without empty per-phase slices."""
    payload = report.to_dict()
    if not payload.get("phases"):
        payload.pop("phases", None)
    return payload


def _trim_metrics(snapshot: Optional[Dict[str, Any]]) -> Dict[str, float]:
    """Scalar metric entries only (histogram structures stay cache-side)."""
    if not snapshot:
        return {}
    return {
        key: value for key, value in sorted(snapshot.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def _attributed_simulate(workload, config, **kwargs):
    """simulate() with bus + collector + attribution attached.

    Returns (result, attribution dict, metrics dict).  The bus is
    passive — attaching it does not perturb simulated timing (the
    reconciliation tests in ``tests/test_obs.py`` pin that) — so the
    recorded integers equal an unobserved run's.
    """
    from repro.core.simulator import simulate
    from repro.obs import EventBus, MetricsCollector
    from repro.obs.attribution import LoopAttribution

    bus = EventBus()
    collector = MetricsCollector(bus)
    attribution = LoopAttribution(bus, config)
    result = simulate(workload, config, obs=bus, **kwargs)
    metrics = collector.snapshot_into(result.stats)
    report = attribution.report(
        result.stats, workload=result.workload, config_label=config.label,
    )
    return result, _trim_attribution(report), _trim_metrics(metrics)


def ipc_profiles(backend: str = "reference") -> List[Profile]:
    """Live-measured golden-cell profiles with attribution attached."""
    profiles: List[Profile] = []
    run = GOLDEN_RUN
    for label, config in golden_cells():
        result, attribution, metrics = _attributed_simulate(
            run["workload"], config,
            instructions=run["instructions"],
            warmup=run["warmup"],
            detailed_warmup=run["detailed_warmup"],
            seed=run["seed"],
            backend=backend,
        )
        stats = result.stats
        profiles.append(Profile(
            key=f"ipc:{run['workload']}:{label}",
            kind="ipc",
            value=stats.measured_ipc,
            unit="ipc",
            detector="exact",
            exact=[stats.cycles, stats.retired, stats.total_reissues],
            attribution=attribution,
            metrics=metrics,
            meta={"run": dict(run), "pipe": config.label,
                  "backend": result.backend},
        ))
    return profiles


def sampled_profile(spec: str = "sampled") -> Profile:
    """One sampled-backend cell carrying its declared CI tolerance."""
    from repro.core.config import CoreConfig
    from repro.core.simulator import simulate

    run = GOLDEN_RUN
    result = simulate(
        run["workload"], CoreConfig.base(3),
        instructions=SAMPLED_SPAN,
        warmup=run["warmup"],
        detailed_warmup=run["detailed_warmup"],
        seed=run["seed"],
        backend=spec,
    )
    report = result.sampling
    if report is None:
        raise ConfigError(
            f"backend {spec!r} produced no sampling report; "
            "sampled_profile needs an inexact backend"
        )
    return Profile(
        key=f"ipc:{run['workload']}:sampled_base_rf3",
        kind="ipc",
        value=report.ipc_mean,
        unit="ipc",
        detector="ci",
        tolerance=report.tolerance,
        meta={
            "run": {**run, "instructions": SAMPLED_SPAN},
            "backend": result.backend,
            "windows": len(report.windows),
            "ci95": list(report.ci95),
        },
    )


def kernel_profiles(
    bench: Dict[str, Any], source: str = "BENCH_kernel.json"
) -> List[Profile]:
    """Throughput profiles from a kernel benchmark matrix payload."""
    try:
        backends = bench["backends"]
    except KeyError:
        raise ConfigError(
            f"{source}: no 'backends' table — not a kernel bench file"
        ) from None
    profiles: List[Profile] = []
    for name, row in sorted(backends.items()):
        meta = {
            "source": source,
            "exact": row.get("exact"),
            "wall_seconds": row.get("wall_seconds"),
            "ipc": row.get("ipc"),
            "run": bench.get("run", {}),
        }
        speedup = row.get("speedup_over_reference")
        if speedup is not None:
            profiles.append(Profile(
                key=f"kernel:{name}:speedup",
                kind="throughput",
                value=float(speedup),
                unit="x",
                detector=THROUGHPUT_DETECTOR,
                meta=meta,
            ))
        profiles.append(Profile(
            key=f"kernel:{name}:inst_per_s",
            kind="throughput",
            value=float(row["instructions_per_second"]),
            unit="inst/s",
            detector="track",
            meta=meta,
        ))
    return profiles


def frontier_profiles(
    bench: Dict[str, Any], source: str = "BENCH_explore.json"
) -> List[Profile]:
    """Frontier-point IPC profiles from an exploration bench payload."""
    rungs = bench.get("rungs") or []
    if not rungs:
        raise ConfigError(
            f"{source}: no rungs — not an exploration bench file"
        )
    space = bench.get("space", "unknown")
    final = rungs[-1]
    meta = {
        "source": source,
        "space_signature": bench.get("space_signature"),
        "workloads": bench.get("workloads"),
        "rung_instructions": final.get("instructions"),
    }
    profiles = [
        Profile(
            key=f"explore:{space}:{label}",
            kind="frontier",
            value=float(score),
            unit="ipc",
            detector=FRONTIER_DETECTOR,
            meta=meta,
        )
        for label, score in sorted(final.get("scores", {}).items())
        if score is not None
    ]
    profiles.append(Profile(
        key=f"explore:{space}:ordering_ok",
        kind="frontier",
        value=1.0 if bench.get("ordering_ok") else 0.0,
        unit="bool",
        detector="band:0",
        meta={"source": source,
              "claim": "best non-base design >= base at every rf latency"},
    ))
    return profiles


def _load_json(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"benchmark file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise ConfigError(f"{path}: corrupt JSON ({error})") from error


def import_kernel_bench(
    history: PerfHistory, path: Union[str, Path], commit: str,
) -> Epoch:
    """Fold a committed ``BENCH_kernel.json`` into the history."""
    path = Path(path)
    epoch = Epoch(
        commit=commit,
        profiles=kernel_profiles(_load_json(path), source=path.name),
        source=f"import:{path.name}",
    )
    return history.append(epoch)


def import_explore_bench(
    history: PerfHistory, path: Union[str, Path], commit: str,
) -> Epoch:
    """Fold a committed ``BENCH_explore.json`` into the history."""
    path = Path(path)
    epoch = Epoch(
        commit=commit,
        profiles=frontier_profiles(_load_json(path), source=path.name),
        source=f"import:{path.name}",
    )
    return history.append(epoch)


def record_epoch(
    history: PerfHistory,
    commit: str,
    kernel_bench: Optional[Union[str, Path]] = None,
    explore_bench: Optional[Union[str, Path]] = None,
    mechanisms_bench: Optional[Union[str, Path]] = None,
    backend: str = "reference",
    include_sampled: bool = True,
    log=None,
) -> Epoch:
    """Measure + assemble this commit's full profile and append it.

    IPC cells are always measured live (they are fast and
    deterministic); throughput and frontier profiles are folded in from
    the committed benchmark files when given — those are produced by
    the ``kernel-bench`` and ``explore-smoke`` jobs, which own the
    machinery (and the wall-clock budget) to measure them honestly.
    """
    def say(message: str) -> None:
        if log is not None:
            log(message)

    profiles: List[Profile] = []
    cell_count = sum(1 for _ in golden_cells())
    say(f"measuring {cell_count} golden IPC cells "
        f"(backend {backend})...")
    profiles.extend(ipc_profiles(backend=backend))
    if include_sampled:
        say("measuring the sampled-backend cell...")
        profiles.append(sampled_profile())
    if kernel_bench is not None:
        path = Path(kernel_bench)
        say(f"importing kernel throughput from {path}")
        profiles.extend(
            kernel_profiles(_load_json(path), source=path.name)
        )
    if explore_bench is not None:
        path = Path(explore_bench)
        say(f"importing exploration frontier from {path}")
        profiles.extend(
            frontier_profiles(_load_json(path), source=path.name)
        )
    if mechanisms_bench is not None:
        path = Path(mechanisms_bench)
        say(f"importing competing-mechanisms frontier from {path}")
        profiles.extend(
            frontier_profiles(_load_json(path), source=path.name)
        )
    epoch = Epoch(commit=commit, profiles=profiles, source="record")
    history.append(epoch)
    say(f"recorded epoch {epoch.index} ({len(profiles)} profiles) "
        f"at commit {commit[:12]}")
    return epoch
