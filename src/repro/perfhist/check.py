"""Degradation checking: judge an epoch against the history.

For every profile in the target epoch the checker finds the most
recent earlier epoch carrying the same key (benchmark-import epochs
hold disjoint key sets, so "the previous epoch" is the wrong baseline
in general), resolves the profile's declared detector, and judges the
new value against the baseline with the full prior series available
for calibration.

A flagged change is *attributed* before it is reported: the golden IPC
profiles carry the :mod:`repro.obs` loop-attribution snapshot of the
run that produced them, so the checker diffs per-bucket cycle shares
(useful, branch_resolution, load_resolution, operand_resolution,
other) between the baseline and the new run and names the top mover.
If no bucket moved, the simulated cycle accounting is unchanged and
the delta must come from outside the model — host or backend side —
which is itself the attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.perfhist.detectors import Verdict, get_detector
from repro.perfhist.history import Epoch, PerfHistory, Profile

__all__ = [
    "Finding",
    "CheckReport",
    "attribution_shift",
    "check_epoch",
]

#: A bucket-share move below this (percentage points of total cycles)
#: is noise, not attribution.
SHARE_EPSILON_PP = 0.05


def _bucket_shares(attribution: Dict[str, Any]) -> Dict[str, float]:
    """Per-bucket share of total cycles, in percent."""
    total = attribution.get("total_cycles") or 0
    if not total:
        return {}
    shares = {
        "useful": 100.0 * attribution.get("useful_cycles", 0) / total
    }
    for loop in attribution.get("loops", []):
        shares[loop["name"]] = 100.0 * loop.get("lost_cycles", 0) / total
    return shares


def attribution_shift(
    baseline: Profile, new: Profile
) -> str:
    """Name the loop bucket a change lives in.

    Returns a one-line human attribution: the top-moving cycle-share
    bucket with its delta in percentage points, "cycle accounting
    unchanged" when no bucket moved (the change is host/backend-side),
    or "unattributed" when either side lacks an obs snapshot.
    """
    old_shares = _bucket_shares(baseline.attribution or {})
    new_shares = _bucket_shares(new.attribution or {})
    if not old_shares or not new_shares:
        return "unattributed (no obs snapshot on both sides)"
    deltas = {
        name: new_shares.get(name, 0.0) - old_shares.get(name, 0.0)
        for name in sorted(set(old_shares) | set(new_shares))
    }
    mover = max(deltas, key=lambda name: abs(deltas[name]))
    delta = deltas[mover]
    if abs(delta) < SHARE_EPSILON_PP:
        return ("cycle accounting unchanged across loop buckets "
                "(host/backend-side change)")
    direction = "gained" if delta > 0 else "lost"
    others = ", ".join(
        f"{name} {deltas[name]:+.2f}pp"
        for name in sorted(deltas, key=lambda n: abs(deltas[n]),
                           reverse=True)[1:3]
        if abs(deltas[name]) >= SHARE_EPSILON_PP
    )
    line = (f"bucket '{mover}' {direction} {abs(delta):.2f}pp of "
            f"cycle share")
    if others:
        line += f" (next: {others})"
    return line


@dataclass
class Finding:
    """One profile's judgement, with attribution when it changed."""

    key: str
    kind: str
    unit: str
    verdict: Verdict
    baseline_epoch: int
    #: Loop-bucket attribution line (empty for stable profiles).
    attribution: str = ""

    @property
    def degraded(self) -> bool:
        return self.verdict.degraded

    @property
    def improved(self) -> bool:
        return self.verdict.improved

    def describe(self) -> str:
        line = f"{self.key}: {self.verdict.describe()}"
        if self.unit:
            line += f" [{self.unit}]"
        line += f" (baseline epoch {self.baseline_epoch})"
        if self.attribution and self.verdict.changed:
            line += f"\n    attribution: {self.attribution}"
        return line


@dataclass
class CheckReport:
    """Everything the check learned about one epoch."""

    epoch_index: int
    commit: str
    findings: List[Finding] = field(default_factory=list)
    #: Keys first seen in this epoch (informational, never a failure).
    new_keys: List[str] = field(default_factory=list)
    #: Keys the history carries but this epoch does not (informational;
    #: benchmark-file profiles are only present when the file is fed in).
    missing_keys: List[str] = field(default_factory=list)

    @property
    def degradations(self) -> List[Finding]:
        return [f for f in self.findings if f.degraded]

    @property
    def improvements(self) -> List[Finding]:
        return [f for f in self.findings if f.improved]

    @property
    def ok(self) -> bool:
        """True when no profile degraded (improvements are fine)."""
        return not self.degradations

    def render(self) -> str:
        lines = [
            f"perf check: epoch {self.epoch_index} "
            f"(commit {self.commit[:12]}) vs per-key baselines"
        ]
        for finding in self.findings:
            if finding.verdict.changed:
                lines.append("  " + finding.describe())
        stable = sum(1 for f in self.findings if not f.verdict.changed)
        lines.append(
            f"  {len(self.findings)} profile(s) judged: "
            f"{len(self.degradations)} degraded, "
            f"{len(self.improvements)} improved, {stable} stable"
        )
        if self.new_keys:
            lines.append(
                f"  new keys (no baseline): {', '.join(self.new_keys)}"
            )
        if self.missing_keys:
            lines.append(
                "  keys not in this epoch (skipped): "
                + ", ".join(self.missing_keys)
            )
        lines.append("  OK" if self.ok else "  DEGRADED")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch_index,
            "commit": self.commit,
            "ok": self.ok,
            "findings": [
                {
                    "key": f.key,
                    "kind": f.kind,
                    "verdict": f.verdict.kind,
                    "detector": f.verdict.detector,
                    "baseline": f.verdict.baseline,
                    "value": f.verdict.value,
                    "threshold": f.verdict.threshold,
                    "baseline_epoch": f.baseline_epoch,
                    "attribution": f.attribution,
                    "detail": f.verdict.detail,
                }
                for f in self.findings
            ],
            "new_keys": self.new_keys,
            "missing_keys": self.missing_keys,
        }


def _baseline_for(
    history: PerfHistory,
    key: str,
    target_index: int,
    pinned: Optional[Epoch],
) -> Optional[Epoch]:
    """The epoch a key is judged against.

    With ``pinned`` (an explicit ``--baseline``), that epoch or nothing.
    Otherwise the most recent epoch before the target carrying the key.
    """
    if pinned is not None:
        return pinned if pinned.profile(key) is not None else None
    best: Optional[Epoch] = None
    for epoch in history.epochs():
        if epoch.index >= target_index:
            continue
        if epoch.profile(key) is not None:
            best = epoch
    return best


def check_epoch(
    history: PerfHistory,
    epoch: Optional[int] = None,
    baseline: Optional[int] = None,
) -> CheckReport:
    """Judge one epoch (default: the latest) against the history.

    ``baseline`` pins every comparison to one epoch index; by default
    each key is compared against its own most recent earlier carrier.
    """
    epochs = history.epochs()
    if not epochs:
        raise ConfigError(
            f"{history.path}: empty history — record an epoch first"
        )
    target = history.epoch(epoch if epoch is not None else -1)
    if target.index == 0 and baseline is None:
        report = CheckReport(
            epoch_index=target.index, commit=target.commit,
            new_keys=target.keys(),
        )
        return report
    pinned = history.epoch(baseline) if baseline is not None else None
    report = CheckReport(epoch_index=target.index, commit=target.commit)
    for profile in target.profiles:
        base_epoch = _baseline_for(
            history, profile.key, target.index, pinned
        )
        if base_epoch is None:
            report.new_keys.append(profile.key)
            continue
        base_profile = base_epoch.profile(profile.key)
        detector = get_detector(profile.detector)
        series = [
            value for index, value
            in history.series(profile.key, before=target.index)
            if pinned is None or index <= base_epoch.index
        ]
        verdict = detector.judge(
            base_profile.as_observation(),
            profile.as_observation(),
            series=series,
        )
        report.findings.append(Finding(
            key=profile.key,
            kind=profile.kind,
            unit=profile.unit,
            verdict=verdict,
            baseline_epoch=base_epoch.index,
            attribution=attribution_shift(base_profile, profile),
        ))
    target_keys = set(target.keys())
    report.missing_keys = [
        key for key in history.keys() if key not in target_keys
    ]
    return report
