"""Pluggable degradation detectors: statistical tests, not magic numbers.

A detector answers one question: *given where this metric has been, is
the newest value a real change or noise?*  The contract is deliberately
small so new detectors are cheap to add (see ``docs/perfhist.md``):

* an :class:`Observation` wraps one measured value plus whatever
  certainty the producer declared about it — exact integer state for
  deterministic simulation cells, an absolute tolerance for sampled
  runs with a :class:`~repro.core.backend.SamplingReport`;
* :meth:`Detector.judge` maps (baseline, new, historical series) to a
  :class:`Verdict` — ``degradation``, ``improvement`` or ``stable`` —
  carrying the decision band it actually applied, so every flag is
  auditable;
* the registry (:func:`register_detector` / :func:`get_detector`)
  resolves the detector *names* stored in history profiles, including
  parameterised specs like ``band:0.05`` or ``best_model:0.1``.

All metrics are higher-is-better (IPC, speedup); detectors for
lower-is-better series should negate at the call site.

Shipped detectors
-----------------
``exact``
    For exact-integer simulation cells (golden-pin style): *any*
    difference in the integer state is a confirmed change — the
    simulator is deterministic, so there is no noise to test against.

``ci``
    For sampled runs: the declared confidence band (CI95 + systematic
    slack from the :class:`~repro.core.backend.SamplingReport`) is the
    decision band.  A change smaller than what the producer itself
    claims to resolve is not a finding.

``band``
    Fixed relative band — the legacy 2% threshold, kept as the explicit
    fallback for series too short to support a statistical test.

``best_model``
    Perun-style best-model test for noisy series (simulator throughput,
    frontier IPC across explorations): fits constant and linear models
    over the history, keeps the better one (SSE with a parameter
    penalty), and flags the new value only when it falls outside
    ``z`` residual standard deviations of the model's prediction.  The
    band therefore *self-calibrates* to the series' own noise — a 5%
    drop on a quiet series is a finding; the same 5% on a series that
    routinely jitters 4% is not.  Short series degrade to ``band``.

``track``
    Never flags — for metrics worth recording but meaningless to gate
    (raw host-dependent instructions/second alongside the gated,
    host-normalised speedup ratio).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import sqrt
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "Observation",
    "Verdict",
    "Detector",
    "ExactIntegerDetector",
    "CIBandDetector",
    "RelativeBandDetector",
    "BestModelDetector",
    "TrackOnlyDetector",
    "register_detector",
    "get_detector",
    "available_detectors",
]

#: Legacy fixed relative band, now only the short-series fallback.
FALLBACK_REL_BAND = 0.02


@dataclass(frozen=True)
class Observation:
    """One measured value plus its declared certainty."""

    #: Headline scalar (IPC, speedup ratio, ...); higher is better.
    value: float
    #: Exact integer state behind the value (e.g. ``(cycles, retired)``)
    #: when the producer is deterministic; any difference is real.
    exact: Optional[Tuple[int, ...]] = None
    #: Declared absolute half-width (e.g. sampled CI95 + slack) when the
    #: producer carries its own error model.
    tolerance: Optional[float] = None


@dataclass(frozen=True)
class Verdict:
    """A detector's decision about one (baseline, new) pair."""

    detector: str
    #: "degradation" | "improvement" | "stable".
    kind: str
    baseline: float
    value: float
    #: Absolute half-width of the decision band actually applied (0 for
    #: exact comparisons) — the audit trail for every flag.
    threshold: float
    detail: str = ""

    @property
    def rel_change(self) -> float:
        """Relative change against the baseline (0 when baseline is 0)."""
        if self.baseline == 0:
            return 0.0
        return (self.value - self.baseline) / self.baseline

    @property
    def degraded(self) -> bool:
        return self.kind == "degradation"

    @property
    def improved(self) -> bool:
        return self.kind == "improvement"

    @property
    def changed(self) -> bool:
        return self.kind != "stable"

    def describe(self) -> str:
        """One audit line: what moved, by how much, against what band."""
        return (
            f"{self.kind.upper()} [{self.detector}] "
            f"{self.baseline:.4f} -> {self.value:.4f} "
            f"({self.rel_change:+.2%}, band +/-{self.threshold:.4f})"
            + (f": {self.detail}" if self.detail else "")
        )


class Detector(ABC):
    """The detector contract: judge one new observation against history."""

    #: Registry name; parameterised instances append ``:<params>``.
    name: str = "?"

    @abstractmethod
    def judge(
        self,
        baseline: Observation,
        new: Observation,
        series: Sequence[float] = (),
    ) -> Verdict:
        """Classify ``new`` against ``baseline``.

        ``series`` is the metric's history *up to and including the
        baseline*, oldest first; statistical detectors calibrate their
        band from it and ignore it otherwise.
        """

    def _verdict(
        self, kind: str, baseline: Observation, new: Observation,
        threshold: float, detail: str = "",
    ) -> Verdict:
        return Verdict(
            detector=self.name, kind=kind, baseline=baseline.value,
            value=new.value, threshold=threshold, detail=detail,
        )


class ExactIntegerDetector(Detector):
    """Deterministic cells: any exact-state difference is a confirmed
    change.  Equal-value changes (cycle structure moved while the ratio
    held) are still flagged as degradations — the whole point of exact
    pins is that *silent* timing drift must surface for review."""

    name = "exact"

    def judge(self, baseline, new, series=()):
        old_state = baseline.exact or (baseline.value,)
        new_state = new.exact or (new.value,)
        if old_state == new_state:
            return self._verdict("stable", baseline, new, 0.0)
        if new.value > baseline.value:
            kind = "improvement"
        else:
            kind = "degradation"
        detail = f"exact state {tuple(old_state)} -> {tuple(new_state)}"
        if new.value == baseline.value:
            detail += " (integer state changed at equal headline value)"
        return self._verdict(kind, baseline, new, 0.0, detail)


class CIBandDetector(Detector):
    """Sampled runs: the producer's declared confidence band decides.

    The band is the wider of the two observations' declared tolerances;
    an observation with no tolerance contributes a relative fallback so
    a sampled value can still be compared against an exact baseline.
    """

    name = "ci"

    def __init__(self, fallback_rel: float = FALLBACK_REL_BAND):
        if fallback_rel < 0:
            raise ConfigError("fallback band cannot be negative")
        self.fallback_rel = fallback_rel

    def judge(self, baseline, new, series=()):
        declared = [
            obs.tolerance for obs in (baseline, new)
            if obs.tolerance is not None
        ]
        if declared:
            band = max(declared)
            detail = "declared sampling tolerance"
        else:
            band = self.fallback_rel * abs(baseline.value)
            detail = f"no declared tolerance; {self.fallback_rel:.0%} band"
        delta = new.value - baseline.value
        if abs(delta) <= band:
            return self._verdict("stable", baseline, new, band, detail)
        kind = "improvement" if delta > 0 else "degradation"
        return self._verdict(kind, baseline, new, band, detail)


class RelativeBandDetector(Detector):
    """Fixed relative band — the explicit, documented fallback."""

    name = "band"

    def __init__(self, rel: float = FALLBACK_REL_BAND):
        if rel < 0:
            raise ConfigError("relative band cannot be negative")
        self.rel = rel

    @property
    def spec(self) -> str:
        return f"band:{self.rel:g}"

    def judge(self, baseline, new, series=()):
        band = self.rel * abs(baseline.value)
        delta = new.value - baseline.value
        if abs(delta) <= band:
            return self._verdict("stable", baseline, new, band)
        kind = "improvement" if delta > 0 else "degradation"
        return self._verdict(
            kind, baseline, new, band, f"fixed {self.rel:.0%} band"
        )


def _fit_constant(series: Sequence[float]) -> Tuple[float, float, int]:
    """(prediction for the next point, SSE, parameter count)."""
    mean = sum(series) / len(series)
    sse = sum((y - mean) ** 2 for y in series)
    return mean, sse, 1


def _fit_linear(series: Sequence[float]) -> Tuple[float, float, int]:
    """Least-squares line over (index, value); predicts the next index."""
    n = len(series)
    xs = range(n)
    mean_x = (n - 1) / 2
    mean_y = sum(series) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, series))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    sse = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(xs, series)
    )
    return intercept + slope * n, sse, 2


class BestModelDetector(Detector):
    """Best-model regression test over the metric's own history.

    Fits the candidate models, keeps the one with the lower penalised
    SSE (each extra parameter must earn its keep by halving nothing —
    the penalty multiplies SSE by ``n / (n - k)``, a small-sample
    variance correction), and flags the new value only when its
    residual against the model's one-step prediction exceeds
    ``z * residual_std`` (with a small relative floor so a perfectly
    quiet series does not hair-trigger on representation noise).

    Series shorter than ``min_points`` cannot support a variance
    estimate; they degrade to the fixed relative band ``fallback_rel``
    against the baseline, and the verdict says so.
    """

    name = "best_model"

    def __init__(
        self,
        fallback_rel: float = FALLBACK_REL_BAND,
        z: float = 3.0,
        min_points: int = 4,
        floor_rel: float = 0.005,
    ):
        if z <= 0:
            raise ConfigError("z must be positive")
        if min_points < 2:
            raise ConfigError("min_points must be >= 2")
        self.z = z
        self.min_points = min_points
        self.floor_rel = floor_rel
        self.fallback = RelativeBandDetector(fallback_rel)

    @property
    def spec(self) -> str:
        return f"best_model:{self.fallback.rel:g}"

    def judge(self, baseline, new, series=()):
        series = list(series) if series else [baseline.value]
        if len(series) < self.min_points:
            verdict = self.fallback.judge(baseline, new)
            return Verdict(
                detector=self.name, kind=verdict.kind,
                baseline=verdict.baseline, value=verdict.value,
                threshold=verdict.threshold,
                detail=(
                    f"series too short for statistics ({len(series)} < "
                    f"{self.min_points}); fixed {self.fallback.rel:.0%} band"
                ),
            )
        fits = [_fit_constant(series), _fit_linear(series)]
        n = len(series)
        prediction, sse, k = min(
            (f for f in fits if n > f[2]),
            key=lambda f: f[1] * n / (n - f[2]),
        )
        model = "constant" if k == 1 else "linear"
        residual_std = sqrt(sse / (n - k))
        band = max(
            self.z * residual_std, self.floor_rel * abs(prediction)
        )
        delta = new.value - prediction
        detail = (
            f"{model} model over {n} epochs predicts {prediction:.4f} "
            f"(residual std {residual_std:.4f})"
        )
        if abs(delta) <= band:
            return self._verdict("stable", baseline, new, band, detail)
        kind = "improvement" if delta > 0 else "degradation"
        return self._verdict(kind, baseline, new, band, detail)


class TrackOnlyDetector(Detector):
    """Records trajectories without ever gating on them."""

    name = "track"

    def judge(self, baseline, new, series=()):
        return self._verdict(
            "stable", baseline, new, float("inf"),
            "tracked, never gated (host-dependent metric)",
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[..., Detector]] = {}


def register_detector(
    name: str, factory: Callable[..., Detector], replace: bool = False
) -> None:
    """Register ``factory`` (kwargs -> Detector) under ``name``."""
    if not replace and name in _FACTORIES:
        raise ConfigError(f"detector {name!r} is already registered")
    _FACTORIES[name] = factory


def available_detectors() -> Tuple[str, ...]:
    """Registered detector names, in registration order."""
    return tuple(_FACTORIES)


def get_detector(spec: str) -> Detector:
    """Resolve a detector spec: a name, or ``name:<param>``.

    The single optional parameter is the detector's headline knob: the
    relative band for ``band``/``ci``, the short-series fallback band
    for ``best_model``.
    """
    name, _, param = spec.partition(":")
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown detector {spec!r} "
            f"(available: {', '.join(available_detectors())})"
        ) from None
    if not param:
        return factory()
    try:
        return factory(float(param))
    except (TypeError, ValueError) as error:
        raise ConfigError(
            f"bad detector spec {spec!r}: {error}"
        ) from None


register_detector("exact", lambda: ExactIntegerDetector())
register_detector("ci", lambda rel=FALLBACK_REL_BAND: CIBandDetector(rel))
register_detector(
    "band", lambda rel=FALLBACK_REL_BAND: RelativeBandDetector(rel)
)
register_detector(
    "best_model",
    lambda rel=FALLBACK_REL_BAND: BestModelDetector(fallback_rel=rel),
)
register_detector("track", lambda: TrackOnlyDetector())
