"""repro.perfhist — per-commit performance history with degradation detection.

A Perun-style version-controlled performance ledger: every commit's
simulated-IPC profiles (golden-pin cells, exploration frontier points)
and simulator-throughput profiles (the kernel backend matrix) are
appended to a committed ``PERF_HISTORY.jsonl``, each carrying the
:mod:`repro.obs` loop-attribution and metrics snapshot of the run that
produced it.  A pluggable detector layer judges each new epoch against
its history — exact-integer equality for deterministic cells, declared
CI bands for sampled runs, best-model regression fits for throughput
series — and a detected change is attributed to the loop bucket whose
cycle share moved, not just reported as a delta.

Entry points: ``loopsim perf record|log|check|attribute|import`` and
the CI ``perf-history`` gate.  See ``docs/perfhist.md``.
"""

from repro.perfhist.detectors import (
    BestModelDetector,
    CIBandDetector,
    Detector,
    ExactIntegerDetector,
    Observation,
    RelativeBandDetector,
    TrackOnlyDetector,
    Verdict,
    available_detectors,
    get_detector,
    register_detector,
)
from repro.perfhist.history import (
    DEFAULT_HISTORY_NAME,
    HISTORY_SCHEMA,
    Epoch,
    PerfHistory,
    Profile,
    commit_of,
    default_history_path,
)
from repro.perfhist.check import (
    CheckReport,
    Finding,
    attribution_shift,
    check_epoch,
)
from repro.perfhist.profile import (
    GOLDEN_RUN,
    RF_LATENCIES,
    frontier_profiles,
    golden_cells,
    import_explore_bench,
    import_kernel_bench,
    ipc_profiles,
    kernel_profiles,
    record_epoch,
    sampled_profile,
)

__all__ = [
    "BestModelDetector",
    "CIBandDetector",
    "Detector",
    "ExactIntegerDetector",
    "Observation",
    "RelativeBandDetector",
    "TrackOnlyDetector",
    "Verdict",
    "available_detectors",
    "get_detector",
    "register_detector",
    "DEFAULT_HISTORY_NAME",
    "HISTORY_SCHEMA",
    "Epoch",
    "PerfHistory",
    "Profile",
    "commit_of",
    "default_history_path",
    "CheckReport",
    "Finding",
    "attribution_shift",
    "check_epoch",
    "GOLDEN_RUN",
    "RF_LATENCIES",
    "frontier_profiles",
    "golden_cells",
    "import_explore_bench",
    "import_kernel_bench",
    "ipc_profiles",
    "kernel_profiles",
    "record_epoch",
    "sampled_profile",
]
