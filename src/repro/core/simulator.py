"""High-level simulation entry point.

:func:`simulate` is the one-call API used by examples, tests and
benchmarks: resolve a workload name (single benchmark or SMT pair),
build a :class:`~repro.core.pipeline.Simulator`, run warmup plus a
measurement window, and wrap everything in a :class:`SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.backend import KernelBackend, SamplingReport, parse_backend
from repro.core.config import CoreConfig
from repro.core.stats import CoreStats
from repro.errors import ConfigError
from repro.workloads import WorkloadProfile, workload_profiles

#: Default measurement window, sized so loop phenomena reach steady
#: state while keeping pure-Python runs fast (DESIGN.md §3).
DEFAULT_INSTRUCTIONS = 20_000
#: Functional (fast-forward) warmup ops per thread: trains predictors,
#: BTB, caches and TLB, standing in for the paper's 1-2 M skipped
#: instructions.
DEFAULT_WARMUP = 100_000
#: Detailed-pipeline warmup before the measurement window opens.
DEFAULT_DETAILED_WARMUP = 1_500


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    workload: str
    config: CoreConfig
    stats: CoreStats
    seed: int
    #: cache token of the kernel backend that produced the run
    backend: str = "reference"
    #: error model when the run was sampled rather than exact
    sampling: Optional[SamplingReport] = None

    @property
    def ipc(self) -> float:
        """Post-warmup instructions per cycle."""
        return self.stats.measured_ipc

    def speedup_over(self, baseline: "SimResult") -> float:
        """This run's IPC relative to ``baseline`` (1.0 = equal)."""
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline run retired nothing")
        return self.ipc / baseline.ipc

    def describe(self) -> str:
        """A one-line human-readable summary."""
        return (
            f"{self.workload:>18s} {self.config.label:>10s} "
            f"ipc={self.ipc:5.2f} reissues={self.stats.total_reissues:6d} "
            f"bmiss={self.stats.branch_mispredict_rate:6.1%} "
            f"l1miss={self.stats.load_l1_miss_rate:6.1%}"
        )


def simulate(
    workload: Union[str, List[WorkloadProfile]],
    config: Optional[CoreConfig] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    detailed_warmup: int = DEFAULT_DETAILED_WARMUP,
    seed: int = 0,
    max_cycles: Optional[int] = None,
    obs=None,
    verifier=None,
    backend: Union[str, KernelBackend, None] = None,
) -> SimResult:
    """Simulate ``workload`` on ``config`` and return the result.

    Parameters
    ----------
    workload:
        A workload name (``"swim"``, ``"go+su2cor"``, ...) or an explicit
        list of per-thread profiles.
    config:
        Machine description; defaults to the paper's base machine.
    instructions:
        Retired instructions in the measurement window.
    warmup:
        Functional fast-forward ops per thread before detailed
        simulation (trains predictors, BTB, caches, TLB).
    detailed_warmup:
        Instructions retired under detailed simulation before the
        measurement window opens (fills the pipeline to steady state).
    seed:
        Workload generation seed.
    max_cycles:
        Optional hard cycle cap (for tests).
    obs:
        Optional :class:`~repro.obs.bus.EventBus` attached to every
        probe point for the detailed-simulation phase (after functional
        warmup, so traces are not flooded with warmup training events).
    verifier:
        Optional :class:`~repro.verify.Verifier` (or any object with the
        same ``attach(simulator, bus)`` / ``finish(stats)`` protocol).
        Attached alongside ``obs`` — on the same bus when one is given,
        on a private bus otherwise — and finalised after the run, so the
        returned result has been checked against the golden model and
        the event-stream invariants.  Inspect ``verifier.violations``
        (or call ``verifier.raise_if_failed()``) afterwards.
    backend:
        Kernel backend selection: a registered name (``"reference"``,
        ``"optimized"``, ``"sampled"``), a parameterised spec like
        ``"sampled:8x500+150"``, a :class:`~repro.core.backend.
        KernelBackend` instance, or ``None`` for the reference loop.
        Verification requires an exact backend (bit-identical retire
        stream); combining ``verifier`` with an inexact backend raises
        :class:`~repro.errors.ConfigError`.
    """
    if instructions < 1:
        raise ConfigError(
            f"instructions must be >= 1 (got {instructions})"
        )
    if warmup < 0:
        raise ConfigError(f"warmup cannot be negative (got {warmup})")
    if detailed_warmup < 0:
        raise ConfigError(
            f"detailed_warmup cannot be negative (got {detailed_warmup})"
        )
    if config is None:
        config = CoreConfig.base()
    if isinstance(workload, str):
        name = workload
        # raises WorkloadError for unknown names
        profiles = workload_profiles(workload)
    else:
        profiles = list(workload)
        name = "+".join(p.name for p in profiles)
    if not profiles:
        raise ConfigError("workload resolved to an empty profile list")
    kernel = parse_backend(backend)
    if verifier is not None and not kernel.exact:
        raise ConfigError(
            f"backend {kernel.token!r} is not exact and cannot be "
            "verified; use an exact backend (reference/optimized) or "
            "validate sampled runs via SamplingReport.cross_check"
        )
    simulator = kernel.build(config, profiles, seed=seed)
    if warmup:
        simulator.functional_warmup(warmup)
    if verifier is not None:
        if obs is None:
            from repro.obs.bus import EventBus

            obs = EventBus()
        verifier.attach(simulator, obs)
    if obs is not None:
        simulator.attach_obs(obs)
    kernel.run(
        simulator, instructions, warmup=detailed_warmup, max_cycles=max_cycles
    )
    if verifier is not None:
        verifier.finish(simulator.stats)
    return SimResult(
        workload=name,
        config=config,
        stats=simulator.stats,
        seed=seed,
        backend=kernel.token,
        sampling=simulator.sampling_report,
    )
