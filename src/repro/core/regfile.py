"""Physical register file and register renaming.

The simulator is timing-directed, so a physical register carries *times*
rather than values:

* ``spec_avail`` — when the issue queue believes the value will be
  available to a consumer entering execute.  Published at producer issue
  (optimistically, assuming loads hit) and corrected through the load
  resolution loop's feedback path.  ``None`` means "producer has not
  issued" (or the publication was retracted after a mis-speculation).
* ``avail`` — ground-truth availability, set when the producer actually
  executes with valid operands.  ``None`` until then.
* ``writeback`` — when the value lands in the register file proper
  (``avail`` + forwarding-buffer depth); drives the DRA's RPFT and CRC
  insertion events.

Renaming uses one map per hardware thread over a shared free list, as in
the paper's SMT base machine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.registers import NUM_ARCH_REGS


class PhysRegFile:
    """Shared physical register file with timing state per register."""

    def __init__(self, num_pregs: int):
        if num_pregs < 1:
            raise ValueError("need at least one physical register")
        self.num_pregs = num_pregs
        self.spec_avail: List[Optional[int]] = [None] * num_pregs
        self.avail: List[Optional[int]] = [None] * num_pregs
        self.writeback: List[Optional[int]] = [None] * num_pregs
        self._free: List[int] = list(range(num_pregs - 1, -1, -1))
        #: membership mirror of ``_free`` — guards double/stray frees
        self._is_free: List[bool] = [True] * num_pregs

    # --- allocation ----------------------------------------------------------

    @property
    def free_count(self) -> int:
        """Number of currently free physical registers."""
        return len(self._free)

    def can_allocate(self, count: int = 1) -> bool:
        """Whether ``count`` registers can be allocated."""
        return len(self._free) >= count

    def allocate(self) -> int:
        """Allocate a register; its timing state starts unknown."""
        if not self._free:
            raise RuntimeError("physical register file exhausted")
        preg = self._free.pop()
        self._is_free[preg] = False
        self.spec_avail[preg] = None
        self.avail[preg] = None
        self.writeback[preg] = None
        return preg

    def free(self, preg: int) -> None:
        """Return ``preg`` to the free list.

        Raises on a double free or a free of a register that was never
        allocated — either would silently corrupt the free list and let
        two in-flight instructions share a physical register.
        """
        if preg < 0 or preg >= self.num_pregs:
            raise RuntimeError(f"freed preg {preg} is out of range")
        if self._is_free[preg]:
            raise RuntimeError(
                f"double free of physical register {preg} "
                "(already on the free list)"
            )
        self._is_free[preg] = True
        self._free.append(preg)

    def make_ready(self, preg: int, cycle: int = 0) -> None:
        """Mark ``preg`` as holding a committed value since ``cycle``.

        Used for initial architectural state: the value is in the
        register file (written back) and immediately available.
        """
        self.spec_avail[preg] = cycle
        self.avail[preg] = cycle
        self.writeback[preg] = cycle


class RenameMap:
    """Architectural-to-physical mapping for one hardware thread."""

    def __init__(self, regfile: PhysRegFile, start_cycle: int = 0):
        self._regfile = regfile
        self.map: List[int] = []
        for _ in range(NUM_ARCH_REGS):
            preg = regfile.allocate()
            regfile.make_ready(preg, start_cycle)
            self.map.append(preg)

    def lookup(self, arch_reg: int) -> int:
        """Current physical register of ``arch_reg``."""
        return self.map[arch_reg]

    def rename_dest(self, arch_reg: int) -> tuple:
        """Allocate a new mapping for ``arch_reg``.

        Returns ``(new_preg, prev_preg)``; the previous mapping is freed
        when the renaming instruction retires, or restored if it is
        squashed.
        """
        prev = self.map[arch_reg]
        new = self._regfile.allocate()
        self.map[arch_reg] = new
        return new, prev

    def undo_rename(self, arch_reg: int, new_preg: int, prev_preg: int) -> None:
        """Roll back a rename during a squash (youngest-first order)."""
        if self.map[arch_reg] != new_preg:
            raise RuntimeError(
                f"rename rollback out of order for arch reg {arch_reg}"
            )
        self.map[arch_reg] = prev_preg
        self._regfile.free(new_preg)
