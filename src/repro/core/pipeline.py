"""The cycle-level out-of-order SMT pipeline.

Structure (paper Figure 3)::

    fetch pipe (F) | DEC->IQ pipe (X) | IQ wait | IQ->EX pipe (Y) | EX | feedback

Each simulated cycle processes, in reverse pipeline order: scheduled
events (writebacks, confirmations, load-resolution notifications),
retire, execute, issue, IQ insertion, rename, fetch.  Timing state flows
through per-physical-register availability times (see
:mod:`repro.core.regfile`), so mis-speculation on the load resolution
loop and on the DRA's operand resolution loop is detected exactly where
hardware detects it: at execute, when an operand turns out not to be
there.

Key modelled behaviours
-----------------------
* Loads speculate L1 hits; the IQ learns the truth one loop delay later
  (IQ->EX + feedback) and issued dependents that consumed an invalid
  value reissue from the IQ (``LoadRecovery.REISSUE``), are re-fetched
  (``REFETCH``), or never speculated at all (``STALL``).
* Issued instructions hold their IQ entries until confirmation — the
  §2.2.2 IQ-pressure effect.
* Branch mis-speculations stall the thread's fetch until the branch
  executes, paying decode-to-execute latency plus real queueing delay.
* With a :class:`~repro.core.config.DRAConfig`, operands are located at
  execute through pre-read payload / forwarding buffer / CRC, and a miss
  triggers the operand resolution loop.

Simplifications (documented in DESIGN.md §§8-9): trace-driven fetch with
stall-on-mispredict rather than wrong-path execution; DTLB misses charge
the walk latency plus a front-end refill stall instead of a full
replay-trap flush; store-to-load forwarding is timing-only.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.branch import BTB, ReturnAddressStack
from repro.branch.line_predictor import LinePredictor
from repro.branch.predictors import make_predictor
from repro.core.config import CoreConfig, LoadRecovery
from repro.core.dra import DRAEngine
from repro.core.forwarding import ForwardingBuffer
from repro.core.iq import IssueQueue
from repro.core.memdep import MemDepPolicy, StoreQueue, StoreWaitPredictor
from repro.core.regfile import PhysRegFile, RenameMap
from repro.errors import ConfigError, HangSnapshot, SimulationHangError
from repro.core.stats import (
    CoreStats,
    OperandSource,
    ReissueCause,
    ThreadStats,
)
from repro.isa import DynInst, MicroOp, OpClass
from repro.memory import MemoryHierarchy
from repro.obs.events import (
    BranchOutcomeEvent,
    CompleteEvent,
    ConfirmEvent,
    CycleEvent,
    DropEvent,
    ExecuteEvent,
    FetchEvent,
    LoadResolvedEvent,
    OperandEvent,
    PhaseEvent,
    ReissueEvent,
    RenameEvent,
    RetireEvent,
    SquashEvent,
    WritebackEvent,
)
from repro.smt import choose_fetch_thread
from repro.workloads import SyntheticTraceGenerator, WorkloadProfile

#: Maximum instructions buffered in one thread's front-end pipes before
#: fetch throttles (models finite fetch/decode buffering).
_FRONTEND_LIMIT = 64

#: Cycles without a retire before the simulator declares a deadlock.
_DEADLOCK_WINDOW = 50_000


class _ThreadState:
    """All per-hardware-thread pipeline state."""

    def __init__(
        self,
        tid: int,
        generator,  # any repro.scenarios WorkloadEngine
        rename_map: RenameMap,
        stats: ThreadStats,
    ):
        self.tid = tid
        self.generator = generator
        self._ops: Iterator[MicroOp] = generator.stream()
        self.replay: Deque[MicroOp] = deque()
        self.rename_map = rename_map
        self.stats = stats
        self.ras = ReturnAddressStack()
        self.rob: Deque[DynInst] = deque()
        #: (rename-ready cycle, inst) — fetch pipe + first DEC stages
        self.fetch_pipe: Deque[Tuple[int, DynInst]] = deque()
        #: (IQ-insert-ready cycle, inst) — post-rename DEC->IQ stages
        self.insert_pipe: Deque[Tuple[int, DynInst]] = deque()
        self.fetch_blocked_until = 0
        self.waiting_branch: Optional[DynInst] = None
        self.iq_count = 0
        self.store_queue: Optional[StoreQueue] = None
        #: PC of the taken control op that ended the previous fetch
        #: group (next-line prediction is only at risk across taken
        #: transitions; sequential next-line is trivially right)
        self.last_taken_pc: Optional[int] = None

    def next_op(self) -> MicroOp:
        """Next micro-op: replayed (after a flush) or freshly generated."""
        if self.replay:
            return self.replay.popleft()
        return next(self._ops)

    @property
    def frontend_count(self) -> int:
        """Instructions between fetch and IQ insertion."""
        return len(self.fetch_pipe) + len(self.insert_pipe)

    @property
    def icount(self) -> int:
        """The ICOUNT fetch-policy metric: front-end + IQ population."""
        return self.frontend_count + self.iq_count


class Simulator:
    """A configured core running one or more synthetic workloads."""

    def __init__(
        self,
        config: CoreConfig,
        profiles: List[WorkloadProfile],
        seed: int = 0,
    ):
        if not profiles:
            raise ValueError("at least one workload profile is required")
        self.config = config
        self.stats = CoreStats(threads=[ThreadStats() for _ in profiles])
        self.regfile = PhysRegFile(config.num_pregs)
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = make_predictor(config.predictor)
        self.btb = BTB(config.btb)
        self.line_predictor: Optional[LinePredictor] = None
        if config.line_predictor is not None:
            self.line_predictor = LinePredictor(config.line_predictor)
        self.fb = ForwardingBuffer(self.regfile, config.fb_depth)
        self.iq = IssueQueue(config, self.regfile)
        self.dra: Optional[DRAEngine] = None
        if config.dra is not None:
            self.dra = DRAEngine(
                config.dra, config.num_pregs, config.num_clusters, self.stats
            )
        self.store_wait: Optional[StoreWaitPredictor] = None
        if config.memdep is not None:
            self.store_wait = StoreWaitPredictor(
                config.memdep.predictor_entries, config.memdep.clear_interval
            )
            self.iq.set_memdep_gate(self._memdep_blocked)
        self.cycle = 0
        self._inflight = 0
        self._cluster_rr = 0
        self._last_fetch_tid = -1
        self._frontend_stall_until = 0
        self._producer: List[Optional[DynInst]] = [None] * config.num_pregs
        self._exec_pipe: Dict[int, List[DynInst]] = {}
        self._events: Dict[int, List[tuple]] = {}
        #: optional callable(inst) invoked as each instruction retires
        #: (used by the pipetrace tooling; None in normal runs)
        self.retire_hook = None
        #: optional EventBus (repro.obs); every probe site guards with a
        #: single ``is None`` test, so detached runs pay nothing
        self.obs = None
        #: populated by the sampled kernel backend with its error model
        self.sampling_report = None
        self.threads: List[_ThreadState] = []
        for tid, profile in enumerate(profiles):
            # duck-typed engine dispatch: scenario entries (trace replay,
            # dynamic schedules) carry build_engine; plain profiles keep
            # the historical generator path bit-for-bit
            if hasattr(profile, "build_engine"):
                generator = profile.build_engine(
                    seed=seed,
                    thread=tid,
                    page_bytes=config.hierarchy.tlb.page_bytes,
                )
            else:
                generator = SyntheticTraceGenerator(
                    profile,
                    seed=seed,
                    thread=tid,
                    page_bytes=config.hierarchy.tlb.page_bytes,
                )
            rename_map = RenameMap(self.regfile, start_cycle=0)
            if self.dra is not None:
                # initial architectural state is committed in the register
                # file, hence pre-readable (RPFT bits set)
                for preg in rename_map.map:
                    self.dra.rpft.on_writeback(preg)
            thread = _ThreadState(
                tid, generator, rename_map, self.stats.threads[tid]
            )
            if config.memdep is not None:
                thread.store_queue = StoreQueue(config.memdep.store_queue_entries)
            self.threads.append(thread)

    # ------------------------------------------------------------- observability

    def attach_obs(self, bus) -> None:
        """Attach an :class:`~repro.obs.bus.EventBus` to every probe point.

        Wires the pipeline's own probes plus the issue queue, the DRA
        structures, and (via :class:`~repro.branch.predictors.ProbedPredictor`)
        the direction predictor.  Pass ``None`` to detach everything and
        return the machine to its zero-overhead state.
        """
        from repro.branch.predictors import ProbedPredictor

        self.obs = bus
        self.iq.bus = bus
        if self.dra is not None:
            self.dra.bus = bus
            self.dra.clock = (lambda: self.cycle) if bus is not None else None
        if bus is not None:
            if not isinstance(self.predictor, ProbedPredictor):
                self.predictor = ProbedPredictor(self.predictor)
            self.predictor.bus = bus
            self.predictor.clock = lambda: self.cycle
        elif isinstance(self.predictor, ProbedPredictor):
            self.predictor = self.predictor.inner
        for thread in self.threads:
            generator = thread.generator
            if not hasattr(generator, "phase_hook"):
                continue
            if bus is None:
                generator.phase_hook = None
                continue

            def _emit_phase(
                ordinal: int, index: int, name: str, _tid: int = thread.tid
            ) -> None:
                self.obs.emit(PhaseEvent(
                    cycle=self.cycle, thread=_tid, name=name, index=ordinal
                ))

            generator.phase_hook = _emit_phase
            # anchor attribution: announce the phase in effect right now
            generator.announce()

    # ------------------------------------------------------------------ events

    def _schedule(self, cycle: int, event: tuple) -> None:
        self._events.setdefault(cycle, []).append(event)

    def _run_events(self, cycle: int) -> None:
        for event in self._events.pop(cycle, ()):
            kind = event[0]
            if kind == "confirm":
                self._ev_confirm(event[1], event[2])
            elif kind == "reissue":
                self._ev_reissue(event[1], event[2])
            elif kind == "spec":
                self._ev_spec(event[1], event[2], event[3])
            elif kind == "wb":
                self._ev_writeback(event[1], event[2], cycle)
            elif kind == "flush":
                self._ev_flush(event[1], event[2], cycle)
            elif kind == "memtrap":
                self._ev_memtrap(event[1], event[2], cycle)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")

    def _ev_confirm(self, inst: DynInst, epoch: int) -> None:
        """Execution stage confirmed the instruction: release its entry."""
        if inst.squashed or inst.issue_count != epoch or not inst.executed:
            return
        inst.confirmed = True
        inst.in_iq = False
        self.iq.release(inst)
        self.threads[inst.thread].iq_count -= 1
        if self.obs is not None:
            self.obs.emit(ConfirmEvent(
                cycle=self.cycle, uid=inst.uid, thread=inst.thread
            ))

    def _ev_reissue(self, inst: DynInst, epoch: int) -> None:
        """IQ notified of a mis-speculated execution: ready the reissue."""
        if inst.squashed or inst.issue_count != epoch or inst.executed:
            return
        self.iq.mark_reissue(inst)
        dst = inst.dst_preg
        if dst is not None and self.regfile.avail[dst] is None:
            # retract the optimistic publication so consumers re-gate on
            # the (future) reissue
            self.regfile.spec_avail[dst] = None

    def _ev_spec(self, producer: DynInst, preg: int, value: Optional[int]) -> None:
        """Load resolution feedback: retract or publish a wakeup time.

        ``None`` retracts a mis-speculated publication (the IQ learned
        the load missed); a value re-publishes it once the resolution is
        known, which is the earliest dependents may be selected.
        """
        if producer.squashed:
            return
        self.regfile.spec_avail[preg] = value

    def _ev_writeback(self, producer: DynInst, preg: int, cycle: int) -> None:
        """Value leaves the forwarding buffer for the register file."""
        if producer.squashed:
            return
        self.regfile.writeback[preg] = cycle
        if self.obs is not None:
            self.obs.emit(WritebackEvent(cycle=cycle, preg=preg))
        if self.dra is not None:
            self.dra.on_writeback(preg)

    def _ev_flush(self, thread: _ThreadState, boundary: DynInst, cycle: int) -> None:
        """REFETCH recovery: squash and re-fetch everything after a load."""
        if boundary.squashed:
            return
        self.stats.load_refetch_flushes += 1
        self._flush_younger(thread, boundary, cycle)

    def _memdep_blocked(self, inst: DynInst) -> bool:
        """Whether a store-wait load must keep holding.

        Store-wait prediction uses the 21264 semantics — hold only until
        every older store has *issued* (cheap, restores ordering in the
        common case).  The conservative policy enforces full ordering:
        hold until every older store has executed, which can never trap.
        """
        store_queue = self.threads[inst.thread].store_queue
        if store_queue is None:
            return False
        if self.config.memdep.policy is MemDepPolicy.CONSERVATIVE:
            return store_queue.has_older_unexecuted(inst.uid)
        return store_queue.has_older_unissued(inst.uid)

    def _ev_memtrap(self, store: DynInst, boundary_uid: int, cycle: int) -> None:
        """Load/store reorder trap: squash from the offending load and
        re-fetch — the §1 example of a loop whose recovery stage (fetch)
        is earlier than its initiation stage (issue)."""
        if store.squashed:
            return
        thread = self.threads[store.thread]
        self.stats.memdep_traps += 1
        self._flush_from(thread, boundary_uid, cycle, reason="memdep_trap")

    # ------------------------------------------------------------------- tick

    def tick(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._run_events(cycle)
        self._retire(cycle)
        self._execute(cycle)
        ports_before = self.iq.port_stalls
        self._issue(cycle)
        self._insert(cycle)
        self._rename(cycle)
        self._fetch(cycle)
        if self.store_wait is not None:
            self.store_wait.tick(cycle)
        self.stats.cycles += 1
        self.stats.iq_occupancy_sum += self.iq.count
        self.stats.iq_issued_waiting_sum += self.iq.issued_waiting
        if self.obs is not None:
            self.obs.emit(CycleEvent(
                cycle=cycle,
                branch_stall=any(
                    t.waiting_branch is not None for t in self.threads
                ),
                iq_full=not self.iq.has_space(),
                rob_full=self._inflight >= self.config.rob_entries,
                port_stalls=self.iq.port_stalls - ports_before,
            ))
        self.cycle += 1

    # ------------------------------------------------------------------ retire

    def _retire(self, cycle: int) -> None:
        budget = self.config.retire_width
        for thread in self.threads:
            while budget > 0 and thread.rob:
                inst = thread.rob[0]
                if not (inst.executed and inst.confirmed):
                    break
                dst = inst.dst_preg
                if dst is not None:
                    avail = self.regfile.avail[dst]
                    if avail is None or avail > cycle:
                        break  # e.g. a load still waiting on memory
                thread.rob.popleft()
                self._inflight -= 1
                if thread.store_queue is not None and \
                        inst.op.opclass is OpClass.STORE:
                    thread.store_queue.remove(inst)
                inst.retire_cycle = cycle
                if inst.prev_dst_preg is not None:
                    self._producer[inst.prev_dst_preg] = None
                    self.regfile.free(inst.prev_dst_preg)
                thread.stats.retired += 1
                budget -= 1
                if self.obs is not None:
                    self.obs.emit(RetireEvent(
                        cycle=cycle, uid=inst.uid, thread=inst.thread
                    ))
                if self.retire_hook is not None:
                    self.retire_hook(inst)

    # ----------------------------------------------------------------- execute

    def _execute(self, cycle: int) -> None:
        for inst in self._exec_pipe.pop(cycle, ()):
            if inst.squashed or inst.executed:
                continue
            inst.exec_start_cycle = cycle
            fault = self._operand_fault(inst, cycle)
            if fault is None and self.dra is not None \
                    and not self._locate_operands(inst, cycle):
                fault = ReissueCause.OPERAND_MISS
                self.stats.reissues[ReissueCause.OPERAND_MISS] += 1
                self._frontend_stall_until = max(
                    self._frontend_stall_until,
                    cycle + self.config.dra.frontend_stall,
                )
            if fault is not None:
                if fault is not ReissueCause.OPERAND_MISS \
                        and self.dra is not None \
                        and self.dra.config.shadow_fb_decrement:
                    self._shadow_fb_reads(inst, cycle)
                if self.obs is not None:
                    self.obs.emit(ExecuteEvent(
                        cycle=cycle, uid=inst.uid, thread=inst.thread,
                        epoch=inst.issue_count, ok=False,
                    ))
                    self.obs.emit(ReissueEvent(
                        cycle=cycle, uid=inst.uid, thread=inst.thread,
                        cause=fault.value,
                    ))
                self._schedule(
                    cycle + self.config.iq_feedback_delay,
                    ("reissue", inst, inst.issue_count),
                )
                continue
            if self.obs is not None:
                self.obs.emit(ExecuteEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread,
                    epoch=inst.issue_count, ok=True,
                ))
            self._complete(inst, cycle)

    def _operand_fault(
        self, inst: DynInst, cycle: int
    ) -> Optional[ReissueCause]:
        """Ground-truth check: was every source value actually computed?

        Returns the reissue cause on failure — a mis-speculation of the
        load resolution loop (directly, or transitively through an
        invalidated producer) — or ``None`` when all operands are valid.
        """
        avail = self.regfile.avail
        for preg in inst.src_pregs:
            value_time = avail[preg]
            if value_time is None or value_time > cycle:
                producer = self._producer[preg]
                if producer is not None and producer.is_load and producer.executed:
                    cause = ReissueCause.LOAD_MISS
                else:
                    cause = ReissueCause.DEPENDENT_INVALID
                self.stats.reissues[cause] += 1
                return cause
        if self.dra is None:
            for preg in inst.src_pregs:
                self.stats.operand_reads[OperandSource.REGFILE] += 1
                if self.obs is not None:
                    self.obs.emit(OperandEvent(
                        cycle=cycle, uid=inst.uid, thread=inst.thread,
                        preg=preg, source=OperandSource.REGFILE.value,
                    ))
        return None

    def _shadow_fb_reads(self, inst: DynInst, cycle: int) -> None:
        """Forwarding-buffer reads performed by a killed (shadow) issue.

        A replayed instruction still drove the forwarding network for
        its valid operands; those reads decrement the insertion-table
        consumer counts exactly like a successful read would (§5.4).
        """
        assert self.dra is not None
        avail = self.regfile.avail
        for idx, preg in enumerate(inst.src_pregs):
            if inst.preread[idx] or inst.payload_valid[idx]:
                continue
            value_time = avail[preg]
            if value_time is None or value_time > cycle:
                continue
            if self.fb.holds(preg, cycle):
                self.dra.on_forward_read(preg, inst.cluster)

    def _locate_operands(self, inst: DynInst, cycle: int) -> bool:
        """DRA operand location (§5): payload, forwarding buffer, CRC.

        Returns False on an operand miss, after arranging the recovery
        (register-file read into the IQ payload).
        """
        assert self.dra is not None
        dra = self.dra
        ok = True
        for idx, preg in enumerate(inst.src_pregs):
            if inst.preread[idx]:
                self._count_operand(inst, idx, OperandSource.PREREAD, cycle)
                continue
            if inst.payload_valid[idx]:
                # recovered into the payload after an earlier miss;
                # already classified as MISS
                continue
            if self.fb.holds(preg, cycle):
                dra.on_forward_read(preg, inst.cluster)
                self._count_operand(inst, idx, OperandSource.FORWARD, cycle)
                continue
            if dra.crc_lookup(preg, inst.cluster):
                self._count_operand(inst, idx, OperandSource.CRC, cycle)
                continue
            # operand miss: fetch from the register file into the payload
            ok = False
            self._count_operand(inst, idx, OperandSource.MISS, cycle, force=True)
            self.stats.operand_miss_events += 1
            inst.payload_valid[idx] = True
            inst.min_reissue_cycle = max(
                inst.min_reissue_cycle,
                cycle + self.config.rf_read_latency + dra.config.payload_transit,
            )
        return ok

    def _count_operand(
        self,
        inst: DynInst,
        idx: int,
        source: OperandSource,
        cycle: int,
        force: bool = False,
    ) -> None:
        """Classify an operand read once per operand (Figure 9)."""
        if inst.operand_counted[idx] and not force:
            return
        if not inst.operand_counted[idx]:
            self.stats.operand_reads[source] += 1
            if self.obs is not None:
                self.obs.emit(OperandEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread,
                    preg=inst.src_pregs[idx], source=source.value,
                ))
        inst.operand_counted[idx] = True

    def _complete(self, inst: DynInst, cycle: int) -> None:
        """All operands present and valid: perform the execution."""
        inst.executed = True
        config = self.config
        latency = inst.op.exec_latency
        opclass = inst.op.opclass

        if opclass.is_memory:
            latency += self._access_memory(inst, cycle)
        dst = inst.dst_preg
        avail_time = cycle + latency
        inst.complete_cycle = avail_time
        if self.obs is not None:
            self.obs.emit(CompleteEvent(
                cycle=cycle, uid=inst.uid, thread=inst.thread,
                avail_cycle=avail_time,
            ))
            if inst.is_load:
                self.obs.emit(LoadResolvedEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread,
                    hit=self._load_as_predicted(inst),
                    speculated=(
                        config.load_recovery not in (
                            LoadRecovery.STALL, LoadRecovery.SSR
                        )
                        and dst is not None
                    ),
                    latency=latency,
                ))
        if dst is not None:
            self.regfile.avail[dst] = avail_time
            self._schedule(
                avail_time + config.fb_depth, ("wb", inst, dst)
            )
        # figure 6 instrumentation: operand availability gap
        if len(inst.src_pregs) == 2:
            first = self.regfile.avail[inst.src_pregs[0]]
            second = self.regfile.avail[inst.src_pregs[1]]
            self.stats.operand_gap_samples.append(abs(first - second))
        else:
            self.stats.operand_gap_samples.append(0)

        # load resolution feedback.  Dependents of a mis-speculated (or
        # non-speculated) load may only be selected once the resolution
        # signal reaches the IQ: the re-publication below happens at the
        # fill (minus an optional wake lead), so a reissued dependent
        # reaches execute a full IQ->EX after the data — the §2.2.2
        # mechanism that makes the load loop scale with IQ->EX length.
        if inst.is_load and dst is not None:
            notify = cycle + config.iq_feedback_delay
            publish = max(notify, avail_time - config.load_fill_wake_lead)
            if config.load_recovery is LoadRecovery.STALL:
                self._schedule(publish, ("spec", inst, dst, avail_time))
            elif config.load_recovery is LoadRecovery.SSR:
                # selective stall (SSR): dependents were held at issue,
                # so this publication cannot mis-speculate — but it may
                # be advanced up to ssr_threshold cycles ahead of the
                # STALL machine's conservative release point, letting a
                # dependent's IQ->EX traversal overlap the tail of the
                # load's latency (readiness still gates on avail_time)
                publish = max(notify, publish - config.ssr_threshold)
                self._schedule(publish, ("spec", inst, dst, avail_time))
            elif not self._load_as_predicted(inst):
                self.stats.load_misspeculations += 1
                self._schedule(notify, ("spec", inst, dst, None))
                self._schedule(publish, ("spec", inst, dst, avail_time))
                if config.load_recovery is LoadRecovery.REFETCH:
                    self._schedule(
                        notify, ("flush", self.threads[inst.thread], inst)
                    )

        # memory dependence loop: a store whose address resolves after a
        # younger load to the same line already executed traps (§1, Fig 2)
        if (
            self.config.memdep is not None
            and inst.op.opclass is OpClass.STORE
        ):
            victim_uid = self._find_reorder_victim(inst, cycle)
            if victim_uid is not None:
                self._schedule(
                    cycle + config.iq_feedback_delay,
                    ("memtrap", inst, victim_uid - 1),
                )

        # branch resolution: release the thread's fetch stall
        thread = self.threads[inst.thread]
        if thread.waiting_branch is inst:
            thread.waiting_branch = None
            thread.fetch_blocked_until = max(
                thread.fetch_blocked_until,
                cycle + config.branch_feedback_delay,
            )

        # confirmation: the IQ entry can be cleared one loop delay later
        self._schedule(
            cycle + config.iq_feedback_delay + config.iq_clear_cycles,
            ("confirm", inst, inst.issue_count),
        )

    def _load_as_predicted(self, inst: DynInst) -> bool:
        """Whether the load behaved like the speculated L1 hit."""
        return bool(inst.dcache_hit) and bool(inst.dtlb_hit) and not inst.bank_conflict

    def _access_memory(self, inst: DynInst, cycle: int) -> int:
        """Data-cache access; returns latency beyond address generation."""
        result = self.hierarchy.load(inst.op.address, cycle + 1) \
            if inst.is_load else self.hierarchy.store(inst.op.address, cycle + 1)
        inst.dcache_hit = result.l1_hit
        inst.l2_hit = result.l2_hit
        inst.dtlb_hit = result.tlb_hit
        inst.bank_conflict = result.bank_conflict
        if inst.is_load:
            self.stats.loads_executed += 1
            if not result.l1_hit:
                self.stats.load_l1_misses += 1
                if result.l2_hit is False:
                    self.stats.load_l2_misses += 1
            if result.bank_conflict:
                self.stats.load_bank_conflicts += 1
        if not result.tlb_hit:
            self.stats.dtlb_misses += 1
            # trap-style recovery: refill the front of the pipe (§3.1)
            thread = self.threads[inst.thread]
            thread.fetch_blocked_until = max(
                thread.fetch_blocked_until,
                cycle + self.config.fetch_depth + self.config.dec_iq,
            )
        return result.latency

    # ------------------------------------------------------------------- issue

    def _issue(self, cycle: int) -> None:
        config = self.config
        hit_latency = config.hierarchy.l1d.hit_latency
        # STALL and SSR both hold dependents until the load resolves:
        # neither publishes an optimistic wakeup at issue
        speculate_loads = config.load_recovery not in (
            LoadRecovery.STALL, LoadRecovery.SSR
        )
        for inst in self.iq.select(cycle):
            self.stats.issues += 1
            if inst.issue_count == 1:
                self.stats.first_issues += 1
            dst = inst.dst_preg
            if dst is not None:
                if inst.is_load:
                    if speculate_loads:
                        # optimistic: assume an L1 hit
                        self.regfile.spec_avail[dst] = (
                            cycle + config.iq_ex + inst.op.exec_latency + hit_latency
                        )
                else:
                    self.regfile.spec_avail[dst] = (
                        cycle + config.iq_ex + inst.op.exec_latency
                    )
            self._exec_pipe.setdefault(cycle + config.iq_ex, []).append(inst)

    # ------------------------------------------------------------------ insert

    def _insert(self, cycle: int) -> None:
        budget = self.config.rename_width
        blocked = False
        for thread in self.threads:
            pipe = thread.insert_pipe
            while budget > 0 and pipe and pipe[0][0] <= cycle:
                if not self.iq.has_space():
                    blocked = True
                    break
                __, inst = pipe.popleft()
                self.iq.insert(inst, cycle)
                inst.in_iq = True
                thread.iq_count += 1
                budget -= 1
        if blocked:
            self.stats.iq_full_stall_cycles += 1

    # ------------------------------------------------------------------ rename

    def _rename(self, cycle: int) -> None:
        config = self.config
        budget = config.rename_width
        blocked = False
        for thread in self.threads:
            pipe = thread.fetch_pipe
            while budget > 0 and pipe and pipe[0][0] <= cycle:
                if self._inflight >= config.rob_entries:
                    blocked = True
                    break
                inst = pipe[0][1]
                if (
                    inst.op.opclass is OpClass.STORE
                    and thread.store_queue is not None
                    and thread.store_queue.full
                ):
                    self.stats.store_queue_full_stalls += 1
                    break
                if inst.op.opclass is OpClass.MEM_BARRIER and thread.rob:
                    # the memory barrier loop (§1): the mapper stalls the
                    # barrier and everything behind it until all preceding
                    # instructions complete — an infrequent loop managed
                    # by stalling rather than speculation
                    self.stats.barrier_stall_cycles += 1
                    break
                needs_preg = inst.op.dst is not None
                if needs_preg and not self.regfile.can_allocate():
                    blocked = True
                    break
                pipe.popleft()
                self._do_rename(thread, inst, cycle)
                budget -= 1
        if blocked:
            self.stats.rob_full_stall_cycles += 1

    def _do_rename(self, thread: _ThreadState, inst: DynInst, cycle: int) -> None:
        config = self.config
        inst.rename_cycle = cycle
        for arch in inst.op.real_srcs:
            inst.src_pregs.append(thread.rename_map.lookup(arch))
        inst.cluster = self._slot_cluster(inst)
        if inst.op.dst is not None:
            new_preg, prev_preg = thread.rename_map.rename_dest(inst.op.dst)
            inst.dst_preg = new_preg
            inst.prev_dst_preg = prev_preg
            self._producer[new_preg] = inst
            if self.dra is not None:
                self.dra.on_allocate(new_preg)
        if self.config.memdep is not None:
            if inst.op.opclass is OpClass.STORE:
                thread.store_queue.add(inst)
            elif inst.is_load:
                policy = self.config.memdep.policy
                if policy is MemDepPolicy.CONSERVATIVE:
                    inst.memdep_wait = True
                elif policy is MemDepPolicy.PREDICT:
                    inst.memdep_wait = self.store_wait.predict_wait(inst.op.pc)
                if inst.memdep_wait:
                    self.stats.store_wait_loads += 1
        if self.dra is not None:
            for preg in inst.src_pregs:
                inst.preread.append(self.dra.try_preread(preg, inst.cluster))
                inst.payload_valid.append(False)
                inst.operand_counted.append(False)
        else:
            count = len(inst.src_pregs)
            inst.preread.extend([False] * count)
            inst.payload_valid.extend([False] * count)
            inst.operand_counted.extend([False] * count)
        thread.rob.append(inst)
        self._inflight += 1
        thread.insert_pipe.append(
            (cycle + config.dec_iq - config.rename_offset, inst)
        )
        if self.obs is not None:
            # emitted after the rename completed so the event carries the
            # full outcome (pregs, pre-read decisions) for checkers
            self.obs.emit(RenameEvent(
                cycle=cycle, uid=inst.uid, thread=inst.thread,
                arch_dst=-1 if inst.op.dst is None else inst.op.dst,
                dst_preg=-1 if inst.dst_preg is None else inst.dst_preg,
                prev_dst_preg=(
                    -1 if inst.prev_dst_preg is None else inst.prev_dst_preg
                ),
                src_pregs=tuple(inst.src_pregs),
                preread=tuple(inst.preread),
            ))

    def _slot_cluster(self, inst: DynInst) -> int:
        """Assign the functional-unit cluster at decode (§2).

        ``dependence`` slotting follows the first in-flight producer so
        dependence trees share a cluster (minimal operand transport);
        anything without an in-flight producer — and everything under
        ``round_robin`` — is spread evenly.
        """
        if self.config.slotting == "dependence":
            # follow the producer unless its cluster is congested (the
            # slotter balances load like the 21264 arbiters)
            limit = 2 * self.config.iq_entries // self.config.num_clusters
            for preg in inst.src_pregs:
                producer = self._producer[preg]
                if producer is not None and not producer.executed:
                    if self.iq.cluster_backlog(producer.cluster) < limit:
                        return producer.cluster
                    break
        cluster = self._cluster_rr
        self._cluster_rr = (self._cluster_rr + 1) % self.config.num_clusters
        return cluster

    # ------------------------------------------------------------------- fetch

    def _fetch(self, cycle: int) -> None:
        if cycle < self._frontend_stall_until:
            self.stats.frontend_dra_stall_cycles += 1
            return
        thread = self._choose_fetch_thread(cycle)
        if thread is None:
            return
        config = self.config
        extra = 0
        group_started = False
        ready_base = cycle + config.fetch_depth + config.rename_offset
        for _ in range(config.fetch_width):
            op = thread.next_op()
            inst = DynInst(op=op, thread=thread.tid)
            inst.fetch_cycle = cycle
            if not group_started:
                extra = self.hierarchy.fetch(op.pc)
                group_started = True
                if self.line_predictor is not None and \
                        thread.last_taken_pc is not None:
                    if not self.line_predictor.observe(
                            thread.last_taken_pc, op.pc):
                        # tight next-line loop mispredict: one fetch bubble
                        thread.fetch_blocked_until = max(
                            thread.fetch_blocked_until,
                            cycle + 1 + self.line_predictor.config.bubble,
                        )
                    thread.last_taken_pc = None
            thread.fetch_pipe.append((ready_base + extra, inst))
            thread.stats.fetched += 1
            if self.obs is not None:
                self.obs.emit(FetchEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread,
                    pc=op.pc, opclass=op.opclass.name.lower(),
                ))
            if op.opclass.is_control and self._fetch_control(thread, inst, cycle):
                if op.taken and not inst.mispredicted:
                    thread.last_taken_pc = op.pc
                break

    def _choose_fetch_thread(self, cycle: int) -> Optional[_ThreadState]:
        """Pick a fetch thread among the eligible ones (SMT policy)."""
        eligible: List[_ThreadState] = []
        for thread in self.threads:
            if thread.waiting_branch is not None:
                thread.stats.branch_stall_cycles += 1
                continue
            if thread.fetch_blocked_until > cycle:
                continue
            if thread.frontend_count >= _FRONTEND_LIMIT:
                continue
            eligible.append(thread)
        chosen = choose_fetch_thread(
            eligible, self.config.fetch_policy, self._last_fetch_tid
        )
        if chosen is not None:
            self._last_fetch_tid = chosen.tid
        return chosen

    def _fetch_control(
        self, thread: _ThreadState, inst: DynInst, cycle: int
    ) -> bool:
        """Handle a control op at fetch; True ends the fetch group."""
        op = inst.op
        opclass = op.opclass
        if opclass is OpClass.BRANCH:
            predicted = self.predictor.predict(op.pc)
            self.predictor.update(op.pc, op.taken)
            inst.predicted_taken = predicted
            self.stats.cond_branches += 1
            if predicted != op.taken:
                self.stats.cond_mispredicts += 1
                inst.mispredicted = True
            self._emit_branch_outcome(inst, "cond", cycle)
            if inst.mispredicted:
                thread.waiting_branch = inst
                return True
            if predicted:
                self._btb_redirect(thread, op, cycle)
                return True
            return False
        if opclass is OpClass.CALL:
            thread.ras.push(op.pc + 4)
            self._btb_redirect(thread, op, cycle)
            self._emit_branch_outcome(inst, "call", cycle)
            return True
        if opclass is OpClass.RETURN:
            predicted_target = thread.ras.pop()
            if predicted_target != op.target:
                self.stats.ras_mispredicts += 1
                inst.mispredicted = True
                thread.waiting_branch = inst
            self._emit_branch_outcome(inst, "return", cycle)
            return True
        # direct jump
        self._btb_redirect(thread, op, cycle)
        self._emit_branch_outcome(inst, "jump", cycle)
        return True

    def _emit_branch_outcome(
        self, inst: DynInst, flavor: str, cycle: int
    ) -> None:
        """Branch-resolution-loop probe (no-op without a bus)."""
        if self.obs is None:
            return
        self.obs.emit(BranchOutcomeEvent(
            cycle=cycle, uid=inst.uid, thread=inst.thread,
            pc=inst.op.pc, flavor=flavor, taken=inst.op.taken,
            mispredicted=inst.mispredicted,
        ))

    def _btb_redirect(self, thread: _ThreadState, op: MicroOp, cycle: int) -> None:
        """Taken-path redirect through the BTB; a miss costs a bubble."""
        target = self.btb.lookup(op.pc)
        inst_bubble = 0
        if target is None:
            self.stats.btb_misses += 1
            inst_bubble = self.btb.config.miss_bubble
        self.btb.install(op.pc, op.target)
        if inst_bubble:
            thread.fetch_blocked_until = max(
                thread.fetch_blocked_until, cycle + inst_bubble
            )

    def _find_reorder_victim(
        self, store: DynInst, cycle: int
    ) -> Optional[int]:
        """UID of the oldest younger load that executed against this
        store's word before the store's address was known.

        Conflict checking is word-granular (8 bytes), like real
        load/store queues; line-granular checking would flood the
        store-wait table with false conflicts."""
        word = store.op.address >> 3
        thread = self.threads[store.thread]
        for inst in thread.rob:
            if inst.uid <= store.uid or not inst.is_load:
                continue
            if inst.executed and inst.op.address >> 3 == word:
                if self.store_wait is not None:
                    self.store_wait.train(inst.op.pc)
                return inst.uid
        return None

    # ------------------------------------------------------------------- flush

    def _flush_younger(
        self,
        thread: _ThreadState,
        boundary: DynInst,
        cycle: int,
        reason: str = "load_refetch",
    ) -> None:
        """Squash every instruction of ``thread`` younger than ``boundary``."""
        self._flush_from(thread, boundary.uid, cycle, reason)

    def _flush_from(
        self,
        thread: _ThreadState,
        boundary_uid: int,
        cycle: int,
        reason: str = "load_refetch",
    ) -> None:
        """Squash every instruction of ``thread`` with uid > boundary_uid.

        Rolls back renaming youngest-first, releases IQ entries, and
        queues the squashed micro-ops for replay so fetch re-delivers
        them in program order.
        """
        victims: List[DynInst] = []
        while thread.rob and thread.rob[-1].uid > boundary_uid:
            victims.append(thread.rob.pop())
        for inst in victims:  # youngest first
            if inst.dst_preg is not None:
                thread.rename_map.undo_rename(
                    inst.op.dst, inst.dst_preg, inst.prev_dst_preg
                )
                self._producer[inst.dst_preg] = None
            inst.squashed = True
            if inst.in_iq:
                self.iq.remove_squashed(inst)
                inst.in_iq = False
                thread.iq_count -= 1
            self.stats.squashed_instructions += 1
            if self.obs is not None:
                self.obs.emit(SquashEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread,
                    reason=reason,
                ))
        self._inflight -= len(victims)
        thread.insert_pipe = deque(
            item for item in thread.insert_pipe if not item[1].squashed
        )
        # fetch-pipe instructions are dropped and transparently
        # re-fetched; they never entered the OoO machine, so no
        # SquashEvent (keeps event counts reconcilable with CoreStats) —
        # a DropEvent records the discard so the instruction ledger
        # still conserves exactly
        fetch_insts = [item[1] for item in thread.fetch_pipe]
        for inst in fetch_insts:
            inst.squashed = True
            if self.obs is not None:
                self.obs.emit(DropEvent(
                    cycle=cycle, uid=inst.uid, thread=inst.thread
                ))
        thread.fetch_pipe.clear()
        replay_ops = [inst.op for inst in reversed(victims)]
        replay_ops.extend(inst.op for inst in fetch_insts)
        thread.replay.extendleft(reversed(replay_ops))
        if thread.waiting_branch is not None and thread.waiting_branch.squashed:
            thread.waiting_branch = None
        if thread.store_queue is not None:
            thread.store_queue.drop_squashed()
        thread.fetch_blocked_until = max(
            thread.fetch_blocked_until, cycle + 1
        )

    # ------------------------------------------------------------------ warmup

    def functional_warmup(self, ops_per_thread: int) -> None:
        """Fast-forward: train predictors, BTB, caches and TLB.

        Streams instructions through the branch and memory structures
        without detailed pipeline timing, the way execution-driven
        simulators warm state over millions of skipped instructions
        (paper §3.1: 1-2 M warmup instructions).  Must be called before
        :meth:`run`'s detailed simulation begins.
        """
        if self.cycle != 0 or self.retired != 0:
            raise RuntimeError("functional warmup must precede detailed simulation")
        self._functional_stream(ops_per_thread)

    def _functional_stream(self, ops_per_thread: int) -> None:
        """Stream ops through predictors/caches without pipeline timing.

        The engine behind :meth:`functional_warmup`; the sampled
        backend also calls it mid-run to fast-forward between detailed
        measurement windows.
        """
        for thread in self.threads:
            for i in range(ops_per_thread):
                op = thread.next_op()
                opclass = op.opclass
                if i % 4 == 0:
                    self.hierarchy.fetch(op.pc)
                if self.line_predictor is not None:
                    if thread.last_taken_pc is not None:
                        self.line_predictor.observe(thread.last_taken_pc, op.pc)
                        thread.last_taken_pc = None
                    if op.opclass.is_control and op.taken:
                        thread.last_taken_pc = op.pc
                if opclass is OpClass.BRANCH:
                    self.predictor.predict(op.pc)
                    self.predictor.update(op.pc, op.taken)
                    if op.taken:
                        self.btb.install(op.pc, op.target)
                elif opclass is OpClass.CALL:
                    thread.ras.push(op.pc + 4)
                    self.btb.install(op.pc, op.target)
                elif opclass is OpClass.RETURN:
                    thread.ras.pop()
                elif opclass is OpClass.JUMP:
                    self.btb.install(op.pc, op.target)
                elif opclass.is_memory:
                    if opclass is OpClass.LOAD:
                        self.hierarchy.load(op.address)
                    else:
                        self.hierarchy.store(op.address)

    # --------------------------------------------------------------------- run

    @property
    def retired(self) -> int:
        """Total retired instructions so far."""
        return self.stats.retired

    def run(
        self,
        instructions: int,
        warmup: int = 0,
        max_cycles: Optional[int] = None,
    ) -> CoreStats:
        """Run until ``warmup + instructions`` have retired.

        ``warmup`` instructions train the predictors/caches before the
        measurement window opens.  Raises
        :class:`~repro.errors.SimulationHangError` (with a diagnostic
        :class:`~repro.errors.HangSnapshot`) if no instruction retires
        for a long stretch (deadlock detector).
        """
        if instructions < 1:
            raise ConfigError("must simulate at least one instruction")
        target = warmup + instructions
        last_retired = -1
        last_progress_cycle = 0
        warmed = warmup == 0
        if warmed:
            self.stats.start_measurement()
        try:
            while self.retired < target:
                if max_cycles is not None and self.cycle >= max_cycles:
                    break
                self.tick()
                retired = self.retired
                if not warmed and retired >= warmup:
                    self.stats.start_measurement()
                    warmed = True
                if retired != last_retired:
                    last_retired = retired
                    last_progress_cycle = self.cycle
                elif self.cycle - last_progress_cycle > _DEADLOCK_WINDOW:
                    snapshot = self._hang_snapshot(last_progress_cycle)
                    raise SimulationHangError(
                        f"pipeline deadlock: no retire since cycle "
                        f"{last_progress_cycle} (cycle={self.cycle}, "
                        f"retired={retired}, iq={self.iq.count}, "
                        f"inflight={self._inflight})",
                        snapshot,
                    )
        finally:
            # assignment, not +=: stays correct across the sampled
            # backend's repeated run() windows on one simulator
            self.stats.port_stalls = self.iq.port_stalls
        return self.stats

    def _hang_snapshot(self, last_progress_cycle: int) -> HangSnapshot:
        """Diagnostic state for the deadlock detector's exception."""
        oldest: Optional[DynInst] = None
        for thread in self.threads:
            if thread.rob and (oldest is None or thread.rob[0].uid < oldest.uid):
                oldest = thread.rob[0]
        described = None
        if oldest is not None:
            described = (
                f"T{oldest.thread} uid={oldest.uid} "
                f"{oldest.op.opclass.name} pc={oldest.op.pc:#x} "
                f"fetched@{oldest.fetch_cycle} issued {oldest.issue_count}x "
                f"executed={oldest.executed}"
            )
        return HangSnapshot(
            cycle=self.cycle,
            last_retire_cycle=last_progress_cycle,
            retired=self.retired,
            inflight=self._inflight,
            stage_occupancy={
                "fetch/decode": sum(len(t.fetch_pipe) for t in self.threads),
                "rename->IQ": sum(len(t.insert_pipe) for t in self.threads),
                "issue queue": self.iq.count,
                "execute": sum(len(v) for v in self._exec_pipe.values()),
                "rob": sum(len(t.rob) for t in self.threads),
            },
            oldest_instruction=described,
        )
