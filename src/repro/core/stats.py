"""Simulation statistics.

``CoreStats`` aggregates every counter the paper's figures and analysis
need: IPC, reissue (useless work) by cause, operand-source breakdown
(Figure 9), the operand-availability gap samples behind Figure 6, branch
and memory behaviour, IQ occupancy pressure, and per-loop cost records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class OperandSource(enum.Enum):
    """Where an operand value was obtained at execute (paper Figure 9)."""

    PREREAD = "preread"        # read from the register file in DEC->IQ
    FORWARD = "forward"        # forwarding buffer (timely operand)
    CRC = "crc"                # cluster register cache (cached operand)
    MISS = "miss"              # operand miss -> register file recovery
    REGFILE = "regfile"        # base machine: read during IQ->EX


class ReissueCause(enum.Enum):
    """Why an issued instruction had to reissue."""

    LOAD_MISS = "load_miss"            # load resolution loop mis-speculation
    OPERAND_MISS = "operand_miss"      # operand resolution loop (DRA)
    DEPENDENT_INVALID = "dependent"    # transitively read an invalid value


@dataclass
class ThreadStats:
    """Per-hardware-thread counters."""

    fetched: int = 0
    retired: int = 0
    #: cycles this thread's fetch was blocked on an unresolved branch
    branch_stall_cycles: int = 0


@dataclass
class CoreStats:
    """All counters for one simulation run."""

    cycles: int = 0
    threads: List[ThreadStats] = field(default_factory=list)

    # --- measurement window (IPC is reported post-warmup) -----------------
    measure_start_cycle: int = 0
    measure_start_retired: int = 0

    # --- issue activity --------------------------------------------------
    issues: int = 0
    first_issues: int = 0
    reissues: Dict[ReissueCause, int] = field(
        default_factory=lambda: {cause: 0 for cause in ReissueCause}
    )

    # --- branch loop ------------------------------------------------------
    cond_branches: int = 0
    cond_mispredicts: int = 0
    btb_misses: int = 0
    ras_mispredicts: int = 0

    # --- load loop ---------------------------------------------------------
    loads_executed: int = 0
    load_l1_misses: int = 0
    load_l2_misses: int = 0
    load_bank_conflicts: int = 0
    dtlb_misses: int = 0
    #: loads whose latency differed from the predicted L1 hit
    load_misspeculations: int = 0

    # --- DRA / operand loop -----------------------------------------------------
    operand_reads: Dict[OperandSource, int] = field(
        default_factory=lambda: {source: 0 for source in OperandSource}
    )
    operand_miss_events: int = 0
    crc_insertions: int = 0
    crc_invalidations: int = 0
    crc_evictions: int = 0
    insertion_saturations: int = 0

    # --- figure 6 instrumentation --------------------------------------------
    #: |first operand avail - second operand avail| for 2-source instrs
    operand_gap_samples: List[int] = field(default_factory=list)

    # --- occupancy / pressure ----------------------------------------------
    iq_occupancy_sum: int = 0
    iq_issued_waiting_sum: int = 0
    #: issue opportunities lost to register-file read-port limits (§2.1)
    port_stalls: int = 0
    iq_full_stall_cycles: int = 0
    rob_full_stall_cycles: int = 0
    frontend_dra_stall_cycles: int = 0
    #: cycles renaming stalled behind a memory barrier (§1's example of
    #: an infrequent loop managed by stalling)
    barrier_stall_cycles: int = 0

    # --- memory dependence loop ------------------------------------------------
    #: load/store reorder traps (recovery at fetch, §1's worked example)
    memdep_traps: int = 0
    #: loads renamed with their store-wait bit set
    store_wait_loads: int = 0
    store_queue_full_stalls: int = 0

    # --- squashes (refetch recovery / traps) ----------------------------------
    squashed_instructions: int = 0
    load_refetch_flushes: int = 0

    # --- observability ---------------------------------------------------------
    #: flattened metrics-registry snapshot (see repro.obs.metrics);
    #: populated only when a MetricsCollector was attached to the run
    obs_snapshot: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if not self.threads:
            self.threads = [ThreadStats()]

    # --- derived metrics -------------------------------------------------------

    @property
    def retired(self) -> int:
        """Total instructions retired across all threads."""
        return sum(t.retired for t in self.threads)

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle (0 when no cycles ran)."""
        if self.cycles == 0:
            return 0.0
        return self.retired / self.cycles

    def start_measurement(self) -> None:
        """Mark the end of warmup; ``measured_ipc`` covers what follows."""
        self.measure_start_cycle = self.cycles
        self.measure_start_retired = self.retired

    @property
    def measured_cycles(self) -> int:
        """Cycles inside the measurement window."""
        return self.cycles - self.measure_start_cycle

    @property
    def measured_retired(self) -> int:
        """Instructions retired inside the measurement window."""
        return self.retired - self.measure_start_retired

    @property
    def measured_ipc(self) -> float:
        """Post-warmup IPC — the figure-of-merit for all experiments."""
        if self.measured_cycles == 0:
            return 0.0
        return self.measured_retired / self.measured_cycles

    @property
    def total_reissues(self) -> int:
        """Instructions reissued — the paper's useless-work measure."""
        return sum(self.reissues.values())

    @property
    def branch_mispredict_rate(self) -> float:
        """Conditional-branch direction mispredict rate."""
        if self.cond_branches == 0:
            return 0.0
        return self.cond_mispredicts / self.cond_branches

    @property
    def load_l1_miss_rate(self) -> float:
        """L1 data miss rate over executed loads."""
        if self.loads_executed == 0:
            return 0.0
        return self.load_l1_misses / self.loads_executed

    @property
    def total_operand_reads(self) -> int:
        """Operand reads classified by source (DRA runs)."""
        return sum(self.operand_reads.values())

    @property
    def operand_miss_rate(self) -> float:
        """Fraction of operand reads that missed (the §6 apsi metric)."""
        total = self.total_operand_reads
        if total == 0:
            return 0.0
        return self.operand_reads[OperandSource.MISS] / total

    def operand_source_fractions(self) -> Dict[OperandSource, float]:
        """Normalised operand-source breakdown (Figure 9 rows)."""
        total = self.total_operand_reads
        if total == 0:
            return {source: 0.0 for source in OperandSource}
        return {
            source: count / total
            for source, count in self.operand_reads.items()
        }

    @property
    def avg_iq_occupancy(self) -> float:
        """Mean issue-queue occupancy over the run."""
        if self.cycles == 0:
            return 0.0
        return self.iq_occupancy_sum / self.cycles

    @property
    def avg_iq_issued_waiting(self) -> float:
        """Mean IQ entries holding already-issued instructions (§2.2.2)."""
        if self.cycles == 0:
            return 0.0
        return self.iq_issued_waiting_sum / self.cycles

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of headline metrics for reports."""
        return {
            "cycles": float(self.cycles),
            "retired": float(self.retired),
            "ipc": self.ipc,
            "reissues": float(self.total_reissues),
            "branch_mispredict_rate": self.branch_mispredict_rate,
            "load_l1_miss_rate": self.load_l1_miss_rate,
            "operand_miss_rate": self.operand_miss_rate,
            "avg_iq_occupancy": self.avg_iq_occupancy,
            "avg_iq_issued_waiting": self.avg_iq_issued_waiting,
            "port_stalls": float(self.port_stalls),
        }
