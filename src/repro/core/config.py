"""Core configuration.

``CoreConfig`` captures the base machine of the paper's §2 — an 8-wide,
128-entry-IQ, 8-cluster SMT out-of-order processor with a ~20-cycle
minimum integer pipeline — and exposes the two latencies the paper
studies as first-class knobs:

* ``dec_iq`` — decode to IQ-insertion latency (X in the paper's X_Y
  notation),
* ``iq_ex``  — issue to execute latency (Y).

Factory methods build the paper's configurations:

* :meth:`CoreConfig.base` — base pipeline for a given register-file read
  latency (IQ->EX = 2 + rf cycles: issue, payload, register read).
* :meth:`CoreConfig.with_dra` — the DRA pipeline: register read moved
  into DEC->IQ (pre-read), IQ->EX shrunk to 3 cycles (issue, payload +
  forwarding-buffer/CRC read, transport).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.branch.btb import BTBConfig
from repro.branch.line_predictor import LinePredictorConfig
from repro.branch.predictors import PredictorSpec
from repro.core.memdep import MemDepConfig
from repro.memory.hierarchy import HierarchyConfig


class LoadRecovery(enum.Enum):
    """How the load resolution loop is managed (§2.2.2).

    * ``REISSUE`` — speculate that loads hit; on a miss, reissue the
      issued instructions of the load's dependency tree from the IQ
      (the base machine's policy).
    * ``REFETCH`` — speculate, but recover by flushing and re-fetching
      everything after the load (easier hardware, far slower).
    * ``STALL`` — do not speculate: dependents wait until the load's
      outcome is known.
    * ``SSR`` — selective stall (Su et al. 2019): dependents are held
      at issue like ``STALL`` — they can never mis-speculate or
      reissue — but the resolution is published ``ssr_threshold``
      cycles before the conservative release point, so a held consumer
      overlaps part of its IQ->EX traversal with the load's wakeup.
      Threshold 0 is exactly the STALL machine, cycle for cycle.
    """

    REISSUE = "reissue"
    REFETCH = "refetch"
    STALL = "stall"
    SSR = "ssr"


#: Valid :class:`PortConfig` arbitration scheme names.
PORT_ARBITRATIONS = ("oldest_first", "operand_share", "banked")


@dataclass(frozen=True)
class PortConfig:
    """Register-file read-port arbitration (Los-style port reduction).

    On the base machine every issuing instruction consumes read ports;
    the scheme decides how a cycle's port budget is spent:

    * ``oldest_first`` — each selected instruction pays one port per
      source operand, oldest cluster first (the historical behaviour).
    * ``operand_share`` — same-cycle consumers of one physical register
      share a single read: a port is charged only for pregs not already
      read this cycle (the value is broadcast on the operand network).
    * ``banked`` — the register file is split into ``banks`` banks
      (``preg % banks``), each with ``rf_read_ports / banks`` ports; an
      instruction stalls when any of its operands' banks is exhausted,
      modelling a split-port file without a full crossbar.
    """

    arbitration: str = "oldest_first"
    #: Bank count for the ``banked`` scheme (ignored otherwise).
    banks: int = 2

    def __post_init__(self) -> None:
        if self.arbitration not in PORT_ARBITRATIONS:
            raise ValueError(
                f"unknown port arbitration: {self.arbitration!r} "
                f"(known: {', '.join(PORT_ARBITRATIONS)})"
            )
        if self.banks < 1:
            raise ValueError("need at least one register file bank")


@dataclass(frozen=True)
class DRAConfig:
    """Parameters of the Distributed Register Algorithm (§4-§5)."""

    #: Entries per cluster register cache (paper: 16 x 8 clusters).
    crc_entries: int = 16
    #: Insertion-table counter width; 2 bits saturate at 3 consumers.
    counter_bits: int = 2
    #: Cycles to move an operand fetched on a miss from the register
    #: file into the IQ payload (recovery path, §5.4).
    payload_transit: int = 2
    #: Front-end stall charged per operand-miss event (§5.4: "wiring to
    #: stall the front end ... while the missing operands are read").
    frontend_stall: int = 1
    #: Use an oracle replacement/insertion policy instead of FIFO
    #: (ablation of §5.1's "almost perfect knowledge" comparison).
    oracle_crc: bool = False
    #: Model a single centralized register cache of ``crc_entries``
    #: shared by all clusters instead of one per cluster — the strawman
    #: §4 argues against ("a small register cache results in a high miss
    #: rate ... may need to be of comparable size to a register file").
    centralized: bool = False
    #: When a value writes back, which registers are copied into the
    #: CRCs of the clusters that may still need them:
    #:
    #: * ``"filtered"`` — only registers whose insertion table recorded
    #:   outstanding consumers (the paper's §5.3 design; the insertion
    #:   table exists precisely to filter these copies).
    #: * ``"always"`` — every writeback is broadcast into every CRC,
    #:   the unfiltered strawman: same storage cost, but pollution
    #:   evicts live entries earlier and raises the operand miss rate.
    insertion_policy: str = "filtered"
    #: Whether instructions replayed in a load shadow still read the
    #: forwarding buffer for their valid operands (and so decrement the
    #: insertion-table consumer counts).  The default (False) models a
    #: kill-qualified decrement — a read belonging to an issue that is
    #: later squashed does not count down the consumer counter — which
    #: is what the paper's sub-1% miss rates imply.  True is the
    #: pessimistic electrical view (every issue drives the forwarding
    #: network); it roughly triples the operand miss rate and is used
    #: as an ablation.
    shadow_fb_decrement: bool = False

    def __post_init__(self) -> None:
        if self.crc_entries < 1:
            raise ValueError("CRC needs at least one entry")
        if self.counter_bits < 1:
            raise ValueError("insertion counters need at least one bit")
        if self.payload_transit < 0 or self.frontend_stall < 0:
            raise ValueError("latencies cannot be negative")
        if self.insertion_policy not in ("filtered", "always"):
            raise ValueError(
                f"unknown insertion policy: {self.insertion_policy!r}"
            )

    @property
    def counter_max(self) -> int:
        """Saturation value of the insertion-table counters."""
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class CoreConfig:
    """Full description of the simulated machine."""

    # --- widths ----------------------------------------------------------
    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 8          # 1 per cluster x 8 clusters
    retire_width: int = 8

    # --- pipeline geometry (cycles) -----------------------------------------
    fetch_depth: int = 4
    dec_iq: int = 5               # X: decode -> IQ insertion
    iq_ex: int = 5                # Y: issue -> execute
    rename_offset: int = 2        # rename completes this deep into DEC->IQ
    rf_read_latency: int = 3      # register file read (drives base IQ->EX)

    # --- structures --------------------------------------------------------
    iq_entries: int = 128
    rob_entries: int = 256
    num_clusters: int = 8
    num_pregs: int = 768
    fb_depth: int = 9             # forwarding buffer window (cycles)
    #: Register-file read ports available to the issue path (§2.1).
    #: The base machine carries full port capability (16 = 2 x 8-wide);
    #: smaller values gate issue on operand-read bandwidth, modelling
    #: the "logic to stall or suppress instructions that will not be
    #: able to read their operands".  Ignored under the DRA, whose
    #: issue path reads the forwarding buffer and CRCs instead.
    rf_read_ports: int = 16
    #: How the read ports are arbitrated/shared among issuing
    #: instructions (base machine only; the DRA ignores ports).
    ports: PortConfig = field(default_factory=PortConfig)

    # --- loop feedback delays ------------------------------------------------
    iq_feedback_delay: int = 3    # execute -> IQ notification (load loop)
    iq_clear_cycles: int = 1      # extra cycles to clear a confirmed entry
    branch_feedback_delay: int = 1
    #: Cycles before a missed load's data return that its dependents may
    #: begin to (re)issue.  0 = the paper's conservative semantics: a
    #: dependent reissues only once the load resolves, so it reaches
    #: execute a full IQ->EX after the fill — the reason the load
    #: resolution loop scales with IQ->EX length (§2.2.2, Figure 5).
    load_fill_wake_lead: int = 0

    # --- policies -----------------------------------------------------------
    load_recovery: LoadRecovery = LoadRecovery.REISSUE
    #: ``LoadRecovery.SSR`` only: how many cycles before the STALL
    #: machine's conservative release point held dependents may begin
    #: to issue (floored at the IQ notification delay).  0 ≡ STALL.
    ssr_threshold: int = 4
    #: Cluster slotting at decode: "dependence" sends an instruction to
    #: the cluster of its first in-flight producer (minimising operand
    #: transport, concentrating dependence trees the way the paper's
    #: §5.4 saturation discussion assumes); "round_robin" spreads
    #: instructions evenly.
    slotting: str = "dependence"
    #: SMT fetch arbitration: "icount" (Tullsen-style) or "round_robin".
    fetch_policy: str = "icount"
    #: Memory dependence speculation (store queue + store-wait bits);
    #: None models perfect disambiguation.
    memdep: Optional[MemDepConfig] = field(default_factory=MemDepConfig)
    dra: Optional[DRAConfig] = None
    #: Predicted L1 hit latency used to wake load dependents speculatively.
    predictor: PredictorSpec = field(default_factory=PredictorSpec)
    #: Next-line predictor (Figure 2's tight loop); None disables the
    #: fetch-bubble model.
    line_predictor: Optional[LinePredictorConfig] = field(
        default_factory=LinePredictorConfig
    )
    btb: BTBConfig = field(default_factory=BTBConfig)
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)

    def __post_init__(self) -> None:
        for name in (
            "fetch_width", "rename_width", "issue_width", "retire_width",
            "fetch_depth", "dec_iq", "iq_ex", "rf_read_latency",
            "iq_entries", "rob_entries", "num_clusters", "num_pregs",
            "fb_depth", "iq_feedback_delay", "branch_feedback_delay",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.iq_clear_cycles < 0:
            raise ValueError("iq_clear_cycles cannot be negative")
        if self.load_fill_wake_lead < 0:
            raise ValueError("load_fill_wake_lead cannot be negative")
        if self.rf_read_ports < 1:
            raise ValueError("need at least one register file read port")
        if self.ssr_threshold < 0:
            raise ValueError("ssr_threshold cannot be negative")
        if self.ports.arbitration == "banked" \
                and self.rf_read_ports % self.ports.banks != 0:
            raise ValueError(
                "banked port arbitration needs rf_read_ports divisible "
                f"by the bank count ({self.rf_read_ports} % "
                f"{self.ports.banks} != 0)"
            )
        if self.slotting not in ("dependence", "round_robin"):
            raise ValueError(f"unknown slotting policy: {self.slotting!r}")
        if self.fetch_policy not in ("icount", "round_robin"):
            raise ValueError(f"unknown fetch policy: {self.fetch_policy!r}")
        if self.rename_offset < 1 or self.rename_offset > self.dec_iq:
            raise ValueError("rename_offset must fall inside the DEC->IQ pipe")
        if self.issue_width != self.num_clusters:
            raise ValueError(
                "clustered issue selects one instruction per cluster: "
                "issue_width must equal num_clusters"
            )
        if self.num_pregs < 2 * 64 + self.rob_entries:
            raise ValueError(
                "physical register file too small to cover architectural "
                "state plus in-flight instructions"
            )

    # --- derived quantities (the paper's loop arithmetic) ----------------------

    @property
    def load_loop_delay(self) -> int:
        """Load resolution loop delay = IQ->EX length + feedback (§2.2.2).

        8 cycles in the base machine (5 + 3).
        """
        return self.iq_ex + self.iq_feedback_delay

    @property
    def decode_to_execute(self) -> int:
        """The DEC->EX latency the paper's Figures 4-5 vary (X + Y)."""
        return self.dec_iq + self.iq_ex

    @property
    def min_int_pipeline(self) -> int:
        """Minimum pipeline cycles for a 1-cycle integer op (~20 base)."""
        return self.fetch_depth + self.dec_iq + self.iq_ex + 1 + \
            self.iq_feedback_delay + 2

    # --- factories --------------------------------------------------------------

    @classmethod
    def base(cls, rf_read_latency: int = 3, **overrides) -> "CoreConfig":
        """The paper's base machine for a register-file read latency.

        IQ->EX = 2 (issue + payload) + register read; DEC->IQ stays 5.
        rf=3 -> 5_5, rf=5 -> 5_7, rf=7 -> 5_9 (§6).
        """
        return cls(
            dec_iq=overrides.pop("dec_iq", 5),
            iq_ex=2 + rf_read_latency,
            rf_read_latency=rf_read_latency,
            **overrides,
        )

    @classmethod
    def with_dra(cls, rf_read_latency: int = 3, **overrides) -> "CoreConfig":
        """The DRA machine for a register-file read latency (§6).

        The register read leaves IQ->EX (now 3 cycles: issue, payload +
        FB/CRC access, transport) and overlaps DEC->IQ after rename:
        rf=3 -> 5_3, rf=5 -> 7_3, rf=7 -> 9_3.
        """
        dra = overrides.pop("dra", DRAConfig())
        base_dec_iq = overrides.pop("dec_iq", 5)
        return cls(
            dec_iq=max(base_dec_iq, 2 + rf_read_latency),
            iq_ex=3,
            rf_read_latency=rf_read_latency,
            dra=dra,
            **overrides,
        )

    def with_pipe(self, dec_iq: int, iq_ex: int) -> "CoreConfig":
        """A copy with different DEC->IQ / IQ->EX latencies (Figures 4-5)."""
        return dataclasses.replace(self, dec_iq=dec_iq, iq_ex=iq_ex)

    def replace(self, **changes) -> "CoreConfig":
        """A modified copy (thin wrapper over ``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    @property
    def label(self) -> str:
        """The paper's X_Y pipeline notation, with a DRA marker."""
        tag = "DRA:" if self.dra is not None else "Base:"
        return f"{tag}{self.dec_iq}_{self.iq_ex}"
