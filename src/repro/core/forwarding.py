"""The forwarding buffer (§2.2.1).

The base machine keeps results of the last ``fb_depth`` (9) cycles
available to the execution stage, turning the execute -> register-write
loose loop into a tight loop.  In the timing model a lookup succeeds when
the producing register's actual availability time falls inside the
window ``[t - depth, t]`` of the consuming execution at time ``t``.

The buffer also drives the delayed register-file write: a value enters
the register file ``depth`` cycles after it becomes available, which is
when the DRA sets the RPFT bit and performs CRC insertion.
"""

from __future__ import annotations

from typing import Optional

from repro.core.regfile import PhysRegFile


class ForwardingBuffer:
    """Window-based forwarding network over the physical register file."""

    def __init__(self, regfile: PhysRegFile, depth: int = 9):
        if depth < 1:
            raise ValueError("forwarding buffer depth must be >= 1")
        self._regfile = regfile
        self.depth = depth
        self.hits = 0
        self.lookups = 0

    def writeback_time(self, avail_cycle: int) -> int:
        """When a value available at ``avail_cycle`` reaches the RF."""
        return avail_cycle + self.depth

    def holds(self, preg: int, cycle: int) -> bool:
        """Whether ``preg``'s value can be forwarded at ``cycle``."""
        avail: Optional[int] = self._regfile.avail[preg]
        self.lookups += 1
        if avail is None:
            return False
        if avail <= cycle <= avail + self.depth:
            self.hits += 1
            return True
        return False

    def in_register_file(self, preg: int, cycle: int) -> bool:
        """Whether ``preg``'s value has been written back by ``cycle``."""
        wb = self._regfile.writeback[preg]
        return wb is not None and wb <= cycle
