"""Kernel backends: one machine model, several ways to execute it.

A :class:`KernelBackend` is a narrow seam between *what* is simulated
(the machine in :mod:`repro.core.pipeline`) and *how* the cycle loop is
executed.  Every consumer — :func:`repro.core.simulator.simulate`, the
harness, ``loopsim run/campaign/explore``, the campaign service — picks
a backend by name and stays agnostic of the execution strategy:

``reference``
    The existing straight-line loop (:class:`~repro.core.pipeline.
    Simulator`).  The semantic ground truth: golden pins are only ever
    regenerated from it (``scripts/update_golden.py`` refuses anything
    else).

``optimized``
    :class:`~repro.core.fastsim.OptimizedSimulator` — the compiled
    probe-variant tick with flattened hot paths and fast workload
    generation.  *Exact*: bit-identical ``CoreStats`` and retire
    streams, enforced by the backend-equivalence matrix
    (``tests/test_backend.py``, golden pins, differential laws, fuzz
    smoke).

``sampled``
    SMARTS-style systematic sampling on top of the optimized tick:
    alternating functional fast-forward gaps and detailed windows
    (per-window detailed warmup + measurement), with per-window IPC
    variance turned into an explicit confidence interval
    (:class:`SamplingReport`).  *Not exact* — it estimates; the
    estimate is validated by :meth:`SamplingReport.cross_check`
    against full runs in the shipped error-bound tests.

Exactness is a declared, machine-checked property: ``backend.exact``
gates which backends the verification subsystem and the golden-pin
matrix require to be bit-for-bit, and which are held only to their
declared error bounds.  See ``docs/kernel.md`` for the contract.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import sqrt
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.pipeline import Simulator
from repro.core.stats import CoreStats
from repro.errors import ConfigError
from repro.workloads import WorkloadProfile

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "OptimizedBackend",
    "SampledBackend",
    "SamplingWindow",
    "SamplingReport",
    "RetireStreamRecorder",
    "register_backend",
    "get_backend",
    "available_backends",
    "parse_backend",
]


# ---------------------------------------------------------------------------
# The backend contract
# ---------------------------------------------------------------------------

class KernelBackend(ABC):
    """How a simulation cell is executed.

    Subclasses provide :meth:`build` (construct the simulator) and may
    override :meth:`run` (drive it).  ``exact`` declares bit-identical
    equivalence with ``reference`` — a claim the backend test matrix
    enforces, not a hint.
    """

    #: Registry name (also the default cache token).
    name: str = "?"
    #: Whether this backend reproduces the reference retire stream and
    #: ``CoreStats`` bit for bit.  Exact backends are interchangeable
    #: under the verifier and the golden pins; inexact ones carry their
    #: own error model and refuse verification.
    exact: bool = True

    @property
    def token(self) -> str:
        """Cache-key token: folds every behaviour-relevant parameter."""
        return self.name

    @abstractmethod
    def build(
        self,
        config: CoreConfig,
        profiles: Sequence[WorkloadProfile],
        seed: int = 0,
    ) -> Simulator:
        """Construct the simulator this backend drives."""

    def run(
        self,
        sim: Simulator,
        instructions: int,
        warmup: int = 0,
        max_cycles: Optional[int] = None,
    ) -> CoreStats:
        """Execute ``warmup`` + ``instructions`` retired instructions."""
        return sim.run(instructions, warmup=warmup, max_cycles=max_cycles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.token!r}>"


class ReferenceBackend(KernelBackend):
    """The existing loop — semantic ground truth for every other backend."""

    name = "reference"
    exact = True

    def build(self, config, profiles, seed: int = 0) -> Simulator:
        return Simulator(config, profiles, seed=seed)


class OptimizedBackend(KernelBackend):
    """The compiled tick (:mod:`repro.core.fastsim`); bit-identical."""

    name = "optimized"
    exact = True

    def build(self, config, profiles, seed: int = 0) -> Simulator:
        from repro.core.fastsim import OptimizedSimulator

        return OptimizedSimulator(config, profiles, seed=seed)


# ---------------------------------------------------------------------------
# Sampled execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SamplingWindow:
    """Measured portion of one detailed window."""

    cycles: int
    retired: int

    @property
    def ipc(self) -> float:
        """This window's IPC (0 when it measured nothing)."""
        return self.retired / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class SamplingReport:
    """Error model of one sampled run.

    The headline estimate is the mean of per-window IPCs; the declared
    uncertainty is a normal-approximation 95% confidence interval from
    the between-window variance, widened by ``rel_slack`` — a declared
    systematic-bias allowance for the sampling seam (in-flight state
    crossing functional gaps), calibrated by the shipped cross-check
    tests.  :meth:`cross_check` is the acceptance test: a full
    (unsampled) IPC must land inside the declared interval.
    """

    windows: Tuple[SamplingWindow, ...]
    #: Represented span (instructions the estimate stands for).
    span: int
    #: Detailed instructions actually simulated (warmup + measured).
    detail_instructions: int
    #: Ops per thread streamed functionally between windows.
    functional_instructions: int
    #: Declared relative systematic-bias allowance.
    rel_slack: float = 0.03

    @property
    def ipc_mean(self) -> float:
        """Mean of per-window IPCs — the sampled estimate."""
        if not self.windows:
            return 0.0
        return sum(w.ipc for w in self.windows) / len(self.windows)

    @property
    def ipc_stderr(self) -> float:
        """Standard error of the mean over windows (0 for n < 2)."""
        n = len(self.windows)
        if n < 2:
            return 0.0
        mean = self.ipc_mean
        var = sum((w.ipc - mean) ** 2 for w in self.windows) / (n - 1)
        return sqrt(var / n)

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.ipc_stderr
        return (self.ipc_mean - half, self.ipc_mean + half)

    @property
    def tolerance(self) -> float:
        """Declared acceptance half-width: CI95 + systematic allowance."""
        return 1.96 * self.ipc_stderr + self.rel_slack * self.ipc_mean

    @property
    def detail_fraction(self) -> float:
        """Fraction of the represented span simulated in detail."""
        if self.span <= 0:
            return 1.0
        return min(1.0, self.detail_instructions / self.span)

    def cross_check(self, full_ipc: float) -> bool:
        """Whether a full run's IPC lands inside the declared bounds."""
        return abs(full_ipc - self.ipc_mean) <= self.tolerance

    def describe(self) -> str:
        """One human-readable line."""
        lo, hi = self.ci95
        return (
            f"sampled ipc={self.ipc_mean:.3f} "
            f"ci95=[{lo:.3f},{hi:.3f}] slack={self.rel_slack:.0%} "
            f"windows={len(self.windows)} detail={self.detail_fraction:.0%}"
        )


class SampledBackend(KernelBackend):
    """Calibrated sampled simulation over the optimized tick.

    ``run(instructions=N, warmup=W)`` interprets ``N`` as the
    *represented* span.  The first window opens after ``W`` detailed
    warmup instructions (the caller's ``detailed_warmup``); each
    subsequent window is preceded by a functional fast-forward gap and
    ``window_warmup`` detailed warmup instructions that re-fill the
    pipeline across the sampling seam.  Each window measures
    ``measure`` instructions.  When the span is too short for the
    requested geometry the window count degrades (down to a single
    window covering the span — i.e. a plain detailed run).

    The returned :class:`~repro.core.stats.CoreStats` aggregates all
    measured windows (``measured_ipc`` is the pooled ratio); the
    per-window error model is left on the simulator as
    ``sim.sampling_report`` for :func:`~repro.core.simulator.simulate`
    to surface.
    """

    name = "sampled"
    exact = False

    def __init__(
        self,
        windows: int = 8,
        measure: int = 800,
        window_warmup: int = 300,
        rel_slack: float = 0.03,
    ):
        if windows < 1:
            raise ConfigError("sampled backend needs at least one window")
        if measure < 1:
            raise ConfigError("sampled window must measure >= 1 instruction")
        if window_warmup < 0:
            raise ConfigError("window warmup cannot be negative")
        if rel_slack < 0:
            raise ConfigError("rel_slack cannot be negative")
        self.windows = windows
        self.measure = measure
        self.window_warmup = window_warmup
        self.rel_slack = rel_slack

    @property
    def token(self) -> str:
        return (
            f"sampled:{self.windows}x{self.measure}"
            f"+{self.window_warmup}"
        )

    def build(self, config, profiles, seed: int = 0) -> Simulator:
        from repro.core.fastsim import OptimizedSimulator

        return OptimizedSimulator(config, profiles, seed=seed)

    def run(
        self,
        sim: Simulator,
        instructions: int,
        warmup: int = 0,
        max_cycles: Optional[int] = None,
    ) -> CoreStats:
        if instructions < 1:
            raise ConfigError("must simulate at least one instruction")
        stats = sim.stats
        measure = self.measure
        # degrade the geometry to the span: every window needs its
        # warmup + measurement, plus a non-negative gap before windows
        # 2..k; a span too small for 2 windows runs as 1 (full detail)
        k = self.windows
        while k > 1 and (
            warmup + measure
            + (k - 1) * (self.window_warmup + measure)
        ) > instructions:
            k -= 1
        gap = 0
        if k > 1:
            period = (instructions - warmup - measure) // (k - 1)
            gap = period - self.window_warmup - measure
        windows: List[SamplingWindow] = []
        detail = 0
        functional = 0
        for i in range(k):
            if i == 0:
                window_warmup = warmup
            else:
                window_warmup = self.window_warmup
                if gap > 0:
                    sim._functional_stream(gap)
                    functional += gap
            base = stats.retired
            sim.run(
                measure,
                warmup=base + window_warmup,
                max_cycles=max_cycles,
            )
            windows.append(SamplingWindow(
                cycles=stats.measured_cycles,
                retired=stats.measured_retired,
            ))
            detail += window_warmup + stats.measured_retired
            if max_cycles is not None and sim.cycle >= max_cycles:
                break
        # re-base the measurement snapshot so the aggregate stats cover
        # every measured window (pooled-ratio IPC), not just the last
        stats.measure_start_cycle = stats.cycles - sum(
            w.cycles for w in windows
        )
        stats.measure_start_retired = stats.retired - sum(
            w.retired for w in windows
        )
        sim.sampling_report = SamplingReport(
            windows=tuple(windows),
            span=instructions,
            detail_instructions=detail,
            functional_instructions=functional,
            rel_slack=self.rel_slack,
        )
        return stats


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, KernelBackend] = {}


def register_backend(
    backend: KernelBackend, replace: bool = False
) -> KernelBackend:
    """Register ``backend`` under its name; returns it for chaining."""
    if not replace and backend.name in _REGISTRY:
        raise ConfigError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def parse_backend(
    spec: Union[str, KernelBackend, None]
) -> KernelBackend:
    """Resolve a backend argument: instance, name, or parameter string.

    Accepts a :class:`KernelBackend`, a registered name, ``None`` (the
    reference backend) or a parameterised sampled spec of the form
    ``sampled:<windows>x<measure>+<window_warmup>`` (e.g.
    ``sampled:8x500+150``).
    """
    if spec is None:
        return _REGISTRY["reference"]
    if isinstance(spec, KernelBackend):
        return spec
    if not isinstance(spec, str):
        raise ConfigError(
            f"backend must be a name or KernelBackend (got {spec!r})"
        )
    if spec in _REGISTRY:
        return _REGISTRY[spec]
    if spec.startswith("sampled:"):
        body = spec[len("sampled:"):]
        try:
            geometry, _, window_warmup = body.partition("+")
            windows, _, measure = geometry.partition("x")
            return SampledBackend(
                windows=int(windows),
                measure=int(measure),
                window_warmup=int(window_warmup) if window_warmup else 300,
            )
        except (ValueError, ConfigError) as exc:
            raise ConfigError(
                f"bad sampled backend spec {spec!r} "
                "(expected sampled:<windows>x<measure>[+<warmup>])"
            ) from exc
    raise ConfigError(
        f"unknown kernel backend {spec!r} "
        f"(available: {', '.join(available_backends())})"
    )


register_backend(ReferenceBackend())
register_backend(OptimizedBackend())
register_backend(SampledBackend())


# ---------------------------------------------------------------------------
# Equivalence tooling
# ---------------------------------------------------------------------------

class RetireStreamRecorder:
    """Captures a uid-free retire stream for backend comparison.

    ``DynInst`` uids come from a process-global counter, so two runs in
    one process retire different uids for identical streams; the
    recorder therefore keys on ``(pc, opclass, thread, retire_cycle,
    issue_count)`` — everything observable about a retirement except
    the arbitrary uid.  Chains politely with an existing
    ``retire_hook`` (e.g. the golden retire model).
    """

    def __init__(self) -> None:
        self.stream: List[Tuple] = []

    def record(self, inst) -> None:
        """The hook: append one retirement."""
        self.stream.append((
            inst.op.pc,
            inst.op.opclass,
            inst.thread,
            inst.retire_cycle,
            inst.issue_count,
        ))

    def install(self, sim: Simulator) -> None:
        """Attach to ``sim``, preserving any existing retire hook."""
        previous = sim.retire_hook
        if previous is None:
            sim.retire_hook = self.record
        else:
            def chained(inst, _prev=previous, _rec=self.record):
                _prev(inst)
                _rec(inst)

            sim.retire_hook = chained
