"""The out-of-order SMT core and the Distributed Register Algorithm.

``CoreConfig`` describes the machine (pipeline depths, issue queue,
clusters, recovery policies, optional DRA); ``Simulator`` runs it over
synthetic workloads; ``simulate`` / ``SimResult`` are the high-level
entry points used by examples, tests and benchmarks.
"""

from repro.core.config import (
    CoreConfig,
    DRAConfig,
    LoadRecovery,
)
from repro.core.stats import CoreStats, OperandSource
from repro.core.pipeline import Simulator
from repro.core.backend import (
    KernelBackend,
    SamplingReport,
    available_backends,
    get_backend,
    parse_backend,
    register_backend,
)
from repro.core.simulator import SimResult, simulate

__all__ = [
    "CoreConfig",
    "DRAConfig",
    "LoadRecovery",
    "CoreStats",
    "OperandSource",
    "Simulator",
    "KernelBackend",
    "SamplingReport",
    "available_backends",
    "get_backend",
    "parse_backend",
    "register_backend",
    "SimResult",
    "simulate",
]
