"""The Distributed Register Algorithm hardware (§4-§5).

Three structures, simulated entry-by-entry:

* :class:`RegisterPreReadFilteringTable` (RPFT) — one bit per physical
  register; set when the value is written back to the register file,
  cleared when the renamer re-allocates the register.  A set bit at
  rename time means the operand is *completed* and is pre-read into the
  IQ payload during the DEC->IQ traversal.
* :class:`InsertionTable` — one per cluster; a 2-bit saturating counter
  per physical register counting outstanding consumers slotted to that
  cluster which could not pre-read the operand.  Incremented on a failed
  pre-read, decremented on a forwarding-buffer read, cleared (with a CRC
  insertion if non-zero) when the value writes back.
* :class:`ClusterRegisterCache` (CRC) — one per cluster; a small
  fully-associative FIFO of register values near the functional units.
  Stale entries are invalidated when the physical register is
  re-allocated (§5.5).

:class:`DRAEngine` wires them together and implements the §5.4 miss
conditions: FIFO capacity eviction and consumer-counter saturation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.config import DRAConfig
from repro.core.stats import CoreStats
from repro.obs.events import CRCEvent


class RegisterPreReadFilteringTable:
    """One validity bit per physical register (§5.2)."""

    def __init__(self, num_pregs: int):
        self._valid = [False] * num_pregs

    def is_completed(self, preg: int) -> bool:
        """Whether ``preg``'s value is in the register file (pre-readable)."""
        return self._valid[preg]

    def on_writeback(self, preg: int) -> None:
        """Value written back to the RF: mark pre-readable."""
        self._valid[preg] = True

    def on_allocate(self, preg: int) -> None:
        """Register handed to a new producer: in flight, not readable."""
        self._valid[preg] = False


class InsertionTable:
    """Per-cluster outstanding-consumer counters (§5.3)."""

    def __init__(self, num_pregs: int, counter_max: int, stats: CoreStats):
        self._counts = [0] * num_pregs
        self.counter_max = counter_max
        self._stats = stats

    def count(self, preg: int) -> int:
        """Current outstanding-consumer count for ``preg``."""
        return self._counts[preg]

    def increment(self, preg: int) -> None:
        """A consumer slotted to this cluster failed its pre-read."""
        if self._counts[preg] >= self.counter_max:
            self._stats.insertion_saturations += 1
            return
        self._counts[preg] += 1

    def decrement(self, preg: int) -> None:
        """A consumer in this cluster read ``preg`` from the forwarding
        buffer, so one fewer outstanding consumer needs the CRC copy."""
        if self._counts[preg] > 0:
            self._counts[preg] -= 1

    def clear(self, preg: int) -> None:
        """Reset the counter (on CRC insertion or re-allocation)."""
        self._counts[preg] = 0


class ClusterRegisterCache:
    """A small fully-associative FIFO register cache (§5.1).

    Each entry remembers how many outstanding consumers it was inserted
    for; the near-oracle replacement policy (§5.1's "almost perfect
    knowledge" comparison) uses those counts, the default policy is
    strictly FIFO and ignores them.
    """

    def __init__(self, entries: int, stats: CoreStats):
        self.entries = entries
        self._stats = stats
        #: preg -> outstanding consumers; OrderedDict keeps FIFO order.
        self._fifo: "OrderedDict[int, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._fifo)

    def contains(self, preg: int) -> bool:
        """Whether ``preg``'s value is resident (lookup is a CAM match;
        no recency update — replacement is strictly FIFO)."""
        return preg in self._fifo

    def insert(self, preg: int, consumers: int = 1) -> Optional[int]:
        """Insert ``preg``, evicting the oldest entry if full.

        Returns the evicted physical register, if any, so the engine can
        report the replacement.
        """
        if preg in self._fifo:
            self._fifo[preg] += consumers
            return None
        evicted = None
        if len(self._fifo) >= self.entries:
            evicted, _ = self._fifo.popitem(last=False)
            self._stats.crc_evictions += 1
        self._fifo[preg] = consumers
        self._stats.crc_insertions += 1
        return evicted

    def insert_oracle(self, preg: int, consumers: int = 1) -> Optional[int]:
        """Near-oracle insert: prefer evicting entries whose consumers
        have all been served (the paper's 'almost perfect knowledge'
        comparison point).  Returns the evicted register, if any."""
        if preg in self._fifo:
            self._fifo[preg] += consumers
            return None
        evicted = None
        if len(self._fifo) >= self.entries:
            exhausted = next(
                (p for p, remaining in self._fifo.items() if remaining <= 0),
                None,
            )
            if exhausted is not None:
                evicted = exhausted
                del self._fifo[exhausted]
            else:
                evicted, _ = self._fifo.popitem(last=False)
            self._stats.crc_evictions += 1
        self._fifo[preg] = consumers
        self._stats.crc_insertions += 1
        return evicted

    def note_read(self, preg: int) -> None:
        """Record that one outstanding consumer has been served."""
        if preg in self._fifo:
            self._fifo[preg] -= 1

    def invalidate(self, preg: int) -> None:
        """Drop a stale entry when its register is re-allocated (§5.5)."""
        if preg in self._fifo:
            del self._fifo[preg]
            self._stats.crc_invalidations += 1


class DRAEngine:
    """The DRA structures for all clusters, plus their event handlers."""

    def __init__(
        self,
        config: DRAConfig,
        num_pregs: int,
        num_clusters: int,
        stats: CoreStats,
    ):
        self.config = config
        self.stats = stats
        self.rpft = RegisterPreReadFilteringTable(num_pregs)
        # a centralized register cache is a single structure shared by
        # all clusters (the §4 strawman); the DRA proper distributes one
        # per cluster
        effective_clusters = 1 if config.centralized else num_clusters
        self._cluster_of = (lambda c: 0) if config.centralized else (lambda c: c)
        self.tables: List[InsertionTable] = [
            InsertionTable(num_pregs, config.counter_max, stats)
            for _ in range(effective_clusters)
        ]
        self.crcs: List[ClusterRegisterCache] = [
            ClusterRegisterCache(config.crc_entries, stats)
            for _ in range(effective_clusters)
        ]
        #: optional EventBus + cycle source (repro.obs); None normally
        self.bus = None
        self.clock = None

    def _emit_crc(self, preg: int, cluster: int, action: str) -> None:
        """CRC activity probe (no-op without a bus)."""
        if self.bus is not None:
            self.bus.emit(CRCEvent(
                cycle=self.clock() if self.clock is not None else 0,
                preg=preg, cluster=cluster, action=action,
            ))

    # --- rename-time behaviour (§5.2) ------------------------------------------

    def try_preread(self, preg: int, cluster: int) -> bool:
        """Pre-read attempt for a source operand at rename.

        Returns True when the operand is completed (RPFT bit set): the
        register file is read during DEC->IQ and the value rides in the
        IQ payload.  Otherwise the source register number is sent to the
        consumer cluster's insertion table.
        """
        if self.rpft.is_completed(preg):
            return True
        self.tables[self._cluster_of(cluster)].increment(preg)
        return False

    # --- writeback-time behaviour (§5.3) ---------------------------------------------

    def on_writeback(self, preg: int) -> None:
        """Value leaves the forwarding buffer for the register file.

        The RPFT bit is set, and a copy goes to every cluster whose
        insertion table still records outstanding consumers — or, under
        the unfiltered ``"always"`` strawman policy, to every cluster
        unconditionally (same storage, more pollution).
        """
        self.rpft.on_writeback(preg)
        unfiltered = self.config.insertion_policy == "always"
        for cluster, (table, crc) in enumerate(zip(self.tables, self.crcs)):
            count = table.count(preg)
            if count > 0 or unfiltered:
                if self.config.oracle_crc:
                    evicted = crc.insert_oracle(preg, consumers=count)
                else:
                    evicted = crc.insert(preg, consumers=count)
                table.clear(preg)
                if evicted is not None:
                    self._emit_crc(evicted, cluster, "evict")
                self._emit_crc(preg, cluster, "insert")

    # --- allocation-time behaviour (§5.5) ------------------------------------------------

    def on_allocate(self, preg: int) -> None:
        """Register re-allocated: clear RPFT, counters, stale CRC copies."""
        self.rpft.on_allocate(preg)
        for table in self.tables:
            table.clear(preg)
        for cluster, crc in enumerate(self.crcs):
            if self.bus is not None and crc.contains(preg):
                self._emit_crc(preg, cluster, "invalidate")
            crc.invalidate(preg)

    # --- execute-time behaviour -----------------------------------------------------------

    def on_forward_read(self, preg: int, cluster: int) -> None:
        """Operand served by the forwarding buffer in ``cluster``."""
        self.tables[self._cluster_of(cluster)].decrement(preg)

    def crc_lookup(self, preg: int, cluster: int) -> bool:
        """Whether the consumer cluster's CRC holds ``preg``."""
        crc = self.crcs[self._cluster_of(cluster)]
        hit = crc.contains(preg)
        if hit:
            # served one outstanding consumer (the near-oracle policy
            # preferentially evicts exhausted entries)
            crc.note_read(preg)
        self._emit_crc(preg, self._cluster_of(cluster), "hit" if hit else "miss")
        return hit
