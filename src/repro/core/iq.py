"""The unified, clustered issue queue (§2).

A 128-entry queue feeding eight functional-unit clusters.  Instructions
are slotted to a cluster at decode, so per-cycle selection is "pick the
oldest ready instruction per cluster" — the paper's M-of-N decomposition
(8 of 128 becomes 8 x 1-of-16).

Two properties of the paper's base machine are modelled faithfully:

* **Speculative wakeup** — an instruction is selectable when every
  source's *speculated* availability time will be met at its execute
  entry (issue + IQ->EX); loads publish optimistic (L1-hit) times.
* **Entry retention (IQ pressure, §2.2.2)** — issued instructions keep
  their entries until the execution stage confirms, one loop delay
  (IQ->EX + feedback) later, that no reissue is needed; only then is the
  slot cleared (plus ``iq_clear_cycles``).  Reissue simply flips the
  entry back to the unissued pool.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import CoreConfig
from repro.core.regfile import PhysRegFile
from repro.isa.instructions import DynInst
from repro.obs.events import IQInsertEvent, IssueEvent


class IssueQueue:
    """Unified IQ with per-cluster oldest-first select."""

    def __init__(self, config: CoreConfig, regfile: PhysRegFile):
        self.config = config
        self._regfile = regfile
        self.capacity = config.iq_entries
        self.count = 0
        #: issued-but-unconfirmed entries (the §2.2.2 pressure metric)
        self.issued_waiting = 0
        self._unissued: List[List[DynInst]] = [
            [] for _ in range(config.num_clusters)
        ]
        #: callable(inst) -> True while a store-wait load must hold
        self._memdep_blocked = None
        #: issue opportunities lost to register-file port limits (§2.1)
        self.port_stalls = 0
        #: optional EventBus (repro.obs); None in normal runs
        self.bus = None

    def set_memdep_gate(self, gate) -> None:
        """Install the memory-dependence hold check for wait-bit loads."""
        self._memdep_blocked = gate

    # --- capacity ---------------------------------------------------------

    def has_space(self, needed: int = 1) -> bool:
        """Whether ``needed`` more instructions can be inserted."""
        return self.count + needed <= self.capacity

    # --- entry lifecycle -----------------------------------------------------

    def insert(self, inst: DynInst, cycle: int) -> None:
        """Insert a renamed instruction (allocates its entry)."""
        if not self.has_space():
            raise RuntimeError("issue queue overflow")
        self.count += 1
        inst.insert_cycle = cycle
        self._push_unissued(inst)
        if self.bus is not None:
            self.bus.emit(IQInsertEvent(
                cycle=cycle, uid=inst.uid, thread=inst.thread
            ))

    def _push_unissued(self, inst: DynInst) -> None:
        """Add to the cluster's unissued pool keeping age (uid) order."""
        pool = self._unissued[inst.cluster]
        if not pool or pool[-1].uid < inst.uid:
            pool.append(inst)
            return
        # reissued instructions are older than the tail: scan from the end
        i = len(pool)
        while i > 0 and pool[i - 1].uid > inst.uid:
            i -= 1
        pool.insert(i, inst)

    def mark_reissue(self, inst: DynInst) -> None:
        """Return an issued entry to the unissued pool (reissue path)."""
        if inst.squashed or inst.confirmed:
            return
        self.issued_waiting -= 1
        self._push_unissued(inst)

    def release(self, inst: DynInst) -> None:
        """Free a confirmed entry (the clear after the confirmation)."""
        if inst.squashed:
            return
        self.count -= 1
        self.issued_waiting -= 1

    def remove_squashed(self, inst: DynInst) -> None:
        """Drop an entry during a flush (refetch recovery or trap)."""
        pool = self._unissued[inst.cluster]
        if inst in pool:
            pool.remove(inst)
        elif not inst.confirmed:
            # issued and still waiting for confirmation
            self.issued_waiting -= 1
        self.count -= 1

    # --- select ------------------------------------------------------------------

    def _ready(self, inst: DynInst, cycle: int) -> bool:
        """Whether ``inst`` can issue at ``cycle``.

        Every source's speculated availability must be met by the
        instruction's execute entry (cycle + IQ->EX), and any DRA
        operand-recovery gate must have elapsed.
        """
        if inst.min_reissue_cycle > cycle:
            return False
        if inst.memdep_wait and self._memdep_blocked is not None \
                and self._memdep_blocked(inst):
            return False
        horizon = cycle + self.config.iq_ex
        spec_avail = self._regfile.spec_avail
        for preg in inst.src_pregs:
            avail = spec_avail[preg]
            if avail is None or avail > horizon:
                return False
        return True

    def select(self, cycle: int) -> List[DynInst]:
        """Pick up to one ready instruction per cluster (oldest first).

        On the base machine (no DRA) issue also consumes register-file
        read ports under the configured arbitration scheme
        (:class:`~repro.core.config.PortConfig`): ``oldest_first``
        charges one port per source operand, ``operand_share`` charges
        one port per *distinct* physical register read this cycle, and
        ``banked`` charges each operand against its register bank.
        When the needed ports run out, the cluster stalls this cycle
        (§2.1) and ``port_stalls`` records the lost opportunity.
        """
        issued: List[DynInst] = []
        ports_left: Optional[int] = None
        read_pregs = None
        bank_left = None
        if self.config.dra is None:
            ports_left = self.config.rf_read_ports
            arbitration = self.config.ports.arbitration
            if arbitration == "operand_share":
                read_pregs = set()
            elif arbitration == "banked":
                banks = self.config.ports.banks
                bank_left = [self.config.rf_read_ports // banks] * banks
        for pool in self._unissued:
            chosen: Optional[DynInst] = None
            for inst in pool:
                if self._ready(inst, cycle):
                    chosen = inst
                    break
            if chosen is None:
                continue
            if ports_left is not None:
                if read_pregs is not None:
                    new_pregs = []
                    for preg in chosen.src_pregs:
                        if preg not in read_pregs and preg not in new_pregs:
                            new_pregs.append(preg)
                    if len(new_pregs) > ports_left:
                        self.port_stalls += 1
                        continue
                    ports_left -= len(new_pregs)
                    read_pregs.update(new_pregs)
                elif bank_left is not None:
                    banks = len(bank_left)
                    demand = [0] * banks
                    for preg in chosen.src_pregs:
                        demand[preg % banks] += 1
                    if any(
                        demand[b] > bank_left[b] for b in range(banks)
                    ):
                        self.port_stalls += 1
                        continue
                    for b in range(banks):
                        bank_left[b] -= demand[b]
                else:
                    needed = len(chosen.src_pregs)
                    if needed > ports_left:
                        self.port_stalls += 1
                        continue
                    ports_left -= needed
            pool.remove(chosen)
            chosen.issue_cycle = cycle
            if chosen.first_issue_cycle < 0:
                chosen.first_issue_cycle = cycle
            chosen.issue_count += 1
            self.issued_waiting += 1
            issued.append(chosen)
            if self.bus is not None:
                self.bus.emit(IssueEvent(
                    cycle=cycle, uid=chosen.uid, thread=chosen.thread,
                    epoch=chosen.issue_count,
                ))
        return issued

    # --- introspection -------------------------------------------------------------

    def unissued_count(self) -> int:
        """Entries still waiting to issue."""
        return sum(len(pool) for pool in self._unissued)

    def cluster_backlog(self, cluster: int) -> int:
        """Unissued entries slotted to ``cluster`` (slotting feedback)."""
        return len(self._unissued[cluster])
