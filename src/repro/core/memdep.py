"""Memory dependence speculation (the paper's memory dependence loop).

Figure 2 of the paper lists the *memory dependence loop* alongside the
branch and load resolution loops, and §1 uses the 21264's load/store
reorder trap as the worked example of a loop whose **recovery stage**
(fetch) sits earlier than its **initiation stage** (issue), adding
recovery time to every mis-speculation.

The model follows the 21264's store-wait scheme:

* loads normally issue without regard to older stores (speculating "no
  conflict");
* when a store executes and finds a younger load to the same line that
  has already executed, the machine takes a **load/store reorder trap**:
  everything from the load onward is squashed and re-fetched, and the
  load's PC sets a bit in the :class:`StoreWaitPredictor`;
* a load whose store-wait bit is set issues only after every older
  store in its thread has executed.  The table is periodically cleared
  so stale bits do not throttle loads forever.

Three policies are provided for ablation: ``NAIVE`` (always speculate,
no predictor), ``PREDICT`` (store-wait, the default), ``CONSERVATIVE``
(every load waits for all older stores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.instructions import DynInst


class MemDepPolicy(enum.Enum):
    """How loads are ordered against older stores."""

    NAIVE = "naive"
    PREDICT = "predict"
    CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class MemDepConfig:
    """Memory dependence speculation parameters."""

    policy: MemDepPolicy = MemDepPolicy.PREDICT
    store_queue_entries: int = 32
    predictor_entries: int = 1024
    #: cycles between store-wait table clears (21264-style decay)
    clear_interval: int = 50_000

    def __post_init__(self) -> None:
        if self.store_queue_entries < 1:
            raise ValueError("store queue needs at least one entry")
        if self.predictor_entries < 1 or (
            self.predictor_entries & (self.predictor_entries - 1)
        ):
            raise ValueError("predictor entries must be a power of two")
        if self.clear_interval < 1:
            raise ValueError("clear interval must be positive")


class StoreWaitPredictor:
    """One wait bit per load PC, periodically cleared."""

    def __init__(self, entries: int = 1024, clear_interval: int = 50_000):
        self._bits = [False] * entries
        self._mask = entries - 1
        self._clear_interval = clear_interval
        self._last_clear = 0
        self.trains = 0
        self.clears = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict_wait(self, pc: int) -> bool:
        """Whether the load at ``pc`` should wait for older stores."""
        return self._bits[self._index(pc)]

    def train(self, pc: int) -> None:
        """A reorder trap occurred for the load at ``pc``."""
        self._bits[self._index(pc)] = True
        self.trains += 1

    def tick(self, cycle: int) -> None:
        """Clear the table when the decay interval elapses."""
        if cycle - self._last_clear >= self._clear_interval:
            self._bits = [False] * (self._mask + 1)
            self._last_clear = cycle
            self.clears += 1


class StoreQueue:
    """In-flight stores of one thread, in program order."""

    def __init__(self, entries: int = 32):
        self.entries = entries
        self._stores: List["DynInst"] = []

    def __len__(self) -> int:
        return len(self._stores)

    @property
    def full(self) -> bool:
        return len(self._stores) >= self.entries

    def add(self, store: "DynInst") -> None:
        if self.full:
            raise RuntimeError("store queue overflow")
        self._stores.append(store)

    def remove(self, store: "DynInst") -> None:
        """Remove at retire (head) or wherever it sits after a squash."""
        try:
            self._stores.remove(store)
        except ValueError:
            pass

    def drop_squashed(self) -> None:
        """Filter out squashed stores after a flush."""
        self._stores = [s for s in self._stores if not s.squashed]

    def oldest_unexecuted_uid(self) -> Optional[int]:
        """UID of the oldest store with an unknown address, or None."""
        for store in self._stores:
            if not store.executed and not store.squashed:
                return store.uid
        return None

    def has_older_unexecuted(self, uid: int) -> bool:
        """Whether any store older than ``uid`` has not yet executed."""
        oldest = self.oldest_unexecuted_uid()
        return oldest is not None and oldest < uid

    def has_older_unissued(self, uid: int) -> bool:
        """Whether any store older than ``uid`` has never issued.

        The 21264's store-wait semantics: a wait-bit load holds only
        until prior stores *issue* (cheaper than waiting for their
        execution, and enough to restore ordering in the common case).
        """
        for store in self._stores:
            if store.uid >= uid:
                return False
            if store.issue_count == 0 and not store.squashed:
                return True
        return False
