"""Command-line interface: ``python -m repro`` or ``loopsim``.

Subcommands::

    loopsim run swim --dra --rf 5          one simulation, full stats
    loopsim run swim --trace-out t.json    ... plus a Perfetto/JSONL trace
    loopsim attribute swim                 measured per-loop cost breakdown
    loopsim fig4 [--workloads a,b] ...     regenerate a paper figure
    loopsim fig5 / fig6 / fig8 / fig9
    loopsim ablations                      recovery/CRC/FB/... studies
    loopsim loops [--dra|--machine NAME]   the §1 loop inventory
    loopsim trace swim -n 24               pipeview-style timeline
    loopsim trace capture swim -o t.gz     capture a replayable uop trace
    loopsim run trace:t.gz                 ... and simulate from it
    loopsim run swim@bursty:2048           phase-varying dynamic workload
    loopsim workloads [--json]             list every workload + scenario
    loopsim verify                         self-checking preset sweep
    loopsim verify --differential          cross-config consistency laws
    loopsim verify --fuzz --budget 60      fuzz random configs/workloads
    loopsim verify --replay case.json      re-run a fuzz reproducer
    loopsim explore                        search the DRA design space
    loopsim explore --space mechanisms     DRA vs read ports vs SSR
    loopsim explore --space smoke ...      tiny CI-sized exploration
    loopsim serve --journal j.jsonl        run the campaign service
    loopsim serve --resume ...             ... replaying unfinished jobs
    loopsim submit swim --dra --rf 5       run a cell through the service
    loopsim submit --ping / --stats        service health / metrics

Figure and ablation campaigns run on the fault-tolerant harness
(:mod:`repro.harness`): ``--jobs N`` runs cells in parallel worker
subprocesses, ``--cell-timeout S`` arms the hang watchdog, and
``--resume`` / ``--cache-dir DIR`` persist finished cells so an
interrupted campaign re-executes only what is missing.  Failed cells
render as ``n/a`` plus a failure report instead of aborting the figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import CoreConfig, LoadRecovery, simulate
from repro.errors import (
    ReproError,
    SimulationHangError,
    WorkloadError,
)
from repro.harness import HarnessSettings, default_cache_dir
from repro.experiments import (
    ExperimentSettings,
    render_loop_inventory,
    run_centralization_ablation,
    run_crc_ablation,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure8,
    run_figure9,
    run_forwarding_ablation,
    run_iq_size_ablation,
    run_memdep_ablation,
    run_recovery_ablation,
    run_rf_ports_ablation,
    run_slotting_ablation,
    run_wake_lead_ablation,
)
from repro.workloads import ALL_WORKLOADS, SMOKE_WORKLOADS

#: Names suggested in help text for single-run subcommands: the paper's
#: 13 workloads plus the CI smoke workloads.  Not an argparse ``choices``
#: list — scenario names (``trace:<path>``, ``base@pattern``, scenario
#: families) are open-ended syntax resolved by
#: :func:`repro.workloads.workload_profiles`, which raises a
#: :class:`~repro.errors.WorkloadError` (exit 2) for unknown names.
RUNNABLE_WORKLOADS = ALL_WORKLOADS + SMOKE_WORKLOADS

_WORKLOAD_HELP = (
    "workload name: a paper/smoke workload, a scenario family, "
    "trace:<path>, or <base>@<pattern>[:<period>] "
    "(see `loopsim workloads`)"
)


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        instructions=args.instructions,
        seeds=tuple(range(args.seeds)),
        backend=getattr(args, "backend", "reference"),
    )


def _harness(args: argparse.Namespace) -> HarnessSettings:
    """Fault-tolerance settings for campaign subcommands."""
    cache_dir = getattr(args, "cache_dir", None)
    if getattr(args, "resume", False) and not cache_dir:
        cache_dir = str(default_cache_dir())
    return HarnessSettings(
        jobs=getattr(args, "jobs", 1),
        cell_timeout=getattr(args, "cell_timeout", None),
        cache_dir=cache_dir,
        verify=getattr(args, "verify", False),
    )


def _workloads(args: argparse.Namespace) -> Sequence[str]:
    if not args.workloads:
        return ALL_WORKLOADS
    names = tuple(args.workloads.split(","))
    unknown = [name for name in names if name not in ALL_WORKLOADS]
    if unknown:
        raise WorkloadError(f"unknown workload(s): {', '.join(unknown)}")
    return names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--instructions", type=int, default=10_000,
        help="measured instructions per run (default 10000)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds to average (default 1)",
    )
    parser.add_argument(
        "--workloads", default="",
        help="comma-separated workload subset (default: all 13)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent simulation workers (default 1; >1 forces "
             "subprocess isolation)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per simulation cell; hung cells are "
             "killed, retried, and reported",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse cached cells from an earlier (possibly interrupted) "
             "run; only missing cells are re-executed",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location (implies caching; "
             "default with --resume: $REPRO_CACHE_DIR or "
             "~/.cache/loopsim)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run every cell under the differential verifier (golden "
             "retire model + invariant checkers); violations fail the "
             "cell",
    )
    parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend: reference, optimized, sampled, or "
             "sampled:<windows>x<measure>[+<warmup>] "
             "(default reference)",
    )


def _run_config(args: argparse.Namespace) -> CoreConfig:
    if args.dra:
        config = CoreConfig.with_dra(args.rf)
    else:
        config = CoreConfig.base(args.rf)
    if getattr(args, "recovery", ""):
        config = config.replace(load_recovery=LoadRecovery(args.recovery))
    return config


def _cmd_run(args: argparse.Namespace) -> int:
    config = _run_config(args)
    bus = None
    jsonl = None
    chrome = None
    if args.trace_out:
        from repro.obs import EventBus
        from repro.obs.export import ChromeTraceExporter, JsonlExporter

        bus = EventBus()
        if args.trace_out.endswith(".jsonl"):
            jsonl = JsonlExporter(bus, args.trace_out)
        else:
            chrome = ChromeTraceExporter(bus)
    result = simulate(
        args.workload, config, instructions=args.instructions,
        seed=args.seed, obs=bus,
        backend=getattr(args, "backend", "reference"),
    )
    stats = result.stats
    print(result.describe())
    if result.sampling is not None:
        print(f"  {result.sampling.describe()}")
    print()
    for key, value in stats.summary().items():
        print(f"  {key:26s} {value:12.4f}")
    if config.dra is not None:
        print()
        for source, fraction in stats.operand_source_fractions().items():
            print(f"  operand {source.value:18s} {fraction:12.4%}")
    if jsonl is not None:
        jsonl.close()
        print(f"\nwrote {jsonl.events_written} events to {args.trace_out}")
    elif chrome is not None:
        count = chrome.write(args.trace_out)
        print(
            f"\nwrote {count} trace events to {args.trace_out} "
            "(open in https://ui.perfetto.dev)"
        )
    return 0


def _cmd_attribute(args: argparse.Namespace) -> int:
    from repro.obs import EventBus, MetricsCollector
    from repro.obs.attribution import LoopAttribution

    config = _run_config(args)
    bus = EventBus()
    collector = MetricsCollector(bus)
    attribution = LoopAttribution(bus, config)
    result = simulate(
        args.workload, config, instructions=args.instructions,
        seed=args.seed, obs=bus,
    )
    collector.snapshot_into(result.stats)
    report = attribution.report(
        result.stats, workload=result.workload,
        config_label=config.label,
    )
    print(report.render())
    if args.verify:
        mismatches = collector.verify_against(result.stats)
        if mismatches:
            print("\nevent/CoreStats mismatches:")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print("\nevent stream reconciles with CoreStats counters")
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    settings = _settings(args)
    harness = _harness(args)
    name = args.figure
    if name == "fig4":
        result = run_figure4(settings, workloads=_workloads(args),
                             harness=harness)
    elif name == "fig5":
        result = run_figure5(settings, workloads=_workloads(args),
                             harness=harness)
    elif name == "fig6":
        # Figure 6 is a single-workload CDF; honour --workloads by taking
        # the first requested workload rather than silently ignoring it.
        kwargs = {"harness": harness}
        if args.workloads:
            kwargs["workload"] = _workloads(args)[0]
        result = run_figure6(settings, **kwargs)
    elif name == "fig8":
        result = run_figure8(settings, workloads=_workloads(args),
                             harness=harness)
    elif name == "fig9":
        result = run_figure9(settings, workloads=_workloads(args),
                             harness=harness)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    print(result.render())
    # Partial figures still render, but the exit code must tell CI (and
    # a resuming user) that cells are missing.
    return 1 if getattr(result, "failures", None) else 0


def _cmd_ablations(args: argparse.Namespace) -> int:
    settings = _settings(args)
    kwargs = {"harness": _harness(args)}
    if args.workloads:
        kwargs["workloads"] = _workloads(args)
    for runner in (
        run_recovery_ablation,
        run_crc_ablation,
        run_forwarding_ablation,
        run_slotting_ablation,
        run_centralization_ablation,
        run_memdep_ablation,
        run_wake_lead_ablation,
        run_iq_size_ablation,
        run_rf_ports_ablation,
    ):
        print(runner(settings, **kwargs).render())
        print()
    return 0


def _cmd_loops(args: argparse.Namespace) -> int:
    if getattr(args, "machine", ""):
        from repro.presets import preset

        config = preset(args.machine)
    elif args.dra:
        config = CoreConfig.with_dra(args.rf)
    else:
        config = CoreConfig.base(args.rf)
    print(render_loop_inventory(config))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.workload == "capture":
        from repro.scenarios import capture_trace

        if not args.target:
            print("error: trace capture needs a workload "
                  "(loopsim trace capture <workload> -o out.trace.gz)",
                  file=sys.stderr)
            return 2
        if not args.out:
            print("error: trace capture needs -o/--out", file=sys.stderr)
            return 2
        count = capture_trace(
            args.target, args.out, args.count,
            seed=args.seed, thread=args.thread,
        )
        print(f"captured {count} ops of {args.target} "
              f"(seed {args.seed}, thread {args.thread}) to {args.out}")
        print(f"replay with: loopsim run trace:{args.out}")
        return 0

    from repro.analysis.pipetrace import collect_trace, render_pipetrace

    if args.dra:
        config = CoreConfig.with_dra(args.rf)
    else:
        config = CoreConfig.base(args.rf)
    rows = collect_trace(
        args.workload, config, instructions=args.instructions, skip=args.skip
    )
    print(render_pipetrace(rows))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import (
        fuzz,
        replay,
        run_differential_checks,
        verify_presets,
    )

    if args.replay:
        failure = replay(args.replay)
        if failure is None:
            print(f"{args.replay}: the recorded failure no longer occurs")
            return 0
        print(f"{args.replay}: still failing ({failure.kind})")
        print(f"  {failure.detail}")
        for violation in failure.violations[1:6]:
            print(f"  [{violation['checker']}] {violation['message']}")
        return 1

    if args.fuzz:
        result = fuzz(
            budget=args.budget,
            seed=args.seed,
            inject=args.inject or None,
            out_path=args.out or None,
            log=lambda message: print(f"fuzz: {message}"),
        )
        print(result.describe())
        if result.found:
            # a planted bug being found is the expected (passing) outcome
            return 0 if args.inject else 1
        return 1 if args.inject else 0

    failed = False
    print(
        f"verification sweep: workload={args.workload} "
        f"instructions={args.instructions} seed={args.seed}"
    )
    for entry in verify_presets(
        workload=args.workload,
        instructions=args.instructions,
        seed=args.seed,
    ):
        print(entry.describe())
        failed = failed or not entry.ok
    if args.differential:
        print("\ndifferential checks:")
        for check in run_differential_checks(
            workload=args.workload, seed=args.seed
        ):
            print(check.describe())
            failed = failed or not check.passed
    return 1 if failed else 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import (
        DEFAULT_WORKLOADS,
        HalvingSettings,
        PruneSettings,
        named_space,
        run_exploration,
    )

    space = named_space(args.space)
    workloads = (
        tuple(args.workloads.split(",")) if args.workloads
        else DEFAULT_WORKLOADS
    )
    halving = HalvingSettings(
        rungs=args.rungs,
        eta=args.eta,
        base_instructions=args.base_instructions,
        growth=args.growth,
        seeds=tuple(range(args.seeds)),
        warmup=args.warmup,
        detailed_warmup=args.detailed_warmup,
        budget=args.budget,
        backend=args.backend,
        rung_backends=(
            tuple(args.rung_backends.split(","))
            if args.rung_backends else None
        ),
    )
    result = run_exploration(
        space,
        workloads=workloads,
        halving=halving,
        harness=_harness(args),
        prune=(
            PruneSettings(margin=args.prune_margin)
            if not args.no_prune else False
        ),
        sample=args.sample,
        seed=args.seed,
        store_dir=args.store,
        bench_out=args.bench_out,
    )
    print(result.render())
    if result.search.failures:
        return 1
    if not result.frontier.frontier:
        print("error: exploration produced an empty frontier",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeSettings, run_server

    cache_dir = args.cache_dir or str(default_cache_dir())
    harness = HarnessSettings(
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        cache_dir=cache_dir,
        isolate=args.isolate,
        verify=args.verify,
    )
    settings = ServeSettings(
        host=args.host,
        port=args.port,
        workers=args.workers,
        lane_depth=args.lane_depth,
        lease_ttl=args.lease_ttl,
        max_lease_attempts=args.lease_attempts,
        journal_path=args.journal or None,
        journal_fsync=args.fsync,
        resume=args.resume,
        harness=harness,
    )
    asyncio.run(run_server(settings))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import CampaignClient, ServiceError

    client = CampaignClient(
        host=args.host, port=args.port, timeout=args.timeout,
        retries=args.retries,
    )
    with client:
        if args.ping:
            reply = client.health()
            print(f"ok={reply.get('ok')} draining={reply.get('draining')} "
                  f"uptime={reply.get('uptime')}s jobs={reply.get('jobs')} "
                  f"leases={reply.get('leases')}")
            return 0 if reply.get("ok") else 1
        if args.stats:
            reply = client.stats()
            for name, value in sorted(reply.get("metrics", {}).items()):
                print(f"  {name:40s} {value}")
            cache = reply.get("cache")
            if cache:
                print(f"  {'cache.hits':40s} {cache['hits']}")
                print(f"  {'cache.misses':40s} {cache['misses']}")
                print(f"  {'cache.corrupt_swallowed':40s} "
                      f"{cache.get('corrupt_swallowed', 0)}")
            return 0
        if args.status:
            reply = client.status()
            print(f"draining={reply.get('draining')} "
                  f"queues={reply.get('queues')} jobs={reply.get('jobs')} "
                  f"leases={reply.get('leases')}")
            return 0
        if args.drain:
            client.drain()
            print("drain requested")
            return 0
        if not args.workload:
            print("error: submit needs a workload (or --ping/--stats/"
                  "--status/--drain)", file=sys.stderr)
            return 2
        try:
            reply = client.submit(
                args.workload,
                seed=args.seed,
                priority=args.priority,
                wait=not args.no_wait,
                want_result=False,
                dra=args.dra,
                rf=args.rf,
                recovery=args.recovery,
                instructions=args.instructions,
                warmup=args.warmup,
                detailed_warmup=args.detailed_warmup,
                backend=args.backend,
            )
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 3
    if args.no_wait:
        print(f"accepted job={reply.job} key={reply.key} "
              f"dedup={reply.dedup}")
        return 0
    if reply.ok:
        origin = ("cache" if reply.cached
                  else "dedup" if reply.dedup else "fresh")
        print(f"{args.workload}: ipc={reply.ipc:.4f} ({origin}, "
              f"job={reply.job}, attempts={reply.attempts})")
        for key, value in reply.summary.items():
            print(f"  {key:26s} {value:12.4f}")
        return 0
    print(f"error: cell failed: {reply.error_kind}: "
          f"{reply.error_message}", file=sys.stderr)
    return 1


#: Section headings for the ``workloads`` listing, per catalog family.
_FAMILY_HEADINGS = (
    ("spec95-int", "Spec95 integer stand-ins"),
    ("spec95-fp", "Spec95 floating-point stand-ins"),
    ("smt-pair", "SMT pairs (paper suite)"),
    ("scenario", "scenario families"),
    ("scenario-smt", "scenario SMT mixes"),
    ("smoke", "smoke workloads (CI only, not in the paper's suite)"),
)


def _cmd_workloads(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import workload_catalog

    catalog = workload_catalog()
    if args.json:
        print(json.dumps(catalog, indent=2, sort_keys=True))
        return 0
    width = max(len(entry["name"]) for entry in catalog["workloads"])
    for family, heading in _FAMILY_HEADINGS:
        rows = [w for w in catalog["workloads"] if w["family"] == family]
        if not rows:
            continue
        print(f"{heading}:")
        for row in rows:
            threads = f"x{row['threads']}" if row["threads"] > 1 else "  "
            print(f"  {row['name']:{width}s} {threads} {row['description']}")
        print()
    print("dynamic phase patterns (<workload>@<pattern>[:period], "
          f"default period {catalog['patterns'][0]['default_period']} ops):")
    for pattern in catalog["patterns"]:
        print(f"  {pattern['name']:{width}s}    {pattern['description']}")
    print()
    print(f"trace replay: {catalog['trace']['syntax']} — "
          f"{catalog['trace']['description']}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json

    from repro.perfhist import (
        PerfHistory, attribution_shift, check_epoch, commit_of,
        import_explore_bench, import_kernel_bench, record_epoch,
    )
    from repro.perfhist.check import _bucket_shares

    history = PerfHistory(args.history)

    if args.action == "record":
        commit = args.commit or commit_of()
        epoch = record_epoch(
            history, commit,
            kernel_bench=args.kernel or None,
            explore_bench=args.explore or None,
            mechanisms_bench=args.mechanisms or None,
            backend=args.backend,
            include_sampled=not args.no_sampled,
            log=print,
        )
        print(f"appended epoch {epoch.index} to {history.path}")
        return 0

    if args.action == "import":
        if bool(args.kernel) == bool(args.explore):
            print("error: perf import needs exactly one of "
                  "--kernel/--explore", file=sys.stderr)
            return 2
        if not args.commit:
            print("error: perf import needs --commit (the commit the "
                  "benchmark file was recorded at)", file=sys.stderr)
            return 2
        if args.kernel:
            epoch = import_kernel_bench(history, args.kernel, args.commit)
        else:
            epoch = import_explore_bench(history, args.explore, args.commit)
        print(f"imported {epoch.source[len('import:'):]} as epoch "
              f"{epoch.index} (commit {epoch.commit[:12]}, "
              f"{len(epoch.profiles)} profiles)")
        return 0

    if args.action == "log":
        epochs = history.epochs()
        if not epochs:
            print(f"{history.path}: empty history")
            return 0
        if args.key:
            for index, value in history.series(args.key):
                epoch = epochs[index]
                print(f"epoch {index:3d}  {epoch.commit[:12]}  "
                      f"{value:12.4f}  {epoch.timestamp}")
            return 0
        for epoch in epochs:
            print(f"epoch {epoch.index:3d}  {epoch.commit[:12]}  "
                  f"{epoch.timestamp}  {epoch.source:24s} "
                  f"{len(epoch.profiles):3d} profiles")
        return 0

    if args.action == "check":
        report = check_epoch(
            history,
            epoch=args.epoch,
            baseline=args.baseline,
        )
        if args.json:
            print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.ok else 1

    # attribute: loop-bucket cycle accounting for an epoch's IPC
    # profiles, plus the shift against each profile's baseline.
    target = history.epoch(args.epoch if args.epoch is not None else -1)
    shown = 0
    for profile in target.profiles:
        if args.key and profile.key != args.key:
            continue
        shares = _bucket_shares(profile.attribution or {})
        if not shares:
            continue
        shown += 1
        print(f"{profile.key} (epoch {target.index}, "
              f"{profile.value:.4f} {profile.unit}):")
        for name in sorted(shares, key=shares.get, reverse=True):
            print(f"  {name:22s} {shares[name]:6.2f}% of cycles")
        previous = None
        for earlier in history.epochs():
            if earlier.index >= target.index:
                continue
            if earlier.profile(profile.key) is not None:
                previous = earlier
        if previous is not None:
            line = attribution_shift(
                previous.profile(profile.key), profile
            )
            print(f"  vs epoch {previous.index}: {line}")
    if not shown:
        print("no attributed profiles "
              + (f"matching {args.key!r} " if args.key else "")
              + f"in epoch {target.index}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loopsim",
        description=(
            "Loose Loops Sink Chips (HPCA 2002) reproduction: cycle-level "
            "OoO SMT simulator with the Distributed Register Algorithm"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one simulation")
    run_parser.add_argument("workload", help=_WORKLOAD_HELP)
    run_parser.add_argument("--dra", action="store_true",
                            help="use the DRA pipeline")
    run_parser.add_argument("--rf", type=int, default=3, choices=(3, 5, 7),
                            help="register-file read latency")
    run_parser.add_argument("--recovery", default="",
                            choices=("", "reissue", "refetch", "stall",
                                     "ssr"),
                            help="load-miss recovery policy")
    run_parser.add_argument("--instructions", type=int, default=10_000)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--trace-out", default="", metavar="PATH",
        help="write an event trace of the measured run: *.jsonl for "
             "JSON-lines, anything else for Chrome trace-event format "
             "(viewable in Perfetto)",
    )
    run_parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend: reference, optimized, sampled, or "
             "sampled:<windows>x<measure>[+<warmup>]",
    )
    run_parser.set_defaults(func=_cmd_run)

    attribute_parser = sub.add_parser(
        "attribute",
        help="measured per-loop cost attribution (delay x frequency x "
             "mis-speculation -> cycles lost, lost IPC)",
    )
    attribute_parser.add_argument("workload", help=_WORKLOAD_HELP)
    attribute_parser.add_argument("--dra", action="store_true",
                                  help="use the DRA pipeline")
    attribute_parser.add_argument("--rf", type=int, default=3,
                                  choices=(3, 5, 7),
                                  help="register-file read latency")
    attribute_parser.add_argument("--instructions", type=int, default=10_000)
    attribute_parser.add_argument("--seed", type=int, default=0)
    attribute_parser.add_argument(
        "--verify", action="store_true",
        help="cross-check event-stream counts against CoreStats and "
             "fail on any mismatch",
    )
    attribute_parser.set_defaults(func=_cmd_attribute)

    for name in ("fig4", "fig5", "fig6", "fig8", "fig9"):
        fig_parser = sub.add_parser(name, help=f"regenerate paper {name}")
        _add_common(fig_parser)
        fig_parser.set_defaults(func=_cmd_fig, figure=name)

    ablations_parser = sub.add_parser("ablations", help="run design ablations")
    _add_common(ablations_parser)
    ablations_parser.set_defaults(func=_cmd_ablations)

    loops_parser = sub.add_parser("loops", help="print the loop inventory")
    loops_parser.add_argument("--dra", action="store_true")
    loops_parser.add_argument("--rf", type=int, default=3, choices=(3, 5, 7))
    loops_parser.add_argument(
        "--machine", default="",
        help="named preset: alpha21264, base, pentium4",
    )
    loops_parser.set_defaults(func=_cmd_loops)

    workloads_parser = sub.add_parser(
        "workloads",
        help="list every workload, scenario family, phase pattern, and "
             "the trace-replay syntax",
    )
    workloads_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable catalog instead of text",
    )
    workloads_parser.set_defaults(func=_cmd_workloads)

    verify_parser = sub.add_parser(
        "verify",
        help="differential verification: golden model + invariant "
             "checkers over every preset, cross-config laws, fuzzing",
    )
    verify_parser.add_argument(
        "--workload", default="int_test",
        metavar="WORKLOAD",
        help="workload for the sweep/differential runs "
             "(default int_test)",
    )
    verify_parser.add_argument(
        "--instructions", type=int, default=2_000,
        help="instructions per verified run (default 2000)",
    )
    verify_parser.add_argument("--seed", type=int, default=0)
    verify_parser.add_argument(
        "--differential", "-d", action="store_true",
        help="also run the cross-configuration consistency laws",
    )
    verify_parser.add_argument(
        "--fuzz", action="store_true",
        help="fuzz random configurations/workloads instead of the sweep",
    )
    verify_parser.add_argument(
        "--budget", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock budget for --fuzz (default 30)",
    )
    verify_parser.add_argument(
        "--inject", default="", choices=("", "skip-reissue", "stale-crc"),
        help="plant a known bug; with --fuzz, finding it becomes the "
             "passing outcome (checker self-test)",
    )
    verify_parser.add_argument(
        "--out", default="", metavar="PATH",
        help="write the shrunk fuzz reproducer JSON here",
    )
    verify_parser.add_argument(
        "--replay", default="", metavar="PATH",
        help="re-run a fuzz reproducer instead of sweeping",
    )
    verify_parser.set_defaults(func=_cmd_verify)

    explore_parser = sub.add_parser(
        "explore",
        help="model-guided design-space search: analytical pruning, "
             "budgeted successive halving, Pareto frontier, versioned "
             "result ledger",
    )
    explore_parser.add_argument(
        "--space", default="dra", choices=("dra", "mechanisms", "smoke"),
        help="named parameter space (default dra: rf x CRC size x "
             "insertion policy with the base machines pinned; "
             "mechanisms: DRA vs read-port reduction vs SSR stall)",
    )
    explore_parser.add_argument(
        "--workloads", default="",
        help="comma-separated scoring workloads "
             "(default compress,swim)",
    )
    explore_parser.add_argument(
        "--rungs", type=int, default=3,
        help="successive-halving rungs (default 3)",
    )
    explore_parser.add_argument(
        "--eta", type=int, default=3,
        help="keep ~1/eta of each group per rung (default 3)",
    )
    explore_parser.add_argument(
        "--base-instructions", type=int, default=1_000,
        help="detailed instructions at the cheapest rung (default 1000)",
    )
    explore_parser.add_argument(
        "--growth", type=int, default=3,
        help="instruction multiplier between rungs (default 3)",
    )
    explore_parser.add_argument(
        "--seeds", type=int, default=1,
        help="seeds averaged per cell (default 1)",
    )
    explore_parser.add_argument(
        "--warmup", type=int, default=30_000,
        help="functional warmup per run (default 30000)",
    )
    explore_parser.add_argument(
        "--detailed-warmup", type=int, default=500,
        help="detailed warmup per run (default 500)",
    )
    explore_parser.add_argument(
        "--budget", type=int, default=None, metavar="INSTRUCTIONS",
        help="total detailed-instruction budget; rungs that would "
             "overdraw it are skipped",
    )
    explore_parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="deterministically sample N grid points instead of the "
             "exhaustive grid (baselines always included)",
    )
    explore_parser.add_argument(
        "--seed", type=int, default=0,
        help="sampling seed (default 0)",
    )
    explore_parser.add_argument(
        "--no-prune", action="store_true",
        help="disable the analytical pre-filter",
    )
    explore_parser.add_argument(
        "--prune-margin", type=float, default=0.12,
        help="relative predicted-IPC gap the loop model must show "
             "before skipping a candidate (default 0.12)",
    )
    explore_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="append the exploration to the versioned ledger in DIR "
             "and diff against the previous frontier",
    )
    explore_parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write the BENCH_explore.json accounting file "
             "(instruction savings vs the exhaustive grid)",
    )
    explore_parser.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent simulation workers (default 1)",
    )
    explore_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per simulation cell",
    )
    explore_parser.add_argument(
        "--resume", action="store_true",
        help="reuse cached cells from an earlier run",
    )
    explore_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location",
    )
    explore_parser.add_argument(
        "--verify", action="store_true",
        help="run every cell under the differential verifier",
    )
    explore_parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend for every rung (default reference)",
    )
    explore_parser.add_argument(
        "--rung-backends", default="", metavar="SPEC,SPEC,...",
        help="per-rung backend overrides, cheapest rung first; shorter "
             "lists repeat their last entry (e.g. sampled,optimized: "
             "sampled triage rungs, exact final scoring)",
    )
    explore_parser.set_defaults(func=_cmd_explore)

    serve_parser = sub.add_parser(
        "serve",
        help="run the campaign service: async TCP front end with "
             "request dedup, priority lanes, leases, a crash-safe "
             "journal and graceful drain",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7511,
        help="listen port (default 7511; 0 picks a free one)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent cell executions (default 2)",
    )
    serve_parser.add_argument(
        "--lane-depth", type=int, default=64,
        help="queued jobs per priority lane before load shedding "
             "(default 64)",
    )
    serve_parser.add_argument(
        "--lease-ttl", type=float, default=120.0, metavar="SECONDS",
        help="per-job lease budget; expiry requeues the job "
             "(default 120)",
    )
    serve_parser.add_argument(
        "--lease-attempts", type=int, default=3,
        help="lease grants per job before it fails outright (default 3)",
    )
    serve_parser.add_argument(
        "--journal", default="", metavar="PATH",
        help="crash-safe job journal (JSONL); required for --resume",
    )
    serve_parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every journal record (safest, slower)",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="replay accepted-but-unfinished journal jobs on startup",
    )
    serve_parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="harness watchdog budget per cell attempt",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=2,
        help="harness retries per lease for retryable failures "
             "(default 2)",
    )
    serve_parser.add_argument(
        "--isolate", default="auto", choices=("auto", "process", "inline"),
        help="cell isolation mode (default auto: subprocesses whenever "
             "a timeout is armed)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared content-addressed result store (default: "
             "$REPRO_CACHE_DIR or ~/.cache/loopsim)",
    )
    serve_parser.add_argument(
        "--verify", action="store_true",
        help="run every cell under the differential verifier",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit",
        help="submit one cell to a running campaign service "
             "(or probe it with --ping/--stats/--status/--drain)",
    )
    submit_parser.add_argument(
        "workload", nargs="?", default="",
        help="workload name (any the server knows, incl. SMT pairs)",
    )
    submit_parser.add_argument("--host", default="127.0.0.1")
    submit_parser.add_argument("--port", type=int, default=7511)
    submit_parser.add_argument("--dra", action="store_true",
                               help="use the DRA pipeline")
    submit_parser.add_argument("--rf", type=int, default=3,
                               choices=(3, 5, 7),
                               help="register-file read latency")
    submit_parser.add_argument("--recovery", default="",
                               choices=("", "reissue", "refetch", "stall"),
                               help="load-miss recovery policy")
    submit_parser.add_argument("--instructions", type=int, default=10_000)
    submit_parser.add_argument("--warmup", type=int, default=100_000)
    submit_parser.add_argument("--detailed-warmup", type=int, default=1_500)
    submit_parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend executing the cell (default reference)",
    )
    submit_parser.add_argument("--seed", type=int, default=0)
    submit_parser.add_argument(
        "--priority", default="interactive",
        choices=("interactive", "batch"),
        help="queue lane (default interactive)",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="return after acceptance instead of waiting for the result",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="socket timeout while waiting (default 300)",
    )
    submit_parser.add_argument(
        "--retries", type=int, default=5,
        help="resubmits after sheds/disconnects (default 5)",
    )
    submit_parser.add_argument("--ping", action="store_true",
                               help="health-check the service and exit")
    submit_parser.add_argument("--stats", action="store_true",
                               help="print the service metrics snapshot")
    submit_parser.add_argument("--status", action="store_true",
                               help="print queue/job/lease occupancy")
    submit_parser.add_argument("--drain", action="store_true",
                               help="ask the service to drain gracefully")
    submit_parser.set_defaults(func=_cmd_submit)

    trace_parser = sub.add_parser(
        "trace",
        help="pipeview-style per-instruction timeline, or capture a "
             "replayable uop trace (`loopsim trace capture <workload> "
             "-o t.trace.gz`)",
    )
    trace_parser.add_argument(
        "workload",
        help=_WORKLOAD_HELP + "; or the literal `capture` to record a "
             "trace instead of rendering a timeline",
    )
    trace_parser.add_argument(
        "target", nargs="?", default="",
        help="with `capture`: the workload whose stream to record",
    )
    trace_parser.add_argument("--dra", action="store_true")
    trace_parser.add_argument("--rf", type=int, default=3, choices=(3, 5, 7))
    trace_parser.add_argument("-n", "--instructions", type=int, default=32)
    trace_parser.add_argument("--skip", type=int, default=2_000)
    trace_parser.add_argument(
        "-o", "--out", default="", metavar="PATH",
        help="with `capture`: output trace path (.gz compresses)",
    )
    trace_parser.add_argument(
        "--count", type=int, default=20_000,
        help="with `capture`: micro-ops to record (default 20000)",
    )
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument(
        "--thread", type=int, default=0,
        help="with `capture`: which thread of an SMT pair to record",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    perf_parser = sub.add_parser(
        "perf",
        help="per-commit performance history: record this commit's "
             "profile, inspect the trajectory, gate on statistical "
             "degradation detection (see docs/perfhist.md)",
    )
    perf_parser.add_argument(
        "action", choices=("record", "log", "check", "attribute", "import"),
        help="record: measure + append this commit's epoch; log: list "
             "epochs (or one key's series); check: judge an epoch "
             "against the history (exit 1 on degradation); attribute: "
             "loop-bucket cycle accounting; import: fold a committed "
             "BENCH_* file in as its own epoch",
    )
    perf_parser.add_argument(
        "--history", default="PERF_HISTORY.jsonl", metavar="PATH",
        help="history file (default: ./PERF_HISTORY.jsonl)",
    )
    perf_parser.add_argument(
        "--commit", default="",
        help="commit hash to stamp (default: `git rev-parse HEAD`)",
    )
    perf_parser.add_argument(
        "--kernel", default="", metavar="PATH",
        help="BENCH_kernel.json to fold into the epoch",
    )
    perf_parser.add_argument(
        "--explore", default="", metavar="PATH",
        help="BENCH_explore.json to fold into the epoch",
    )
    perf_parser.add_argument(
        "--mechanisms", default="", metavar="PATH",
        help="BENCH_mechanisms.json (competing-mechanisms frontier) to "
             "fold into the epoch",
    )
    perf_parser.add_argument(
        "--backend", default="reference", metavar="SPEC",
        help="kernel backend for the live IPC cells (record)",
    )
    perf_parser.add_argument(
        "--no-sampled", action="store_true",
        help="skip the sampled-backend CI cell (record)",
    )
    perf_parser.add_argument(
        "--epoch", type=int, default=None, metavar="N",
        help="epoch to check/attribute (default: latest; negatives ok)",
    )
    perf_parser.add_argument(
        "--baseline", type=int, default=None, metavar="N",
        help="pin every comparison to epoch N (default: per-key most "
             "recent earlier carrier)",
    )
    perf_parser.add_argument(
        "--key", default="",
        help="restrict log/attribute to one profile key",
    )
    perf_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable check report",
    )
    perf_parser.set_defaults(func=_cmd_perf)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except WorkloadError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except SimulationHangError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.snapshot is not None:
            print(error.snapshot.describe(), file=sys.stderr)
        return 2
    except (ReproError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
