"""Metrics registry: counters, histograms, ring-buffer time series.

:class:`MetricsRegistry` is a flat, name-addressed store of metric
instruments.  It replaces ad-hoc counter plumbing for new
instrumentation: instead of threading another integer through
``CoreStats`` and every constructor between the probe site and the
report, a subscriber derives the number from the event stream and
registers it here.

:class:`MetricsCollector` is the standard such subscriber: it maintains
the canonical metric set (per-stage instruction counts, reissue causes,
operand sources, branch/load loop activity, stall-flag cycle counts, an
instruction-lifetime histogram, an issues-per-instruction histogram, and
a windowed-IPC time series) and can snapshot the registry into
:class:`~repro.core.stats.CoreStats` (``stats.obs_snapshot``) so results
that flow through existing persistence keep the observability data.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import EventBus
from repro.obs.events import (
    BranchOutcomeEvent,
    CompleteEvent,
    CRCEvent,
    CycleEvent,
    FetchEvent,
    IQInsertEvent,
    IssueEvent,
    LoadResolvedEvent,
    OperandEvent,
    ReissueEvent,
    RenameEvent,
    RetireEvent,
    SquashEvent,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A settable point-in-time metric (queue depth, active leases).

    Unlike :class:`Counter` it may go down; unlike :class:`TimeSeries`
    it keeps no history — a snapshot is just the current value.  The
    campaign service (:mod:`repro.serve`) uses gauges for its live
    occupancy numbers.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Adjust the current value by ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Adjust the current value down by ``amount``."""
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A histogram over integer-valued observations.

    Stored as exact value -> count buckets; quantiles interpolate
    nothing (they return the smallest observed value at or above the
    requested rank), matching
    :class:`~repro.analysis.cdf.EmpiricalCDF` semantics.
    """

    __slots__ = ("name", "_buckets", "count", "total")

    def __init__(self, name: str):
        self.name = name
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        """Record one observation."""
        self._buckets[value] = self._buckets.get(value, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def max(self) -> int:
        """Largest observation (0 when empty)."""
        if not self._buckets:
            return 0
        return max(self._buckets)

    def quantile(self, q: float) -> int:
        """Smallest observed value v with P(sample <= v) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0
        rank = q * self.count
        seen = 0
        for value in sorted(self._buckets):
            seen += self._buckets[value]
            if seen >= rank:
                return value
        return self.max  # pragma: no cover - defensive (fp rounding)

    def buckets(self) -> Dict[int, int]:
        """value -> count, ascending by value."""
        return dict(sorted(self._buckets.items()))

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": float(self.quantile(0.5)) if self.count else 0.0,
            "p90": float(self.quantile(0.9)) if self.count else 0.0,
            "max": float(self.max),
        }


class TimeSeries:
    """A bounded (ring-buffer) series of (time, value) samples.

    When the buffer is full the oldest sample is dropped, so a long run
    keeps the most recent window at a fixed memory cost.
    """

    __slots__ = ("name", "capacity", "_samples", "dropped")

    def __init__(self, name: str, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("time series capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._samples: Deque[Tuple[int, float]] = deque(maxlen=capacity)
        #: Samples evicted by the ring buffer (coverage indicator).
        self.dropped = 0

    def sample(self, time: int, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        if len(self._samples) == self.capacity:
            self.dropped += 1
        self._samples.append((time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[Tuple[int, float]]:
        """The retained (time, value) pairs, oldest first."""
        return list(self._samples)

    def snapshot(self) -> Dict[str, Any]:
        values = [v for _, v in self._samples]
        return {
            "count": float(len(values) + self.dropped),
            "retained": float(len(values)),
            "last": values[-1] if values else 0.0,
            "mean": (sum(values) / len(values)) if values else 0.0,
        }


class MetricsRegistry:
    """Name-addressed store of counters, histograms and time series."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram)

    def timeseries(self, name: str, capacity: int = 1024) -> TimeSeries:
        """Get or create the time series ``name``."""
        return self._get_or_create(name, TimeSeries, capacity)

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """A flat, JSON-ready rendering of every metric.

        Counters flatten to ``name``; histograms and time series to
        ``name.<field>``.
        """
        flat: Dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            value = metric.snapshot()
            if isinstance(value, dict):
                for key, sub in value.items():
                    flat[f"{name}.{key}"] = sub
            else:
                flat[name] = value
        return flat

    def render(self) -> str:
        """A plain-text metric dump (one ``name value`` line each)."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, float):
                lines.append(f"{name:46s} {value:.4f}")
            else:
                lines.append(f"{name:46s} {value}")
        return "\n".join(lines)


class MetricsCollector:
    """Bus subscriber deriving the standard metric set from events."""

    #: Cycles per windowed-IPC sample.
    IPC_WINDOW = 256

    def __init__(
        self,
        bus: EventBus,
        registry: Optional[MetricsRegistry] = None,
        ipc_series_capacity: int = 1024,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._fetched = reg.counter("obs.fetched")
        self._renamed = reg.counter("obs.renamed")
        self._inserted = reg.counter("obs.iq_inserted")
        self._issues = reg.counter("obs.issues")
        self._first_issues = reg.counter("obs.first_issues")
        self._retired = reg.counter("obs.retired")
        self._squashed = reg.counter("obs.squashed")
        self._cycles = reg.counter("obs.cycles")
        self._branches = reg.counter("obs.branch.outcomes")
        self._branch_misses = reg.counter("obs.branch.mispredicted")
        self._loads = reg.counter("obs.load.resolved")
        self._load_misses = reg.counter("obs.load.misspeculated")
        self._stall_branch = reg.counter("obs.stall.branch_cycles")
        self._stall_iq = reg.counter("obs.stall.iq_full_cycles")
        self._stall_rob = reg.counter("obs.stall.rob_full_cycles")
        self._stall_port = reg.counter("obs.stall.port_cycles")
        self._port_events = reg.counter("obs.stall.port_events")
        self._lifetime = reg.histogram("obs.inst.lifetime_cycles")
        self._issues_per_inst = reg.histogram("obs.inst.issues")
        self._ipc_series = reg.timeseries("obs.ipc", ipc_series_capacity)
        #: uid -> fetch cycle, for the lifetime histogram.
        self._fetch_cycle: Dict[int, int] = {}
        #: uid -> issue count so far, for the issues histogram.
        self._issue_counts: Dict[int, int] = {}
        self._window_retired = 0
        for event_type, handler in (
            (FetchEvent, self._on_fetch),
            (RenameEvent, self._on_rename),
            (IQInsertEvent, self._on_insert),
            (IssueEvent, self._on_issue),
            (ReissueEvent, self._on_reissue),
            (CompleteEvent, self._on_complete),
            (OperandEvent, self._on_operand),
            (LoadResolvedEvent, self._on_load),
            (BranchOutcomeEvent, self._on_branch),
            (CRCEvent, self._on_crc),
            (RetireEvent, self._on_retire),
            (SquashEvent, self._on_squash),
            (CycleEvent, self._on_cycle),
        ):
            bus.subscribe(event_type, handler)

    # --- handlers ---------------------------------------------------------

    def _on_fetch(self, event: FetchEvent) -> None:
        self._fetched.inc()
        self._fetch_cycle[event.uid] = event.cycle

    def _on_rename(self, event: RenameEvent) -> None:
        self._renamed.inc()

    def _on_insert(self, event: IQInsertEvent) -> None:
        self._inserted.inc()

    def _on_issue(self, event: IssueEvent) -> None:
        self._issues.inc()
        if event.epoch == 1:
            self._first_issues.inc()
        self._issue_counts[event.uid] = event.epoch

    def _on_reissue(self, event: ReissueEvent) -> None:
        self.registry.counter(f"obs.reissue.{event.cause}").inc()

    def _on_complete(self, event: CompleteEvent) -> None:
        pass  # reserved for execute-latency metrics

    def _on_operand(self, event: OperandEvent) -> None:
        self.registry.counter(f"obs.operand.{event.source}").inc()

    def _on_load(self, event: LoadResolvedEvent) -> None:
        self._loads.inc()
        if event.speculated and not event.hit:
            self._load_misses.inc()

    def _on_branch(self, event: BranchOutcomeEvent) -> None:
        self._branches.inc()
        if event.mispredicted:
            self._branch_misses.inc()

    def _on_crc(self, event: CRCEvent) -> None:
        self.registry.counter(f"obs.crc.{event.action}").inc()

    def _on_retire(self, event: RetireEvent) -> None:
        self._retired.inc()
        self._window_retired += 1
        fetched = self._fetch_cycle.pop(event.uid, None)
        if fetched is not None:
            self._lifetime.observe(event.cycle - fetched)
        issues = self._issue_counts.pop(event.uid, None)
        if issues is not None:
            self._issues_per_inst.observe(issues)

    def _on_squash(self, event: SquashEvent) -> None:
        self._squashed.inc()
        self._fetch_cycle.pop(event.uid, None)
        self._issue_counts.pop(event.uid, None)

    def _on_cycle(self, event: CycleEvent) -> None:
        self._cycles.inc()
        if event.branch_stall:
            self._stall_branch.inc()
        if event.iq_full:
            self._stall_iq.inc()
        if event.rob_full:
            self._stall_rob.inc()
        if event.port_stalls:
            self._stall_port.inc()
            self._port_events.inc(event.port_stalls)
        if self._cycles.value % self.IPC_WINDOW == 0:
            self._ipc_series.sample(
                event.cycle, self._window_retired / self.IPC_WINDOW
            )
            self._window_retired = 0

    # --- snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The registry's flat snapshot."""
        return self.registry.snapshot()

    def snapshot_into(self, stats) -> Dict[str, Any]:
        """Store the snapshot on ``stats.obs_snapshot`` and return it.

        ``stats`` is a :class:`~repro.core.stats.CoreStats`; the
        attribute keeps observability data attached to results that flow
        through existing persistence (pickled cells, SimResult).
        """
        snapshot = self.snapshot()
        stats.obs_snapshot = snapshot
        return snapshot

    def verify_against(self, stats) -> List[str]:
        """Cross-check event-derived counts against ``CoreStats``.

        Returns a list of human-readable mismatch descriptions (empty
        when the two accounting paths agree).  Only counters whose
        CoreStats twin covers the same window are compared; the
        collector must have observed the whole run.
        """
        problems: List[str] = []

        def check(label: str, observed: int, expected: int) -> None:
            if observed != expected:
                problems.append(
                    f"{label}: events say {observed}, CoreStats says {expected}"
                )

        check("cycles", self._cycles.value, stats.cycles)
        check("retired", self._retired.value, stats.retired)
        check("issues", self._issues.value, stats.issues)
        check("first issues", self._first_issues.value, stats.first_issues)
        check("squashed", self._squashed.value, stats.squashed_instructions)
        check("port stalls", self._port_events.value, stats.port_stalls)
        reissues = sum(
            self.registry.counter(f"obs.reissue.{cause.value}").value
            for cause in type(next(iter(stats.reissues)))
        )
        check("reissues", reissues, stats.total_reissues)
        return problems


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum numeric values across snapshots (campaign-level rollup)."""
    merged: Dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
    return merged
