"""Loop attribution: the paper's §1-§2 cost model, measured live.

The paper decomposes lost performance per micro-architectural loop as::

    events       = loop occurrences x mis-speculation rate
    cycles lost ~= events x (loop delay + recovery time + queueing)

The analytical ledger (:mod:`repro.loops.analytical`) fills that formula
with *modelled* per-event impacts.  This engine instead measures the
realised cost from the event stream: every simulated cycle is assigned
to exactly one bucket —

* **useful** — at least one instruction retired that cycle;
* **load_resolution** — no retire, and a load-loop replay (a reissue
  caused by a mis-speculated load, directly or transitively) was in
  flight;
* **operand_resolution** — no retire, and a DRA operand-miss recovery
  was in flight;
* **port_pressure** — no retire, no pending replay, and some cluster
  lost an issue opportunity to the register-file read-port limit;
* **branch_resolution** — no retire, and some thread's fetch was
  blocked on an unresolved branch;
* **other** — no retire and none of the above (front-end fill, memory
  latency the window failed to hide, drain effects).

The data-loop buckets take precedence over the port and branch buckets
because a pending replay is a *positively identified* mis-speculation
recovery; port pressure in turn takes precedence over the branch bucket
because a lost issue slot is a positively observed structural stall,
whereas a branch stall can overlap arbitrary other work; the priority is
fixed and documented so totals are reproducible.  By construction::

    useful + sum(per-loop lost) + other == total cycles

which is the reconciliation invariant the tests assert.

Loop *occurrences* and *mis-speculations* are counted from the same
stream (branch outcomes at fetch, load resolutions at execute, operand
classifications at execute), and the per-loop delay comes from the
configured loop geometry (:func:`repro.loops.model.loops_for_config`),
so one report carries the full (delay, frequency, rate, lost cycles,
lost IPC) tuple per loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_heading, format_table
from repro.loops.model import loops_for_config
from repro.obs.bus import EventBus
from repro.obs.events import (
    BranchOutcomeEvent,
    CycleEvent,
    ExecuteEvent,
    LoadResolvedEvent,
    OperandEvent,
    PhaseEvent,
    ReissueEvent,
    RetireEvent,
    SquashEvent,
)

#: Bucket names, in classification priority order (data loops first —
#: see module docstring), then the catch-all.
BRANCH_LOOP = "branch_resolution"
LOAD_LOOP = "load_resolution"
OPERAND_LOOP = "operand_resolution"
PORT_PRESSURE = "port_pressure"
OTHER = "other"

#: Reissue causes mapped to the loop whose recovery they are.
_CAUSE_LOOP = {
    "load_miss": LOAD_LOOP,
    "dependent": LOAD_LOOP,
    "operand_miss": OPERAND_LOOP,
}


@dataclass
class AttributionEntry:
    """One loop's measured attribution row."""

    name: str
    #: Loop delay (length + feedback) from the configured geometry;
    #: 0 for the catch-all bucket.
    loop_delay: int
    occurrences: int = 0
    misspeculations: int = 0
    #: Zero-retire cycles attributed to this loop's recoveries.
    lost_cycles: int = 0

    @property
    def misspeculation_rate(self) -> float:
        """Mis-speculations per loop occurrence."""
        if self.occurrences == 0:
            return 0.0
        return self.misspeculations / self.occurrences

    def cost_per_event(self) -> float:
        """Measured average cycles lost per mis-speculation."""
        if self.misspeculations == 0:
            return 0.0
        return self.lost_cycles / self.misspeculations


@dataclass
class PhaseSlice:
    """Cycle accounting for one phase of a dynamic workload.

    A slice covers the machine cycles between two
    :class:`~repro.obs.events.PhaseEvent` boundaries (the last slice
    runs to the end of observation).  Every observed cycle lands in
    exactly one slice and in exactly one bucket within it, so each
    slice reconciles independently: ``useful + sum(lost) == cycles``.

    Under SMT the cycles are machine cycles — a slice starts whenever
    *any* thread crosses a phase boundary, and ``thread``/``index``
    name the boundary that opened it.
    """

    name: str
    thread: int
    #: Global phase ordinal (keeps increasing across schedule laps).
    index: int
    start_cycle: int
    cycles: int = 0
    useful_cycles: int = 0
    retired: int = 0
    #: Per-loop lost cycles (same bucket names as the global entries).
    lost: Dict[str, int] = field(default_factory=dict)

    @property
    def lost_cycles(self) -> int:
        """All stall cycles attributed within this slice."""
        return sum(self.lost.values())

    @property
    def reconciles(self) -> bool:
        """useful + sum(per-loop lost) == cycles — must always hold."""
        return self.useful_cycles + self.lost_cycles == self.cycles

    @property
    def ipc(self) -> float:
        """Realised IPC over this slice."""
        if self.cycles == 0:
            return 0.0
        return self.retired / self.cycles

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering."""
        return {
            "name": self.name,
            "thread": self.thread,
            "index": self.index,
            "start_cycle": self.start_cycle,
            "cycles": self.cycles,
            "useful_cycles": self.useful_cycles,
            "retired": self.retired,
            "ipc": self.ipc,
            "lost": dict(self.lost),
        }


@dataclass
class AttributionReport:
    """The full per-loop breakdown of one run's cycles."""

    entries: List[AttributionEntry]
    total_cycles: int
    useful_cycles: int
    retired: int
    workload: str = ""
    config_label: str = ""
    #: Per-phase slices; empty unless a dynamic engine emitted phases.
    phases: List[PhaseSlice] = field(default_factory=list)

    def entry(self, name: str) -> AttributionEntry:
        """Look up one loop's row."""
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(name)

    @property
    def lost_cycles(self) -> int:
        """All attributed stall cycles."""
        return sum(e.lost_cycles for e in self.entries)

    @property
    def reconciles(self) -> bool:
        """useful + sum(per-loop lost) == total — must always hold."""
        return self.useful_cycles + self.lost_cycles == self.total_cycles

    @property
    def ipc(self) -> float:
        """Realised IPC over the attributed window."""
        if self.total_cycles == 0:
            return 0.0
        return self.retired / self.total_cycles

    def lost_ipc(self, name: str) -> float:
        """IPC forgone to one loop: IPC with its stall cycles refunded,
        minus realised IPC (first-order — assumes the refunded cycles
        would have retired at the realised rate of the rest)."""
        entry = self.entry(name)
        remaining = self.total_cycles - entry.lost_cycles
        if remaining <= 0 or self.total_cycles == 0:
            return 0.0
        return self.retired / remaining - self.ipc

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready rendering (per-cell snapshot payload)."""
        return {
            "workload": self.workload,
            "config": self.config_label,
            "total_cycles": self.total_cycles,
            "useful_cycles": self.useful_cycles,
            "retired": self.retired,
            "ipc": self.ipc,
            "loops": [
                {
                    "name": e.name,
                    "loop_delay": e.loop_delay,
                    "occurrences": e.occurrences,
                    "misspeculations": e.misspeculations,
                    "misspeculation_rate": e.misspeculation_rate,
                    "lost_cycles": e.lost_cycles,
                    "lost_ipc": self.lost_ipc(e.name),
                }
                for e in self.entries
            ],
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def render(self) -> str:
        """The report as a text table."""
        title = "Measured loop attribution"
        if self.workload:
            title += f" — {self.workload}"
        if self.config_label:
            title += f" [{self.config_label}]"
        headers = [
            "loop", "delay", "occurrences", "misspec", "rate",
            "lost cycles", "lost", "lost IPC",
        ]
        rows = []
        for e in sorted(
            self.entries, key=lambda x: x.lost_cycles, reverse=True
        ):
            frac = (
                e.lost_cycles / self.total_cycles if self.total_cycles else 0.0
            )
            rows.append(
                [
                    e.name,
                    e.loop_delay if e.name != OTHER else "-",
                    e.occurrences,
                    e.misspeculations,
                    f"{e.misspeculation_rate:.2%}",
                    e.lost_cycles,
                    f"{frac:.1%}",
                    f"{self.lost_ipc(e.name):+.3f}",
                ]
            )
        footer = (
            f"\nuseful {self.useful_cycles} + lost {self.lost_cycles} "
            f"= {self.useful_cycles + self.lost_cycles} of "
            f"{self.total_cycles} cycles "
            f"({'reconciles' if self.reconciles else 'DOES NOT RECONCILE'}); "
            f"ipc={self.ipc:.3f} over {self.retired} retired"
        )
        text = (
            format_heading(title) + "\n"
            + format_table(headers, rows) + footer
        )
        if self.phases:
            phase_headers = [
                "phase", "t", "ord", "start", "cycles", "useful",
                "lost", "ipc", "top loop",
            ]
            phase_rows = []
            for phase in self.phases:
                top = max(
                    phase.lost.items(), key=lambda item: item[1], default=None
                )
                phase_rows.append([
                    phase.name,
                    phase.thread,
                    phase.index,
                    phase.start_cycle,
                    phase.cycles,
                    phase.useful_cycles,
                    phase.lost_cycles,
                    f"{phase.ipc:.3f}",
                    f"{top[0]} ({top[1]})" if top else "-",
                ])
            text += (
                "\n\n" + format_heading("Per-phase slices") + "\n"
                + format_table(phase_headers, phase_rows)
            )
        return text


class LoopAttribution:
    """Bus subscriber reconstructing per-loop costs from the stream.

    Attach before the measured run::

        bus = EventBus()
        attribution = LoopAttribution(bus, config)
        result = simulate(workload, config, obs=bus)
        print(attribution.report(result.stats).render())
    """

    def __init__(self, bus: EventBus, config):
        delays = {
            loop.name: loop.loop_delay for loop in loops_for_config(config)
        }
        self._entries: Dict[str, AttributionEntry] = {}
        for name in (BRANCH_LOOP, LOAD_LOOP, OPERAND_LOOP, PORT_PRESSURE):
            self._entries[name] = AttributionEntry(
                name=name, loop_delay=delays.get(name, 0)
            )
        self._entries[OTHER] = AttributionEntry(name=OTHER, loop_delay=0)
        #: uid -> loop name of the replay currently in flight.
        self._pending: Dict[int, str] = {}
        self.total_cycles = 0
        self.useful_cycles = 0
        self._retired = 0
        self._retired_at_last_cycle = 0
        #: Per-phase slices, in arrival order; the last one is live.
        self._segments: List[PhaseSlice] = []
        bus.subscribe(PhaseEvent, self._on_phase)
        bus.subscribe(BranchOutcomeEvent, self._on_branch)
        bus.subscribe(LoadResolvedEvent, self._on_load)
        bus.subscribe(OperandEvent, self._on_operand)
        bus.subscribe(ReissueEvent, self._on_reissue)
        bus.subscribe(ExecuteEvent, self._on_execute)
        bus.subscribe(SquashEvent, self._on_squash)
        bus.subscribe(RetireEvent, self._on_retire)
        bus.subscribe(CycleEvent, self._on_cycle)

    # --- occurrence / mis-speculation counting ---------------------------

    def _on_branch(self, event: BranchOutcomeEvent) -> None:
        # calls and direct jumps cannot mispredict in this front end, so
        # they are not occurrences of the branch resolution loop
        if event.flavor in ("cond", "return"):
            entry = self._entries[BRANCH_LOOP]
            entry.occurrences += 1
            if event.mispredicted:
                entry.misspeculations += 1

    def _on_load(self, event: LoadResolvedEvent) -> None:
        entry = self._entries[LOAD_LOOP]
        entry.occurrences += 1
        if event.speculated and not event.hit:
            entry.misspeculations += 1

    def _on_operand(self, event: OperandEvent) -> None:
        if event.source == "regfile":
            return  # base machine: no operand resolution loop
        entry = self._entries[OPERAND_LOOP]
        entry.occurrences += 1
        if event.source == "miss":
            entry.misspeculations += 1

    # --- pending-replay tracking -----------------------------------------

    def _on_reissue(self, event: ReissueEvent) -> None:
        loop = _CAUSE_LOOP.get(event.cause, LOAD_LOOP)
        # an operand-miss replay on top of a load replay stays a load
        # replay: the earlier mis-speculation started the recovery
        self._pending.setdefault(event.uid, loop)

    def _on_execute(self, event: ExecuteEvent) -> None:
        if event.ok:
            self._pending.pop(event.uid, None)

    def _on_squash(self, event: SquashEvent) -> None:
        self._pending.pop(event.uid, None)

    def _on_retire(self, event: RetireEvent) -> None:
        self._retired += 1

    def _on_phase(self, event: PhaseEvent) -> None:
        self._segments.append(PhaseSlice(
            name=event.name,
            thread=event.thread,
            index=event.index,
            start_cycle=event.cycle,
        ))

    # --- per-cycle classification ----------------------------------------

    def _on_cycle(self, event: CycleEvent) -> None:
        self.total_cycles += 1
        retired_this_cycle = self._retired - self._retired_at_last_cycle
        self._retired_at_last_cycle = self._retired
        bucket: Optional[str] = None
        if event.port_stalls > 0:
            # lost issue slots are occurrences of the port bottleneck
            # whether or not the cycle still retired something
            self._entries[PORT_PRESSURE].occurrences += event.port_stalls
        if retired_this_cycle > 0:
            self.useful_cycles += 1
        elif self._pending:
            pending = self._pending.values()
            bucket = LOAD_LOOP if LOAD_LOOP in pending else OPERAND_LOOP
        elif event.port_stalls > 0:
            bucket = PORT_PRESSURE
        elif event.branch_stall:
            bucket = BRANCH_LOOP
        else:
            bucket = OTHER
        if bucket is not None:
            self._entries[bucket].lost_cycles += 1
        if self._segments:
            segment = self._segments[-1]
            segment.cycles += 1
            segment.retired += retired_this_cycle
            if bucket is None:
                segment.useful_cycles += 1
            else:
                segment.lost[bucket] = segment.lost.get(bucket, 0) + 1

    # --- reporting --------------------------------------------------------

    def report(
        self,
        stats=None,
        workload: str = "",
        config_label: str = "",
    ) -> AttributionReport:
        """Build the report; ``stats`` (CoreStats) supplies the retired
        count cross-check but is optional."""
        retired = self._retired
        if stats is not None and stats.retired > retired:
            # events attached mid-run: fall back to the machine's count
            retired = stats.retired
        return AttributionReport(
            entries=[
                AttributionEntry(
                    name=e.name,
                    loop_delay=e.loop_delay,
                    occurrences=e.occurrences,
                    misspeculations=e.misspeculations,
                    lost_cycles=e.lost_cycles,
                )
                for e in self._entries.values()
            ],
            total_cycles=self.total_cycles,
            useful_cycles=self.useful_cycles,
            retired=retired,
            workload=workload,
            config_label=config_label,
            phases=[
                PhaseSlice(
                    name=s.name,
                    thread=s.thread,
                    index=s.index,
                    start_cycle=s.start_cycle,
                    cycles=s.cycles,
                    useful_cycles=s.useful_cycles,
                    retired=s.retired,
                    lost=dict(s.lost),
                )
                for s in self._segments
            ],
        )
