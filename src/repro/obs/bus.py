"""The event bus: typed subscription and dispatch.

Subscribers register for a concrete event type (or for all events) and
receive each matching event synchronously, in subscription order, as it
is emitted.  Dispatch is a dictionary lookup on ``type(event)`` plus a
loop over the handler lists — cheap enough to run with full tracing on,
and *never* run at all when no bus is attached to the simulator (probe
sites guard with a single ``is None`` test).

The bus makes no attempt at thread safety: one simulator, one bus, one
thread — matching the simulator's own execution model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.obs.events import Event

Handler = Callable[[Event], None]


class EventBus:
    """Synchronous, type-dispatched publish/subscribe."""

    __slots__ = ("_by_type", "_all", "events_emitted")

    def __init__(self) -> None:
        self._by_type: Dict[Type[Event], List[Handler]] = {}
        self._all: List[Handler] = []
        #: Total events dispatched (observability of the observer).
        self.events_emitted = 0

    # --- subscription -----------------------------------------------------

    def subscribe(
        self, event_type: Optional[Type[Event]], handler: Handler
    ) -> Handler:
        """Register ``handler`` for ``event_type`` (None = every event).

        Returns the handler so the call can be used as a decorator.
        """
        if event_type is None:
            self._all.append(handler)
        else:
            self._by_type.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(
        self, event_type: Optional[Type[Event]], handler: Handler
    ) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        handlers = (
            self._all if event_type is None
            else self._by_type.get(event_type, [])
        )
        try:
            handlers.remove(handler)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        """Total registered handlers across all event types."""
        return len(self._all) + sum(len(h) for h in self._by_type.values())

    # --- dispatch ---------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every matching subscriber."""
        self.events_emitted += 1
        for handler in self._all:
            handler(event)
        handlers = self._by_type.get(type(event))
        if handlers:
            for handler in handlers:
                handler(event)
