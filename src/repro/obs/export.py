"""Trace and snapshot exporters.

Three output paths:

* :class:`JsonlExporter` — every event as one JSON object per line;
  greppable, streamable, and the stable interchange format for external
  tooling.
* :class:`ChromeTraceExporter` — per-instruction timeline slices in the
  Chrome trace-event format, viewable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``: one process per hardware thread, instructions
  packed into non-overlapping lanes, nested slices for the in-flight
  (issue -> result) window, instant markers for reissues, squashes and
  mispredicts.
* :func:`result_snapshot` — a JSON-ready metric snapshot of one finished
  :class:`~repro.core.SimResult`; the harness persists it beside the
  result cache so campaign metrics survive without unpickling cells.

Trace timestamps are simulator cycles written into the format's
microsecond field (1 cycle == 1 "us"), so viewer rulers read directly in
cycles.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.bus import EventBus
from repro.obs.events import (
    BranchOutcomeEvent,
    CompleteEvent,
    Event,
    FetchEvent,
    IssueEvent,
    ReissueEvent,
    RetireEvent,
    SquashEvent,
)


class JsonlExporter:
    """Stream every event to a file as JSON lines.

    Accepts a path or an open text file; closing is idempotent and the
    class works as a context manager.
    """

    def __init__(self, bus: EventBus, sink: Union[str, IO[str]]):
        if isinstance(sink, str):
            self._file: Optional[IO[str]] = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self.events_written = 0
        bus.subscribe(None, self._write)

    def _write(self, event: Event) -> None:
        if self._file is None:
            return
        json.dump(event.to_dict(), self._file, separators=(",", ":"))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and (if owned) close the underlying file."""
        if self._file is None:
            return
        self._file.flush()
        if self._owns_file:
            self._file.close()
        self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _InstRecord:
    """Accumulated timeline of one dynamic instruction."""

    __slots__ = (
        "uid", "thread", "pc", "opclass", "fetch", "issues",
        "complete", "retire", "squash", "reissues", "mispredicted",
    )

    def __init__(self, uid: int, thread: int, pc: int, opclass: str, fetch: int):
        self.uid = uid
        self.thread = thread
        self.pc = pc
        self.opclass = opclass
        self.fetch = fetch
        self.issues: List[int] = []
        self.complete = -1
        self.retire = -1
        self.squash = -1
        self.reissues: List[int] = []
        self.mispredicted = False

    @property
    def end(self) -> int:
        """Last known timestamp (slice end for unfinished records)."""
        candidates = [self.fetch, self.complete, self.retire, self.squash]
        candidates.extend(self.issues)
        return max(candidates)


class ChromeTraceExporter:
    """Build a Chrome trace-event file from the event stream.

    Records accumulate in memory (one small record per fetched
    instruction), so this exporter is meant for windows of thousands to
    hundreds of thousands of instructions — the scale at which a human
    reads a timeline — not for unbounded runs.
    """

    def __init__(self, bus: EventBus):
        self._insts: Dict[int, _InstRecord] = {}
        bus.subscribe(FetchEvent, self._on_fetch)
        bus.subscribe(IssueEvent, self._on_issue)
        bus.subscribe(ReissueEvent, self._on_reissue)
        bus.subscribe(CompleteEvent, self._on_complete)
        bus.subscribe(RetireEvent, self._on_retire)
        bus.subscribe(SquashEvent, self._on_squash)
        bus.subscribe(BranchOutcomeEvent, self._on_branch)

    # --- accumulation -----------------------------------------------------

    def _on_fetch(self, event: FetchEvent) -> None:
        self._insts[event.uid] = _InstRecord(
            event.uid, event.thread, event.pc, event.opclass, event.cycle
        )

    def _record(self, uid: int) -> Optional[_InstRecord]:
        return self._insts.get(uid)

    def _on_issue(self, event: IssueEvent) -> None:
        record = self._record(event.uid)
        if record is not None:
            record.issues.append(event.cycle)

    def _on_reissue(self, event: ReissueEvent) -> None:
        record = self._record(event.uid)
        if record is not None:
            record.reissues.append(event.cycle)

    def _on_complete(self, event: CompleteEvent) -> None:
        record = self._record(event.uid)
        if record is not None:
            record.complete = event.avail_cycle

    def _on_retire(self, event: RetireEvent) -> None:
        record = self._record(event.uid)
        if record is not None:
            record.retire = event.cycle

    def _on_squash(self, event: SquashEvent) -> None:
        record = self._record(event.uid)
        if record is not None:
            record.squash = event.cycle

    def _on_branch(self, event: BranchOutcomeEvent) -> None:
        record = self._record(event.uid)
        if record is not None and event.mispredicted:
            record.mispredicted = True

    # --- output -----------------------------------------------------------

    def trace_events(self) -> List[Dict[str, Any]]:
        """The Chrome ``traceEvents`` array."""
        events: List[Dict[str, Any]] = []
        #: (thread, lane) -> last occupied cycle, for lane packing.
        lane_busy: Dict[int, List[int]] = {}
        threads = sorted({r.thread for r in self._insts.values()})
        for thread in threads:
            events.append(
                {
                    "name": "process_name", "ph": "M", "pid": thread, "tid": 0,
                    "args": {"name": f"hw thread {thread}"},
                }
            )
        for record in sorted(self._insts.values(), key=lambda r: r.uid):
            lanes = lane_busy.setdefault(record.thread, [])
            end = max(record.end, record.fetch)
            for lane, busy_until in enumerate(lanes):
                if busy_until < record.fetch:
                    break
            else:
                lanes.append(-1)
                lane = len(lanes) - 1
            lanes[lane] = end
            name = f"{record.opclass} #{record.uid}"
            if record.squash >= 0:
                name += " (squashed)"
            events.append(
                {
                    "name": name,
                    "cat": "inst",
                    "ph": "X",
                    "pid": record.thread,
                    "tid": lane,
                    "ts": record.fetch,
                    "dur": max(1, end - record.fetch),
                    "args": {
                        "uid": record.uid,
                        "pc": f"{record.pc:#x}",
                        "issues": len(record.issues),
                        "mispredicted": record.mispredicted,
                    },
                }
            )
            if record.issues:
                first_issue = record.issues[0]
                window_end = record.complete if record.complete >= 0 else end
                if window_end > first_issue:
                    events.append(
                        {
                            "name": "in-flight",
                            "cat": "issue",
                            "ph": "X",
                            "pid": record.thread,
                            "tid": lane,
                            "ts": first_issue,
                            "dur": window_end - first_issue,
                            "args": {"issues": record.issues},
                        }
                    )
            for cycle in record.reissues:
                events.append(
                    {
                        "name": "reissue", "cat": "loop", "ph": "i", "s": "t",
                        "pid": record.thread, "tid": lane, "ts": cycle,
                    }
                )
            if record.squash >= 0:
                events.append(
                    {
                        "name": "squash", "cat": "loop", "ph": "i", "s": "t",
                        "pid": record.thread, "tid": lane, "ts": record.squash,
                    }
                )
        return events

    def write(self, path: str) -> int:
        """Write the trace file; returns the number of trace events."""
        events = self.trace_events()
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "1 trace us == 1 simulated cycle"},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(events)


def result_snapshot(result) -> Dict[str, Any]:
    """A JSON-ready metric snapshot of one SimResult.

    Bundles the headline summary, the operand-source breakdown (DRA
    runs), the analytical loop ledger, and — when the run carried a
    metrics collector — the registry snapshot stored on
    ``stats.obs_snapshot``.  Used by the harness to persist per-cell
    metrics beside the result cache.
    """
    from repro.loops.analytical import build_ledger

    stats = result.stats
    snapshot: Dict[str, Any] = {
        "workload": result.workload,
        "config": result.config.label,
        "seed": result.seed,
        "ipc": result.ipc,
        "summary": stats.summary(),
        "loops": [
            {
                "name": entry.loop.name,
                "loop_delay": entry.loop.loop_delay,
                "occurrences": entry.occurrences,
                "misspeculations": entry.misspeculations,
                "misspeculation_rate": entry.misspeculation_rate,
                "min_cycles_lost": entry.min_cycles_lost,
            }
            for entry in build_ledger(result.config, stats).entries
        ],
    }
    if result.config.dra is not None:
        snapshot["operand_sources"] = {
            source.value: fraction
            for source, fraction in stats.operand_source_fractions().items()
        }
    obs_snapshot = getattr(stats, "obs_snapshot", None)
    if obs_snapshot:
        snapshot["metrics"] = obs_snapshot
    backend = getattr(result, "backend", "")
    if backend and backend != "reference":
        snapshot["backend"] = backend
    sampling = getattr(result, "sampling", None)
    if sampling is not None:
        lo, hi = sampling.ci95
        snapshot["sampling"] = {
            "ipc_mean": sampling.ipc_mean,
            "ci95": [lo, hi],
            "tolerance": sampling.tolerance,
            "windows": len(sampling.windows),
            "detail_fraction": sampling.detail_fraction,
        }
    return snapshot
