"""The typed event vocabulary of the observability subsystem.

Every probe point in the simulator emits one of these records.  Events
are small frozen dataclasses with a class-level ``KIND`` string used by
exporters and generic subscribers; all payload fields are primitives
(ints, strs, bools) so events serialise to JSON without any knowledge of
the core's object model — this module deliberately imports nothing from
``repro.core``.

Stage events carry the instruction's ``uid`` (globally unique dynamic
instruction id), its hardware ``thread``, and the simulator ``cycle`` at
which the event occurred.  ``epoch`` is the instruction's issue count at
the time of the event, distinguishing replays of the same instruction.

The one per-cycle event, :class:`CycleEvent`, closes the stream each
simulated cycle and carries the cheap machine-state flags the
loop-attribution engine needs to classify stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Tuple


@dataclass(frozen=True)
class Event:
    """Base class: every event has a kind string and a cycle stamp."""

    KIND: ClassVar[str] = "event"

    cycle: int

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (``kind`` plus all payload fields)."""
        record: Dict[str, Any] = {"kind": self.KIND}
        for spec in fields(self):
            record[spec.name] = getattr(self, spec.name)
        return record


# --------------------------------------------------------------------------
# Instruction lifecycle (emitted by repro.core.pipeline / repro.core.iq)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FetchEvent(Event):
    """An instruction entered the fetch pipe."""

    KIND: ClassVar[str] = "fetch"

    uid: int
    thread: int
    pc: int
    opclass: str


@dataclass(frozen=True)
class RenameEvent(Event):
    """An instruction was renamed (mapped to physical registers).

    Carries the full rename outcome so register-level checkers can
    replay the map: ``arch_dst`` / ``dst_preg`` / ``prev_dst_preg`` are
    ``-1`` for instructions without a destination, ``src_pregs`` are the
    physical sources in operand order, and ``preread[i]`` records the
    DRA's RPFT pre-read decision for ``src_pregs[i]`` (always empty on
    the base machine).  Emitted *after* the rename completed, within the
    rename cycle.
    """

    KIND: ClassVar[str] = "rename"

    uid: int
    thread: int
    arch_dst: int = -1
    dst_preg: int = -1
    prev_dst_preg: int = -1
    src_pregs: Tuple[int, ...] = ()
    preread: Tuple[bool, ...] = ()


@dataclass(frozen=True)
class IQInsertEvent(Event):
    """An instruction allocated its issue-queue entry."""

    KIND: ClassVar[str] = "iq_insert"

    uid: int
    thread: int


@dataclass(frozen=True)
class IssueEvent(Event):
    """An instruction was selected for execution (epoch = issue count)."""

    KIND: ClassVar[str] = "issue"

    uid: int
    thread: int
    epoch: int


@dataclass(frozen=True)
class ExecuteEvent(Event):
    """An instruction reached execute; ``ok`` is False on a replay-bound
    attempt (some operand turned out invalid or missing)."""

    KIND: ClassVar[str] = "execute"

    uid: int
    thread: int
    epoch: int
    ok: bool


@dataclass(frozen=True)
class ReissueEvent(Event):
    """An issued instruction must replay; ``cause`` names the loop
    (``load_miss`` / ``operand_miss`` / ``dependent``)."""

    KIND: ClassVar[str] = "reissue"

    uid: int
    thread: int
    cause: str


@dataclass(frozen=True)
class CompleteEvent(Event):
    """Execution succeeded; the result is available at ``avail_cycle``."""

    KIND: ClassVar[str] = "complete"

    uid: int
    thread: int
    avail_cycle: int


@dataclass(frozen=True)
class ConfirmEvent(Event):
    """The execution stage confirmed the instruction (IQ entry freed)."""

    KIND: ClassVar[str] = "confirm"

    uid: int
    thread: int


@dataclass(frozen=True)
class RetireEvent(Event):
    """The instruction left the machine in program order."""

    KIND: ClassVar[str] = "retire"

    uid: int
    thread: int


@dataclass(frozen=True)
class SquashEvent(Event):
    """The instruction was squashed; ``reason`` names the recovery
    (``load_refetch`` / ``memdep_trap``)."""

    KIND: ClassVar[str] = "squash"

    uid: int
    thread: int
    reason: str


@dataclass(frozen=True)
class DropEvent(Event):
    """An instruction was discarded from the fetch pipe by a flush.

    Distinct from :class:`SquashEvent`: dropped instructions never
    renamed, so they roll back no machine state and are not counted as
    squashes by :class:`~repro.core.stats.CoreStats`.  Together the two
    events make the instruction ledger conserve exactly:
    fetched == retired + squashed + dropped + in flight.
    """

    KIND: ClassVar[str] = "drop"

    uid: int
    thread: int


# --------------------------------------------------------------------------
# Loop resolution points
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class OperandEvent(Event):
    """One source operand was classified at execute.

    ``source`` is an :class:`~repro.core.stats.OperandSource` value
    string: ``preread`` / ``forward`` / ``crc`` / ``miss`` (the operand
    resolution loop's mis-speculation) / ``regfile`` (base machine).
    """

    KIND: ClassVar[str] = "operand"

    uid: int
    thread: int
    preg: int
    source: str


@dataclass(frozen=True)
class LoadResolvedEvent(Event):
    """A load learned its true latency.

    ``hit`` is True when the load behaved like the speculated L1 hit;
    ``speculated`` is False under the STALL recovery policy (dependents
    never speculate, so a miss is not a mis-speculation).
    """

    KIND: ClassVar[str] = "load_resolved"

    uid: int
    thread: int
    hit: bool
    speculated: bool
    latency: int


@dataclass(frozen=True)
class BranchOutcomeEvent(Event):
    """A control instruction's prediction was checked at fetch.

    ``flavor`` is ``cond`` / ``return`` / ``call`` / ``jump``; only the
    first two can mispredict in this front end.
    """

    KIND: ClassVar[str] = "branch_outcome"

    uid: int
    thread: int
    pc: int
    flavor: str
    taken: bool
    mispredicted: bool


@dataclass(frozen=True)
class PredictorEvent(Event):
    """A direction predictor was trained (emitted from ``repro.branch``
    via :class:`~repro.branch.predictors.ProbedPredictor`)."""

    KIND: ClassVar[str] = "predictor"

    pc: int
    predicted: bool
    taken: bool


@dataclass(frozen=True)
class CRCEvent(Event):
    """Cluster-register-cache activity (emitted from ``repro.core.dra``).

    ``action`` is ``hit`` / ``miss`` / ``insert`` / ``invalidate`` /
    ``evict`` (FIFO replacement pushed the entry out).
    """

    KIND: ClassVar[str] = "crc"

    preg: int
    cluster: int
    action: str


@dataclass(frozen=True)
class WritebackEvent(Event):
    """A physical register's value was written back to the register file
    (the point where the RPFT bit for ``preg`` is set)."""

    KIND: ClassVar[str] = "writeback"

    preg: int


# --------------------------------------------------------------------------
# Workload phases (emitted by dynamic scenario engines via the pipeline)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PhaseEvent(Event):
    """A thread's dynamic workload entered a new phase.

    Emitted when a :class:`~repro.scenarios.dynamic.DynamicWorkloadEngine`
    crosses a phase boundary (and once at attach time, anchoring the
    phase in effect when observation starts).  ``index`` is the global
    phase ordinal — it keeps increasing across schedule laps, so two
    visits to the same named phase stay distinguishable.
    """

    KIND: ClassVar[str] = "phase"

    thread: int
    name: str
    index: int


# --------------------------------------------------------------------------
# Per-cycle sample
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CycleEvent(Event):
    """End-of-cycle sample: stall flags for cycle attribution.

    Emitted once per :meth:`~repro.core.pipeline.Simulator.tick` after
    all stage events of that cycle, so subscribers can treat it as the
    cycle boundary.
    """

    KIND: ClassVar[str] = "cycle"

    #: Some thread's fetch is blocked on an unresolved branch.
    branch_stall: bool
    #: The issue queue is at capacity.
    iq_full: bool
    #: The in-flight window (ROB) is at capacity.
    rob_full: bool
    #: Issue opportunities lost to register-file read-port limits this
    #: cycle (defaults to 0 for emitters predating port accounting).
    port_stalls: int = 0
