"""repro.obs — event tracing, metrics, and loop-attribution observability.

The subsystem has four layers, composable a la carte:

* :mod:`repro.obs.events` — the typed event vocabulary.  Probe points in
  the core pipeline, the issue queue, the DRA, and the branch machinery
  emit these records *only* when an :class:`~repro.obs.bus.EventBus` has
  been attached (``Simulator.attach_obs``); with no bus attached every
  probe is a single ``is None`` test, so baseline simulation speed is
  unchanged.
* :mod:`repro.obs.bus` — the event bus: per-event-type subscription and
  dispatch.
* :mod:`repro.obs.metrics` — a metrics registry (counters, histograms,
  ring-buffer time series) plus :class:`~repro.obs.metrics.MetricsCollector`,
  a bus subscriber that derives the standard metric set from the event
  stream and snapshots it into :class:`~repro.core.CoreStats` for
  backward compatibility.
* :mod:`repro.obs.attribution` — the loop-attribution engine: it
  reconstructs occurrences of each micro-architectural loop from the
  event stream and produces the paper's §1-§2 cost breakdown (loop
  delay x occurrence frequency x mis-speculation rate -> cycles and IPC
  lost), with every simulated cycle accounted for.
* :mod:`repro.obs.export` — JSONL and Chrome-trace-event (Perfetto)
  exporters, plus the per-cell metric snapshot the harness persists
  beside its result cache.

Quickstart::

    from repro import CoreConfig, simulate
    from repro.obs import EventBus, LoopAttribution

    bus = EventBus()
    attribution = LoopAttribution(bus, CoreConfig.base())
    result = simulate("swim", CoreConfig.base(), obs=bus)
    print(attribution.report(result.stats).render())

``attribution`` and ``export`` are imported lazily (PEP 562) so that the
core pipeline's ``from repro.obs.events import ...`` never drags the
analysis layers — or their imports of the core — back in.
"""

from repro.obs.bus import EventBus
from repro.obs.events import (
    BranchOutcomeEvent,
    CompleteEvent,
    ConfirmEvent,
    CRCEvent,
    CycleEvent,
    DropEvent,
    Event,
    ExecuteEvent,
    FetchEvent,
    IQInsertEvent,
    IssueEvent,
    LoadResolvedEvent,
    OperandEvent,
    PhaseEvent,
    PredictorEvent,
    ReissueEvent,
    RenameEvent,
    RetireEvent,
    SquashEvent,
    WritebackEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    TimeSeries,
)

#: Lazily re-exported names -> defining submodule (kept out of the eager
#: import path; see module docstring).
_LAZY = {
    "LoopAttribution": "repro.obs.attribution",
    "AttributionReport": "repro.obs.attribution",
    "AttributionEntry": "repro.obs.attribution",
    "PhaseSlice": "repro.obs.attribution",
    "JsonlExporter": "repro.obs.export",
    "ChromeTraceExporter": "repro.obs.export",
    "result_snapshot": "repro.obs.export",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Event",
    "EventBus",
    "FetchEvent",
    "RenameEvent",
    "IQInsertEvent",
    "IssueEvent",
    "ExecuteEvent",
    "ReissueEvent",
    "CompleteEvent",
    "ConfirmEvent",
    "RetireEvent",
    "SquashEvent",
    "DropEvent",
    "WritebackEvent",
    "OperandEvent",
    "PhaseEvent",
    "LoadResolvedEvent",
    "BranchOutcomeEvent",
    "PredictorEvent",
    "CRCEvent",
    "CycleEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "MetricsCollector",
    "LoopAttribution",
    "AttributionReport",
    "AttributionEntry",
    "PhaseSlice",
    "JsonlExporter",
    "ChromeTraceExporter",
    "result_snapshot",
]
