"""Workload-engine abstraction: any deterministic uop stream.

The core historically consumed one concrete stream source —
:class:`~repro.workloads.SyntheticTraceGenerator`.  This module names
the *contract* that source satisfies so the pipeline, the verification
oracle, and the harness can consume any engine honouring it:

``WorkloadEngine`` (duck-typed; the generator itself qualifies):

* ``name`` — stable identity string;
* ``next_op()`` / ``stream()`` — the deterministic uop supply;
* ``emitted`` — ops produced so far;
* ``clone()`` — a fresh engine with the same identity at stream start;
* ``fast_forward(n)`` — advance by ``n`` ops, discarding them.

The determinism contract: for any engine ``e``, a clone fast-forwarded
by ``e.emitted`` continues ``e``'s stream exactly.  The golden retire
model (:mod:`repro.verify.oracle`) is built on nothing else, which is
what lets it check trace replays and phase-varying streams with the
same code that checks the synthetic generator.

``EngineSpec`` is the *declarative* half: a named, content-addressable
recipe (`trace:<path>`, ``swim@bursty``) that ``workload_profiles``
returns in place of a plain profile.  Anything with a ``build_engine``
method is treated as a spec by the simulator; plain
:class:`~repro.workloads.WorkloadProfile` objects keep the historical
fast path and bit-identical streams.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa import MicroOp
    from repro.workloads import WorkloadProfile


@runtime_checkable
class WorkloadEngine(Protocol):
    """Structural interface of a deterministic uop supply."""

    name: str

    def next_op(self) -> "MicroOp": ...

    def stream(self) -> Iterator["MicroOp"]: ...

    @property
    def emitted(self) -> int: ...

    def clone(self) -> "WorkloadEngine": ...

    def fast_forward(self, count: int) -> None: ...


@runtime_checkable
class EngineSpec(Protocol):
    """A named recipe the simulator can instantiate per hardware thread.

    ``workload_profiles`` returns these (alongside plain profiles); the
    simulator calls ``build_engine`` once per thread.  ``signature()``
    is a content hash folded into harness cell keys so two specs
    sharing a display name can never collide in the result cache.
    """

    name: str
    family: str
    description: str

    def build_engine(
        self, seed: int = 0, thread: int = 0, page_bytes: int = 8192
    ) -> WorkloadEngine: ...

    def signature(self) -> str: ...

    def prior_profile(self) -> "WorkloadProfile": ...


def content_digest(*parts: str) -> str:
    """A short stable digest of the joined parts (signature helper)."""
    text = "\x1f".join(parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def profile_signature(profile: "WorkloadProfile") -> str:
    """Content signature of a plain profile.

    ``WorkloadProfile`` and its sub-models are frozen dataclasses (and
    :class:`~repro.workloads.mix.InstructionMix` has a deterministic
    repr), so ``repr`` is a complete rendering of every knob — two
    profiles sharing a name but differing in any parameter digest
    differently.
    """
    return content_digest("profile", repr(profile))


def build_engine_for(
    entry, seed: int = 0, thread: int = 0, page_bytes: int = 8192
) -> WorkloadEngine:
    """Instantiate the uop supply for one hardware thread.

    ``entry`` is whatever ``workload_profiles`` resolved: an
    :class:`EngineSpec` (anything with ``build_engine``) or a plain
    :class:`~repro.workloads.WorkloadProfile`, which takes the
    historical :class:`~repro.workloads.SyntheticTraceGenerator` path —
    bit-identical streams for every pre-existing workload.
    """
    if hasattr(entry, "build_engine"):
        return entry.build_engine(
            seed=seed, thread=thread, page_bytes=page_bytes
        )
    from repro.workloads.generator import SyntheticTraceGenerator

    return SyntheticTraceGenerator(
        entry, seed=seed, thread=thread, page_bytes=page_bytes
    )


def entry_signature(entry) -> str:
    """Content signature of one resolved workload entry (spec or profile)."""
    if hasattr(entry, "signature"):
        return entry.signature()
    return profile_signature(entry)
