"""Name-level scenario services: signatures and the workload catalog.

Two consumers:

* the harness cache (:func:`workload_signature`) — folds each resolved
  engine's content digest into cell keys, so a renamed trace file, an
  edited schedule, or a retuned profile can never alias a cached
  result that was computed from different content;
* the CLI (:func:`workload_catalog`) — one structured listing of every
  resolvable workload name (families, thread counts, descriptions)
  plus the dynamic pattern table and the trace syntax, rendered by
  ``loopsim workloads`` as text or ``--json``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import WorkloadError
from repro.scenarios.base import content_digest, entry_signature
from repro.scenarios.dynamic import DEFAULT_PERIOD, PATTERN_DESCRIPTIONS


def workload_signature(name: str) -> str:
    """Content digest of everything ``name`` resolves to.

    Unresolvable names (missing trace file, unknown base) digest to a
    constant: the key still forms, the cell then fails at execution
    with the real error, and nothing is ever served from a cache entry
    whose content could not be established.
    """
    from repro.workloads.suites import workload_profiles

    try:
        entries = workload_profiles(name)
    except WorkloadError:
        return "unresolved"
    return content_digest(*[entry_signature(entry) for entry in entries])


def workload_catalog() -> Dict[str, Any]:
    """The full structured workload listing (JSON-ready)."""
    from repro.workloads.profiles import (
        SCENARIO_PROFILES,
        SMOKE_PROFILES,
        SPEC95_PROFILES,
    )
    from repro.workloads.suites import (
        FP_WORKLOADS,
        INT_WORKLOADS,
        SCENARIO_PAIRS,
        SMT_PAIRS,
    )

    def _first_line(text: str) -> str:
        return text.strip().splitlines()[0] if text.strip() else ""

    workloads: List[Dict[str, Any]] = []
    for name, profile in SPEC95_PROFILES.items():
        if name in INT_WORKLOADS:
            family = "spec95-int"
        elif name in FP_WORKLOADS:
            family = "spec95-fp"
        else:  # pragma: no cover - defensive
            family = "spec95"
        workloads.append({
            "name": name,
            "family": family,
            "threads": 1,
            "description": _first_line(profile.description),
        })
    for name, parts in SMT_PAIRS.items():
        workloads.append({
            "name": name,
            "family": "smt-pair",
            "threads": len(parts),
            "description": " + ".join(parts),
        })
    for name, profile in SCENARIO_PROFILES.items():
        workloads.append({
            "name": name,
            "family": "scenario",
            "threads": 1,
            "description": _first_line(profile.description),
        })
    for name, parts in SCENARIO_PAIRS.items():
        workloads.append({
            "name": name,
            "family": "scenario-smt",
            "threads": len(parts),
            "description": " + ".join(parts),
        })
    for name, profile in SMOKE_PROFILES.items():
        workloads.append({
            "name": name,
            "family": "smoke",
            "threads": 1,
            "description": _first_line(profile.description),
        })
    return {
        "workloads": workloads,
        "patterns": [
            {
                "name": name,
                "description": description,
                "syntax": f"<workload>@{name}[:period]",
                "default_period": DEFAULT_PERIOD,
            }
            for name, description in sorted(PATTERN_DESCRIPTIONS.items())
        ],
        "trace": {
            "syntax": "trace:<path>",
            "description": (
                "replay a captured uop trace (loopsim trace capture "
                "<workload> -o <path>)"
            ),
        },
    }
