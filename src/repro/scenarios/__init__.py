"""Scenario engines: trace replay and phase-varying dynamic workloads.

The subsystem generalises uop supply behind the
:class:`~repro.scenarios.base.WorkloadEngine` contract (any
deterministic, clonable, fast-forwardable stream), and provides two
engine families beyond the synthetic generator:

* :mod:`repro.scenarios.trace` — versioned on-disk uop traces with
  capture (``loopsim trace capture``) and O(1)-seek replay
  (``trace:<path>`` workload names);
* :mod:`repro.scenarios.dynamic` — :class:`PhaseSchedule`-driven
  engines whose profile parameters follow intensity patterns over time
  (``<workload>@<pattern>[:period]`` names), with phase boundaries
  surfaced as obs events for per-phase loop attribution.

``docs/scenarios.md`` documents the trace format, the pattern table,
and the engine API.
"""

from repro.scenarios.base import (
    EngineSpec,
    WorkloadEngine,
    build_engine_for,
    entry_signature,
    profile_signature,
)
from repro.scenarios.dynamic import (
    DEFAULT_PERIOD,
    PATTERNS,
    DynamicSpec,
    DynamicWorkloadEngine,
    PhaseSchedule,
    interpolate_profiles,
    resolve_dynamic,
    stressed_variant,
)
from repro.scenarios.registry import workload_catalog, workload_signature
from repro.scenarios.trace import (
    TRACE_VERSION,
    TraceError,
    TraceExhaustedError,
    TraceReplayEngine,
    TraceSpec,
    capture_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "WorkloadEngine",
    "EngineSpec",
    "build_engine_for",
    "entry_signature",
    "profile_signature",
    "PhaseSchedule",
    "DynamicSpec",
    "DynamicWorkloadEngine",
    "PATTERNS",
    "DEFAULT_PERIOD",
    "interpolate_profiles",
    "stressed_variant",
    "resolve_dynamic",
    "TraceError",
    "TraceExhaustedError",
    "TraceReplayEngine",
    "TraceSpec",
    "TRACE_VERSION",
    "capture_trace",
    "read_trace",
    "write_trace",
    "workload_catalog",
    "workload_signature",
]
