"""Versioned on-disk uop traces: capture and deterministic replay.

Format (``docs/scenarios.md`` carries the normative spec)::

    line 1:       JSON header, newline-terminated (auditable with head -1)
    bytes after:  ``count`` fixed-size little-endian records

Header fields: ``format`` (``"loopsim-uop-trace"``), ``version`` (1),
``name``, ``source`` (the workload the stream was captured from),
``seed`` / ``thread`` / ``page_bytes`` (capture parameters), ``count``,
``record`` (the struct format), and ``opclasses`` — the op-class code
table, so a record's one-byte class index survives enum reordering.

Each record packs one :class:`~repro.isa.MicroOp` into 30 bytes::

    pc:u64  address:u64  target:u64  opclass:u8  flags:u8
    nsrcs:u8  src0:u8  src1:u8  dst:u8

``flags`` bits: 1 = taken, 2 = has address, 4 = has target,
8 = has dst.  Absent fields pack as zero and are ignored on read.
Paths ending in ``.gz`` are transparently gzip-compressed (the traces
are "compact", not merely small: 30 B/op raw, ~20 % of that gzipped).

:class:`TraceReplayEngine` drives the pipeline from a trace through the
same :class:`~repro.scenarios.base.WorkloadEngine` contract the
synthetic generator satisfies.  Replay is in-memory, so ``clone`` +
``fast_forward`` (the oracle's rebuild path) and ``seek`` (rewind) are
O(1) position moves — squash replays and the golden model cost nothing
extra.  With ``loop=True`` (the default) the trace wraps around, making
a finite capture an infinite deterministic stream; ``loop=False``
raises :class:`TraceExhaustedError` at the end instead.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import struct
from typing import BinaryIO, Dict, Iterable, Iterator, List, Optional

from repro.errors import WorkloadError
from repro.isa import MicroOp, OpClass

TRACE_FORMAT = "loopsim-uop-trace"
TRACE_VERSION = 1

_RECORD = struct.Struct("<QQQBBBBBB")

_FLAG_TAKEN = 1
_FLAG_ADDRESS = 2
_FLAG_TARGET = 4
_FLAG_DST = 8

#: Sentinel for "no register" in the one-byte src/dst slots.
_NO_REG = 0xFF


class TraceError(WorkloadError):
    """A trace file is missing, malformed, or version-incompatible."""


class TraceExhaustedError(TraceError):
    """A non-looping replay ran past the end of its trace."""


def _open(path: str, mode: str) -> BinaryIO:
    if path.endswith(".gz"):
        return gzip.open(path, mode)  # type: ignore[return-value]
    return open(path, mode)  # noqa: SIM115 - caller closes


def _pack(op: MicroOp, codes: Dict[OpClass, int]) -> bytes:
    flags = 0
    if op.taken:
        flags |= _FLAG_TAKEN
    if op.address is not None:
        flags |= _FLAG_ADDRESS
    if op.target is not None:
        flags |= _FLAG_TARGET
    if op.dst is not None:
        flags |= _FLAG_DST
    srcs = list(op.srcs) + [_NO_REG] * (2 - len(op.srcs))
    return _RECORD.pack(
        op.pc,
        op.address or 0,
        op.target or 0,
        codes[op.opclass],
        flags,
        len(op.srcs),
        srcs[0],
        srcs[1],
        op.dst if op.dst is not None else _NO_REG,
    )


def _unpack(record: bytes, classes: List[OpClass]) -> MicroOp:
    pc, address, target, code, flags, nsrcs, src0, src1, dst = (
        _RECORD.unpack(record)
    )
    srcs = tuple((src0, src1)[:nsrcs])
    return MicroOp(
        pc=pc,
        opclass=classes[code],
        srcs=srcs,
        dst=dst if flags & _FLAG_DST else None,
        address=address if flags & _FLAG_ADDRESS else None,
        taken=bool(flags & _FLAG_TAKEN),
        target=target if flags & _FLAG_TARGET else None,
    )


def write_trace(
    path: str,
    ops: Iterable[MicroOp],
    *,
    name: str = "",
    source: str = "",
    seed: int = 0,
    thread: int = 0,
    page_bytes: int = 8192,
) -> int:
    """Write ``ops`` to ``path`` in trace format; returns the op count."""
    classes = list(OpClass)
    codes = {opclass: index for index, opclass in enumerate(classes)}
    body = io.BytesIO()
    count = 0
    for op in ops:
        body.write(_pack(op, codes))
        count += 1
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "name": name or source or "trace",
        "source": source,
        "seed": seed,
        "thread": thread,
        "page_bytes": page_bytes,
        "count": count,
        "record": _RECORD.format,
        "opclasses": [opclass.value for opclass in classes],
    }
    with _open(path, "wb") as handle:
        handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
        handle.write(b"\n")
        handle.write(body.getvalue())
    return count


def capture_trace(
    workload: str,
    path: str,
    count: int,
    *,
    seed: int = 0,
    thread: int = 0,
    page_bytes: int = 8192,
) -> int:
    """Capture ``count`` ops of ``workload``'s stream (one thread) to
    ``path``.

    Works for any resolvable workload — profile, SMT pair member,
    dynamic schedule, even another trace — because it builds the same
    engine the simulator would and dumps its stream from position 0.
    """
    from repro.scenarios.base import build_engine_for
    from repro.workloads.suites import workload_profiles

    if count < 1:
        raise TraceError(f"trace capture needs count >= 1 (got {count})")
    entries = workload_profiles(workload)
    if not 0 <= thread < len(entries):
        raise TraceError(
            f"workload {workload!r} has {len(entries)} thread(s); "
            f"cannot capture thread {thread}"
        )
    engine = build_engine_for(
        entries[thread], seed=seed, thread=thread, page_bytes=page_bytes
    )
    ops = (engine.next_op() for _ in range(count))
    return write_trace(
        path,
        ops,
        name=f"trace:{workload}",
        source=workload,
        seed=seed,
        thread=thread,
        page_bytes=page_bytes,
    )


def read_trace(path: str) -> "TraceReplayEngine":
    """Load a trace into a replay engine (header validated)."""
    return TraceReplayEngine(path)


class TraceReplayEngine:
    """Replays a captured uop trace as a deterministic workload engine.

    The whole trace is held in memory (captures are measurement-window
    sized, not program-lifetime sized), so position moves are O(1):

    * ``fast_forward(n)`` / ``seek(n)`` jump to absolute stream
      position ``n`` — with looping, position ``n`` maps to record
      ``n % count``;
    * ``clone()`` shares the immutable op list, so the verification
      oracle's rebuild costs one object, not a re-read.
    """

    def __init__(self, path: str, loop: bool = True):
        self.path = path
        self.loop = loop
        try:
            with _open(path, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            raise TraceError(f"cannot read trace {path!r}: {error}") from error
        newline = raw.find(b"\n")
        if newline < 0:
            raise TraceError(f"{path!r}: no header line; not a uop trace")
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TraceError(
                f"{path!r}: unparsable trace header: {error}"
            ) from error
        if header.get("format") != TRACE_FORMAT:
            raise TraceError(
                f"{path!r}: format {header.get('format')!r} is not "
                f"{TRACE_FORMAT!r}"
            )
        if header.get("version") != TRACE_VERSION:
            raise TraceError(
                f"{path!r}: trace version {header.get('version')!r} "
                f"unsupported (expected {TRACE_VERSION})"
            )
        try:
            classes = [OpClass(value) for value in header["opclasses"]]
        except (KeyError, ValueError) as error:
            raise TraceError(
                f"{path!r}: bad op-class table: {error}"
            ) from error
        body = raw[newline + 1:]
        count = int(header.get("count", -1))
        if count < 1 or len(body) < count * _RECORD.size:
            raise TraceError(
                f"{path!r}: header promises {count} records, body holds "
                f"{len(body) // _RECORD.size}"
            )
        self.header = header
        self.name = str(header.get("name") or f"trace:{path}")
        try:
            self._ops: List[MicroOp] = [
                _unpack(
                    body[i * _RECORD.size:(i + 1) * _RECORD.size], classes
                )
                for i in range(count)
            ]
        except (ValueError, IndexError) as error:
            raise TraceError(
                f"{path!r}: corrupt trace record: {error}"
            ) from error
        self._digest = hashlib.sha256(raw).hexdigest()[:16]
        self._pos = 0
        self._emitted = 0

    # ------------------------------------------------------------- engine API

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def emitted(self) -> int:
        """Ops delivered so far (absolute stream position)."""
        return self._emitted

    @property
    def digest(self) -> str:
        """Content digest of the trace file (cache-key material)."""
        return self._digest

    def next_op(self) -> MicroOp:
        if self._pos >= len(self._ops):
            if not self.loop:
                raise TraceExhaustedError(
                    f"{self.name}: trace exhausted after "
                    f"{len(self._ops)} ops"
                )
            self._pos = 0
        op = self._ops[self._pos]
        self._pos += 1
        self._emitted += 1
        return op

    def stream(self) -> Iterator[MicroOp]:
        while True:
            yield self.next_op()

    def __iter__(self) -> Iterator[MicroOp]:
        return self.stream()

    def clone(self) -> "TraceReplayEngine":
        """A same-identity engine at position 0 (shares the op list)."""
        twin = object.__new__(TraceReplayEngine)
        twin.path = self.path
        twin.loop = self.loop
        twin.header = self.header
        twin.name = self.name
        twin._ops = self._ops
        twin._digest = self._digest
        twin._pos = 0
        twin._emitted = 0
        return twin

    def fast_forward(self, count: int) -> None:
        """Advance by ``count`` ops (O(1): pure position arithmetic)."""
        self.seek(self._emitted + count)

    def seek(self, position: int) -> None:
        """Jump to absolute stream position (forward *or* rewind)."""
        if position < 0:
            raise TraceError(f"cannot seek to negative position {position}")
        if not self.loop and position > len(self._ops):
            raise TraceExhaustedError(
                f"{self.name}: seek({position}) past the "
                f"{len(self._ops)}-op trace"
            )
        self._emitted = position
        self._pos = position % len(self._ops) if self.loop else position


class TraceSpec:
    """Engine spec for ``trace:<path>`` workload names."""

    family = "trace"

    def __init__(self, path: str, loop: bool = True):
        self.path = path
        self.loop = loop
        self.name = f"trace:{path}"
        self.description = f"replay of the captured uop trace at {path}"
        self._engine: Optional[TraceReplayEngine] = None

    def _load(self) -> TraceReplayEngine:
        if self._engine is None:
            self._engine = TraceReplayEngine(self.path, loop=self.loop)
        return self._engine

    def build_engine(
        self, seed: int = 0, thread: int = 0, page_bytes: int = 8192
    ) -> TraceReplayEngine:
        """A fresh replay engine.  ``seed``/``thread``/``page_bytes``
        are ignored — a trace is a literal stream; its PCs and
        addresses are whatever the capture recorded."""
        return self._load().clone()

    def signature(self) -> str:
        """Content digest of the trace *file* — two different traces
        sharing a path history can never collide in the cell cache."""
        from repro.scenarios.base import content_digest

        return content_digest("trace", self._load().digest)

    def prior_profile(self):
        """A profile stand-in for analytical pruning: the capture's
        source workload when it still resolves, else the smoke profile
        (pruning is a heuristic accelerator, never correctness)."""
        from repro.workloads.profiles import SMOKE_PROFILES
        from repro.workloads.suites import workload_profiles

        source = str(self._load().header.get("source") or "")
        if source and not source.startswith("trace:"):
            try:
                entry = workload_profiles(source)[0]
            except WorkloadError:
                entry = None
            if entry is not None:
                if hasattr(entry, "prior_profile"):
                    return entry.prior_profile()
                return entry
        return SMOKE_PROFILES["int_test"]
