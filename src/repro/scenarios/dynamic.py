"""Phase-varying workloads: profiles interpolated over time.

A :class:`PhaseSchedule` is a cyclic list of phases, each a concrete
:class:`~repro.workloads.WorkloadProfile` active for a fixed number of
stream ops.  Schedules are built from *intensity patterns* (the
vsf-style table: steady / bursty / diurnal / ramp / mixed): each
pattern is a sequence of ``(phase name, intensity in [0, 1], duration
fraction)`` points, and intensity ``t`` interpolates every numeric
profile knob between the base profile (``t = 0``) and a mechanically
derived *stressed* variant (``t = 1``) — colder memory, flatter branch
biases, shorter loop trips, fewer independent strands.

Workload names select all of this declaratively::

    swim@bursty            default period (8192 ops per pattern cycle)
    int_test@diurnal:2048  explicit period
    go+su2cor@ramp         SMT pair: each thread gets its own schedule

Determinism: each phase owns one persistent
:class:`~repro.workloads.SyntheticTraceGenerator` (seeded by the
phase's interpolated profile name), which *continues* across cycle
repetitions — so the engine's stream is a pure function of
``(schedule, seed, thread, page_bytes)`` and honours the clone +
fast-forward contract of :mod:`repro.scenarios.base`.

Phase boundaries call the engine's ``phase_hook``; the simulator wires
it to emit :class:`~repro.obs.events.PhaseEvent`, which is what lets
loop attribution be sliced per phase.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.isa import MicroOp, OpClass
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    BranchModel,
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
)

#: Default ops per full pattern cycle.
DEFAULT_PERIOD = 8192

#: ``(phase name, intensity, duration fraction)`` per pattern.  The
#: diurnal curve is a sampled sinusoid; bursty alternates calm/burst;
#: ramp climbs monotonically; mixed concatenates a calm plateau, a
#: burst, and a decaying tail.
PATTERNS: Dict[str, List[Tuple[str, float, float]]] = {
    "steady": [("steady", 0.5, 1.0)],
    "bursty": [
        ("calm", 0.10, 0.30),
        ("burst", 0.95, 0.20),
        ("calm", 0.10, 0.30),
        ("burst", 0.95, 0.20),
    ],
    "diurnal": [
        (f"hour{i}", 0.5 + 0.45 * math.sin(2.0 * math.pi * i / 8.0), 0.125)
        for i in range(8)
    ],
    "ramp": [(f"ramp{i}", i / 5.0, 1.0 / 6.0) for i in range(6)],
    "mixed": [
        ("steady", 0.40, 0.35),
        ("burst", 0.95, 0.15),
        ("cooldown", 0.60, 0.20),
        ("calm", 0.15, 0.30),
    ],
}

PATTERN_DESCRIPTIONS: Dict[str, str] = {
    "steady": "constant mid intensity (control for the dynamic engine)",
    "bursty": "calm/burst alternation, 95% intensity 40% of the time",
    "diurnal": "sampled sinusoid over 8 phases (day/night load curve)",
    "ramp": "monotonic climb from idle to full stress in 6 steps",
    "mixed": "plateau, burst, cooldown, calm — one of each regime",
}

_SCENARIO_NAME = re.compile(
    r"^(?P<base>[A-Za-z0-9_+.\-]+)@(?P<pattern>[a-z]+)"
    r"(?::(?P<period>\d+))?$"
)


def _lerp(lo: float, hi: float, t: float) -> float:
    return lo + (hi - lo) * t


def _lerp_int(lo: int, hi: int, t: float, minimum: int = 1) -> int:
    return max(minimum, round(_lerp(float(lo), float(hi), t)))


def stressed_variant(profile: WorkloadProfile) -> WorkloadProfile:
    """The intensity-1.0 endpoint, mechanically derived from ``profile``.

    Stress means every loose loop gets hungrier: branch biases flatten
    toward coin flips and loop bodies shorten (branch resolution loop),
    locality shifts from hot to cold with faster page hopping (load
    resolution loop), and dependence strands collapse while chains
    tighten (less latency-hiding ILP).  All derived values stay inside
    the sub-models' validation envelopes by construction.
    """
    br = profile.branches
    mem = profile.memory
    deps = profile.deps
    stressed_branches = replace(
        br,
        loop_trip=max(2, br.loop_trip // 4),
        loop_site_frac=max(0.0, br.loop_site_frac - 0.25),
        random_bias_lo=0.5 + (br.random_bias_lo - 0.5) * 0.4,
        random_bias_hi=max(
            0.5 + (br.random_bias_lo - 0.5) * 0.4,
            0.5 + (br.random_bias_hi - 0.5) * 0.4,
        ),
        indirect_frac=min(0.5, br.indirect_frac * 1.5 + 0.02),
    )
    hot = mem.hot_frac * 0.55
    warm = min(mem.warm_frac * 1.2, max(0.0, 0.95 - hot))
    cold = min(
        max(0.0, 0.98 - hot - warm), mem.cold_frac * 3.0 + 0.05
    )
    stressed_memory = replace(
        mem,
        hot_frac=hot,
        warm_frac=warm,
        cold_frac=cold,
        stream_frac=1.0 - hot - warm - cold,
        cold_pages=max(mem.cold_pages, 2048),
        page_dwell=max(1, mem.page_dwell // 8),
    )
    stressed_deps = replace(
        deps,
        strands=max(1, deps.strands // 3),
        chain_frac=min(0.95, deps.chain_frac * 1.4 + 0.05),
        far_frac=min(0.5, deps.far_frac * 1.5 + 0.02),
    )
    return replace(
        profile,
        branches=stressed_branches,
        memory=stressed_memory,
        deps=stressed_deps,
    )


def interpolate_profiles(
    lo: WorkloadProfile, hi: WorkloadProfile, t: float, name: str
) -> WorkloadProfile:
    """Interpolate every numeric knob between two profiles.

    Floats lerp; integers lerp and round (respecting each model's
    minima); memory fractions re-close to exactly 1.0 by assigning the
    stream region the remainder, so the result always passes
    ``MemoryModel`` validation.  Mix fractions lerp over the union of
    op classes **in sorted op-class order** — like the fuzz
    reproducers, sampling depends on entry order, so ordering must be
    derived from content, not dict insertion history.
    """
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"interpolation position must be in [0, 1]: {t}")
    lo_mix = {op.value: frac for op, frac in lo.mix.items()}
    hi_mix = {op.value: frac for op, frac in hi.mix.items()}
    mix = InstructionMix(
        {
            OpClass(key): _lerp(lo_mix.get(key, 0.0), hi_mix.get(key, 0.0), t)
            for key in sorted(set(lo_mix) | set(hi_mix))
            if _lerp(lo_mix.get(key, 0.0), hi_mix.get(key, 0.0), t) > 0.0
        }
    )
    lb, hb = lo.branches, hi.branches
    bias_lo = _lerp(lb.random_bias_lo, hb.random_bias_lo, t)
    branches = BranchModel(
        num_sites=_lerp_int(lb.num_sites, hb.num_sites, t),
        loop_site_frac=_lerp(lb.loop_site_frac, hb.loop_site_frac, t),
        loop_trip=_lerp_int(lb.loop_trip, hb.loop_trip, t),
        random_bias_lo=bias_lo,
        random_bias_hi=max(
            bias_lo, _lerp(lb.random_bias_hi, hb.random_bias_hi, t)
        ),
        indirect_frac=_lerp(lb.indirect_frac, hb.indirect_frac, t),
        code_bytes=_lerp_int(lb.code_bytes, hb.code_bytes, t, minimum=1024),
    )
    lm, hm = lo.memory, hi.memory
    hot = _lerp(lm.hot_frac, hm.hot_frac, t)
    warm = _lerp(lm.warm_frac, hm.warm_frac, t)
    cold = _lerp(lm.cold_frac, hm.cold_frac, t)
    memory = MemoryModel(
        hot_frac=hot,
        warm_frac=warm,
        cold_frac=cold,
        stream_frac=1.0 - hot - warm - cold,
        hot_bytes=_lerp_int(lm.hot_bytes, hm.hot_bytes, t),
        warm_bytes=_lerp_int(lm.warm_bytes, hm.warm_bytes, t),
        cold_pages=_lerp_int(lm.cold_pages, hm.cold_pages, t),
        page_dwell=_lerp_int(lm.page_dwell, hm.page_dwell, t),
        stream_stride=_lerp_int(lm.stream_stride, hm.stream_stride, t),
        alias_site_frac=_lerp(lm.alias_site_frac, hm.alias_site_frac, t),
    )
    ld, hd = lo.deps, hi.deps
    far_lo = _lerp_int(ld.far_lo, hd.far_lo, t)
    deps = DependencyModel(
        strands=_lerp_int(ld.strands, hd.strands, t),
        chain_frac=_lerp(ld.chain_frac, hd.chain_frac, t),
        near_mean=max(1.0, _lerp(ld.near_mean, hd.near_mean, t)),
        far_frac=_lerp(ld.far_frac, hd.far_frac, t),
        far_lo=far_lo,
        far_hi=max(far_lo, _lerp_int(ld.far_hi, hd.far_hi, t)),
        two_src_frac=_lerp(ld.two_src_frac, hd.two_src_frac, t),
        global_frac=_lerp(ld.global_frac, hd.global_frac, t),
        num_globals=_lerp_int(ld.num_globals, hd.num_globals, t),
        fanout_burst_frac=_lerp(
            ld.fanout_burst_frac, hd.fanout_burst_frac, t
        ),
        fanout_burst_len=_lerp_int(
            ld.fanout_burst_len, hd.fanout_burst_len, t
        ),
    )
    return WorkloadProfile(
        name=name,
        mix=mix,
        branches=branches,
        memory=memory,
        deps=deps,
        description=f"interpolated at intensity {t:.2f}",
    )


@dataclass(frozen=True)
class Phase:
    """One schedule entry: a concrete profile active for ``duration`` ops."""

    name: str
    intensity: float
    profile: WorkloadProfile
    duration: int


class PhaseSchedule:
    """A cyclic sequence of phases addressed by absolute stream position.

    ``segment_at(position)`` is a pure function, so any two walks over
    the same schedule agree on every boundary — the property the
    hypothesis determinism test pins down.
    """

    def __init__(
        self, name: str, phases: List[Phase],
        base_profile: Optional[WorkloadProfile] = None,
        pattern: str = "",
    ):
        if not phases:
            raise WorkloadError(f"schedule {name!r} has no phases")
        if any(phase.duration < 1 for phase in phases):
            raise WorkloadError(
                f"schedule {name!r} has a phase shorter than one op"
            )
        self.name = name
        self.phases = list(phases)
        self.base_profile = base_profile
        self.pattern = pattern
        self._starts: List[int] = []
        acc = 0
        for phase in self.phases:
            self._starts.append(acc)
            acc += phase.duration
        self.total_ops = acc

    @classmethod
    def from_pattern(
        cls,
        base: WorkloadProfile,
        pattern: str,
        period: int = DEFAULT_PERIOD,
    ) -> "PhaseSchedule":
        """Build a schedule by running ``pattern`` over ``base``.

        Phase profiles interpolate between ``base`` (intensity 0) and
        :func:`stressed_variant` of it (intensity 1); durations are the
        pattern's fractions of ``period`` (at least one op each).
        """
        if pattern not in PATTERNS:
            raise WorkloadError(
                f"unknown intensity pattern {pattern!r}; known: "
                f"{', '.join(sorted(PATTERNS))}"
            )
        if period < len(PATTERNS[pattern]):
            raise WorkloadError(
                f"period {period} is shorter than the {pattern!r} "
                f"pattern's {len(PATTERNS[pattern])} phases"
            )
        hi = stressed_variant(base)
        name = f"{base.name}@{pattern}"
        if period != DEFAULT_PERIOD:
            name += f":{period}"
        phases = [
            Phase(
                name=phase_name,
                intensity=intensity,
                profile=interpolate_profiles(
                    base, hi, intensity,
                    name=f"{name}#{index}-{phase_name}",
                ),
                duration=max(1, round(fraction * period)),
            )
            for index, (phase_name, intensity, fraction) in enumerate(
                PATTERNS[pattern]
            )
        ]
        return cls(name, phases, base_profile=base, pattern=pattern)

    def segment_at(self, position: int) -> Tuple[int, int]:
        """``(phase index, global segment ordinal)`` for stream position.

        The ordinal counts every boundary crossing since position 0 —
        cycle repetitions included — so obs phase events stay strictly
        increasing over a run.
        """
        if position < 0:
            raise ValueError(f"stream position cannot be negative: {position}")
        lap, offset = divmod(position, self.total_ops)
        index = 0
        for i, start in enumerate(self._starts):
            if offset >= start:
                index = i
            else:
                break
        return index, lap * len(self.phases) + index

    def profile_at(self, position: int) -> WorkloadProfile:
        """The interpolated profile active at a stream position."""
        return self.phases[self.segment_at(position)[0]].profile

    def signature(self) -> str:
        """Content digest over every phase's full parameterisation."""
        from repro.scenarios.base import content_digest

        return content_digest(
            "schedule",
            self.name,
            *(
                f"{phase.name}/{phase.duration}/{repr(phase.profile)}"
                for phase in self.phases
            ),
        )


class DynamicWorkloadEngine:
    """Workload engine whose profile follows a :class:`PhaseSchedule`.

    Each phase owns one persistent generator that continues across
    cycle repetitions, so the stream is fully determined by the
    constructor arguments (clone + fast-forward reproduces it).
    ``phase_hook(ordinal, phase_index, phase_name)`` fires on every
    boundary crossing; it is ``None`` until observability wires it.
    """

    def __init__(
        self,
        schedule: PhaseSchedule,
        seed: int = 0,
        thread: int = 0,
        page_bytes: int = 8192,
    ):
        self.schedule = schedule
        self.seed = seed
        self.thread = thread
        self.page_bytes = page_bytes
        self.name = schedule.name
        self._generators = [
            SyntheticTraceGenerator(
                phase.profile, seed=seed, thread=thread,
                page_bytes=page_bytes,
            )
            for phase in schedule.phases
        ]
        self._emitted = 0
        self._ordinal = -1
        self.phase_hook: Optional[Callable[[int, int, str], None]] = None

    @property
    def emitted(self) -> int:
        return self._emitted

    def current_phase(self) -> Tuple[int, int, str]:
        """``(ordinal, phase index, phase name)`` of the *next* op."""
        index, ordinal = self.schedule.segment_at(self._emitted)
        return ordinal, index, self.schedule.phases[index].name

    def announce(self) -> None:
        """Fire ``phase_hook`` with the current phase (attach anchor)."""
        if self.phase_hook is not None:
            ordinal, index, name = self.current_phase()
            self._ordinal = ordinal
            self.phase_hook(ordinal, index, name)

    def next_op(self) -> MicroOp:
        index, ordinal = self.schedule.segment_at(self._emitted)
        if ordinal != self._ordinal:
            self._ordinal = ordinal
            if self.phase_hook is not None:
                self.phase_hook(
                    ordinal, index, self.schedule.phases[index].name
                )
        self._emitted += 1
        return self._generators[index].next_op()

    def stream(self) -> Iterator[MicroOp]:
        while True:
            yield self.next_op()

    def __iter__(self) -> Iterator[MicroOp]:
        return self.stream()

    def clone(self) -> "DynamicWorkloadEngine":
        return DynamicWorkloadEngine(
            self.schedule,
            seed=self.seed,
            thread=self.thread,
            page_bytes=self.page_bytes,
        )

    def fast_forward(self, count: int) -> None:
        for _ in range(count):
            self.next_op()


class DynamicSpec:
    """Engine spec for ``base@pattern[:period]`` workload names."""

    family = "dynamic"

    def __init__(self, schedule: PhaseSchedule):
        self.schedule = schedule
        self.name = schedule.name
        base = schedule.base_profile
        self.description = (
            f"{base.name if base is not None else 'schedule'} under the "
            f"{schedule.pattern or 'custom'} intensity pattern "
            f"({len(schedule.phases)} phases / {schedule.total_ops} ops)"
        )

    def build_engine(
        self, seed: int = 0, thread: int = 0, page_bytes: int = 8192
    ) -> DynamicWorkloadEngine:
        return DynamicWorkloadEngine(
            self.schedule, seed=seed, thread=thread, page_bytes=page_bytes
        )

    def signature(self) -> str:
        return self.schedule.signature()

    def prior_profile(self) -> WorkloadProfile:
        """The base profile (analytical pruning sees the time average
        as roughly the base; exact pruning of dynamic mixes is not a
        correctness concern — pruning is a pre-filter)."""
        if self.schedule.base_profile is not None:
            return self.schedule.base_profile
        return self.schedule.phases[0].profile


def resolve_dynamic(name: str) -> List[DynamicSpec]:
    """Resolve ``base@pattern[:period]`` to one spec per thread.

    ``base`` is any statically resolvable workload (single profile,
    scenario family, or SMT pair — each pair member gets its own
    schedule).  Raises :class:`~repro.errors.WorkloadError` for
    malformed names, unknown bases, and unknown patterns.
    """
    from repro.workloads.suites import workload_profiles

    match = _SCENARIO_NAME.match(name)
    if match is None:
        raise WorkloadError(
            f"malformed dynamic workload {name!r}; expected "
            f"base@pattern or base@pattern:period"
        )
    base_name = match.group("base")
    pattern = match.group("pattern")
    period = int(match.group("period") or DEFAULT_PERIOD)
    entries = workload_profiles(base_name)
    for entry in entries:
        if not isinstance(entry, WorkloadProfile):
            raise WorkloadError(
                f"dynamic workload base {base_name!r} must resolve to "
                f"plain profiles (got {type(entry).__name__})"
            )
    return [
        DynamicSpec(PhaseSchedule.from_pattern(entry, pattern, period))
        for entry in entries
    ]
