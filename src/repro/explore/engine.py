"""The exploration engine: prune -> halve -> frontier -> ledger.

:func:`run_exploration` is the one-call driver behind the ``repro
explore`` CLI subcommand and ``examples/dra_frontier.py``:

1. enumerate (or deterministically sample) the parameter space;
2. pre-filter with the analytical loop model (:mod:`.prune`), skipping
   candidates the first-order arithmetic already dominates;
3. run budget-aware successive halving over the survivors
   (:mod:`.scheduler`), every rung through the fault-tolerant harness;
4. extract the IPC-vs-hardware-cost Pareto frontier from the final
   rung (:mod:`.pareto`);
5. append the exploration record to the versioned ledger (:mod:`.store`)
   and diff it against the previous record of the same space;
6. write the ``BENCH_explore.json`` accounting file recording how many
   detailed-simulation instructions the search saved against the
   exhaustive grid.

The paper-ordering check (:meth:`ExplorationResult.ordering_ok`) states
Figure 8 as a predicate over the final rung: at every register-file
latency in the space, the best surviving DRA design is at least as fast
as the pinned base machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_heading, format_table
from repro.errors import ConfigError
from repro.experiments.runner import HarnessSettings
from repro.explore.pareto import FrontierReport, build_frontier
from repro.explore.prune import AnalyticalPruner, PruneDecision, PruneSettings
from repro.explore.scheduler import HalvingSettings, SearchResult, run_search
from repro.explore.space import Candidate, ParameterSpace
from repro.explore.store import ExplorationStore, FrontierDiff, diff_frontiers

#: Schema of the BENCH_explore.json accounting file.
BENCH_SCHEMA = 1

#: Default workloads for exploration scoring: one integer and one FP
#: code keeps campaigns affordable while exercising both behaviours.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("compress", "swim")


@dataclass
class ExplorationResult:
    """Everything one exploration produced."""

    space: ParameterSpace
    workloads: Tuple[str, ...]
    search: SearchResult
    frontier: FrontierReport
    pruned: List[PruneDecision]
    calibration: Dict[str, Any]
    #: detailed instructions an exhaustive full-fidelity grid would cost.
    exhaustive_instructions: int
    ledger_version: Optional[int] = None
    ledger_diff: Optional[FrontierDiff] = None

    @property
    def spent_instructions(self) -> int:
        return self.search.spent_instructions

    @property
    def savings_fraction(self) -> float:
        """Detailed-simulation instructions saved vs. the full grid."""
        if self.exhaustive_instructions == 0:
            return 0.0
        return 1.0 - self.spent_instructions / self.exhaustive_instructions

    # --- the paper's ordering, as a predicate ------------------------------

    def ordering(self) -> List[Tuple[int, str, float, float]]:
        """Per rf latency: (rf, best non-base label, its ipc, base ipc).

        Only rf groups whose base *and* at least one non-base design
        (DRA, port-reduced, or SSR machine) reached the final rung
        appear.
        """
        rows = []
        scores = self.search.final_scores
        by_rf: Dict[int, Dict[str, float]] = {}
        for label, score in scores.items():
            candidate = self.search.candidate(label)
            rf = candidate.value("rf")
            by_rf.setdefault(rf, {})[label] = score
        for rf in sorted(by_rf):
            group = by_rf[rf]
            base_label = f"base,rf={rf}"
            dra = {
                label: ipc for label, ipc in group.items()
                if label != base_label
            }
            if base_label not in group or not dra:
                continue
            best_label = min(dra, key=lambda l: (-dra[l], l))
            rows.append((rf, best_label, dra[best_label], group[base_label]))
        return rows

    def ordering_ok(self) -> bool:
        """Figure 8's claim, generalised: the best loop-tightening
        design is at least as fast as the base machine at every rf
        latency (for the dra space that is exactly "best DRA >= base").
        """
        rows = self.ordering()
        return bool(rows) and all(dra >= base for _, _, dra, base in rows)

    # --- rendering / accounting -------------------------------------------

    def bench_record(self) -> Dict[str, Any]:
        """The BENCH_explore.json payload."""
        return {
            "schema": BENCH_SCHEMA,
            "space": self.space.name,
            "space_signature": self.space.signature(),
            "workloads": list(self.workloads),
            "candidates": len(self.search.candidates) + len(self.pruned),
            "pruned": len(self.pruned),
            "rungs": [rung.to_json() for rung in self.search.rungs],
            "spent_detailed_instructions": self.spent_instructions,
            "exhaustive_detailed_instructions": self.exhaustive_instructions,
            "savings_fraction": self.savings_fraction,
            "frontier_size": len(self.frontier.frontier),
            "frontier": [p.to_json() for p in self.frontier.frontier],
            "ordering_ok": self.ordering_ok(),
            "calibration": {
                k: v for k, v in self.calibration.items() if k != "records"
            },
        }

    def ledger_record(self) -> Dict[str, Any]:
        """The ledger payload (frontier + full accounting)."""
        return {
            "space": self.space.signature(),
            "space_name": self.space.name,
            "workloads": list(self.workloads),
            "frontier": [p.to_json() for p in self.frontier.frontier],
            "rungs": [rung.to_json() for rung in self.search.rungs],
            "pruned": [d.describe() for d in self.pruned],
            "calibration": self.calibration,
            "bench": {
                "spent_detailed_instructions": self.spent_instructions,
                "exhaustive_detailed_instructions":
                    self.exhaustive_instructions,
                "savings_fraction": self.savings_fraction,
            },
        }

    def render(self) -> str:
        parts = [format_heading(
            f"Design-space exploration: {self.space.name} "
            f"({len(self.search.candidates) + len(self.pruned)} candidates, "
            f"workloads: {', '.join(self.workloads)})"
        )]
        if self.pruned:
            parts.append(
                f"\nanalytically pruned ({len(self.pruned)} candidates, "
                "no simulation spent):"
            )
            parts.extend(f"  {d.describe()}" for d in self.pruned)
        for rung in self.search.rungs:
            scored = sorted(
                (
                    (label, score)
                    for label, score in rung.scores.items()
                    if score is not None
                ),
                key=lambda kv: (-kv[1], kv[0]),
            )
            parts.append(
                f"\nrung {rung.index} ({rung.instructions} instructions, "
                f"{len(rung.scores)} candidates -> "
                f"{len(rung.survivors)} promoted):"
            )
            survivors = set(rung.survivors)
            parts.extend(
                f"  {'->' if label in survivors else '  '} "
                f"{label:32s} ipc {score:.3f}"
                for label, score in scored
            )
        rows = self.ordering()
        if rows:
            parts.append("\npaper ordering (final rung, Figure 8):")
            headers = ["rf", "best design", "ipc", "base ipc", "ok"]
            parts.append(format_table(headers, [
                [rf, label, f"{dra:.3f}", f"{base:.3f}",
                 "yes" if dra >= base else "NO"]
                for rf, label, dra, base in rows
            ]))
        parts.append("\n" + self.frontier.render())
        parts.append(
            f"\ndetailed-simulation spend: {self.spent_instructions} "
            f"instructions vs {self.exhaustive_instructions} exhaustive "
            f"({self.savings_fraction:.1%} saved)"
        )
        if self.calibration.get("count"):
            parts.append(
                "prune-model calibration: "
                f"{self.calibration['count']} points, mean |error| "
                f"{self.calibration['mean_abs_rel_error']:.1%}, max "
                f"{self.calibration['max_abs_rel_error']:.1%}"
            )
        if self.search.truncated:
            parts.append("note: the budget truncated the rung ladder")
        if self.ledger_version is not None:
            parts.append(
                f"ledger: recorded exploration v{self.ledger_version}"
            )
        if self.ledger_diff is not None:
            parts.append(self.ledger_diff.describe())
        failures = self.search.failures
        if failures:
            parts.append(f"\n{len(failures)} cell failure(s):")
            parts.extend(f"  {f.describe()}" for f in failures)
        return "\n".join(parts)


def run_exploration(
    space: ParameterSpace,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    halving: Optional[HalvingSettings] = None,
    harness: Optional[HarnessSettings] = None,
    prune: Union[bool, PruneSettings] = True,
    sample: Optional[int] = None,
    seed: int = 0,
    store_dir: Optional[Union[str, Path]] = None,
    bench_out: Optional[Union[str, Path]] = None,
) -> ExplorationResult:
    """Run one full exploration (see module docstring for the phases)."""
    halving = halving or HalvingSettings()
    candidates: List[Candidate] = (
        space.sample(sample, seed) if sample is not None else space.grid()
    )
    if not candidates:
        raise ConfigError("the space produced no candidates")

    pruner: Optional[AnalyticalPruner] = None
    decisions: List[PruneDecision] = []
    if prune:
        settings = prune if isinstance(prune, PruneSettings) else None
        pruner = AnalyticalPruner(workloads, settings)
        candidates, decisions = pruner.filter(candidates)

    search = run_search(candidates, workloads, halving, harness)

    # calibrate the analytical model against every rung-0 measurement
    # (the widest rung sees the most candidates)
    if pruner is not None and search.rungs:
        first = search.rungs[0]
        for candidate in search.candidates:
            measured = first.scores.get(candidate.label)
            if measured is not None:
                pruner.record(candidate, measured)

    frontier = build_frontier(
        [
            (search.candidate(label), ipc)
            for label, ipc in sorted(search.final_scores.items())
        ],
        stratify_by=space.stratify_by,
    )
    total_candidates = len(search.candidates) + len(decisions)
    exhaustive = (
        total_candidates * halving.final_instructions
        * len(workloads) * len(halving.seeds)
    )
    result = ExplorationResult(
        space=space,
        workloads=tuple(workloads),
        search=search,
        frontier=frontier,
        pruned=decisions,
        calibration=pruner.calibration() if pruner else {"count": 0},
        exhaustive_instructions=exhaustive,
    )

    if store_dir is not None:
        store = ExplorationStore(store_dir)
        previous = store.latest(space.signature())
        # Per-label history *before* this run is appended — the
        # statistical detector's calibration series.
        series = store.frontier_series(space.signature())
        record = result.ledger_record()
        result.ledger_version = store.append(record)
        if previous is not None:
            result.ledger_diff = diff_frontiers(
                previous, record, series=series
            )

    if bench_out is not None:
        path = Path(bench_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result.bench_record(), indent=2, sort_keys=True)
        )
    return result
