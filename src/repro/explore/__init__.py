"""Model-guided design-space exploration.

The paper's thesis is a claim about a *design space* — loop delay, not
pipeline length, decides performance — and the DRA is one point in the
space of register-file latencies, CRC sizes, insertion policies and
recovery schemes.  This subsystem searches that space instead of
enumerating it:

* :mod:`repro.explore.space` — declarative parameter-space specs with
  deterministic seeded sampling and an exhaustive-grid fallback;
* :mod:`repro.explore.prune` — an analytical pre-filter scoring
  candidates with the §1 first-order loop model before any detailed
  simulation, self-calibrating against every rung it runs;
* :mod:`repro.explore.scheduler` — budget-aware successive halving
  (ASHA-style) executed through the fault-tolerant harness;
* :mod:`repro.explore.pareto` — IPC-vs-hardware-cost frontier
  extraction with weak-dominance semantics;
* :mod:`repro.explore.store` — an append-only versioned result ledger
  so successive explorations diff against prior frontiers;
* :mod:`repro.explore.engine` — the one-call driver behind the
  ``repro explore`` CLI subcommand.
"""

from repro.explore.engine import (
    DEFAULT_WORKLOADS,
    ExplorationResult,
    run_exploration,
)
from repro.explore.pareto import (
    FrontierPoint,
    FrontierReport,
    HardwareCost,
    build_frontier,
    dominates,
    hardware_cost,
    pareto_frontier,
)
from repro.explore.prune import (
    AnalyticalPruner,
    Prediction,
    PruneDecision,
    PruneSettings,
    predict_ipc,
)
from repro.explore.scheduler import (
    HalvingSettings,
    RungRecord,
    SearchResult,
    run_search,
)
from repro.explore.space import (
    Axis,
    Candidate,
    ParameterSpace,
    discrete,
    dra_space,
    int_range,
    mechanisms_space,
    named_space,
    smoke_space,
)
from repro.explore.store import (
    ExplorationStore,
    FrontierDiff,
    diff_frontiers,
)

__all__ = [
    "AnalyticalPruner",
    "Axis",
    "Candidate",
    "DEFAULT_WORKLOADS",
    "ExplorationResult",
    "ExplorationStore",
    "FrontierDiff",
    "FrontierPoint",
    "FrontierReport",
    "HalvingSettings",
    "HardwareCost",
    "ParameterSpace",
    "Prediction",
    "PruneDecision",
    "PruneSettings",
    "RungRecord",
    "SearchResult",
    "build_frontier",
    "diff_frontiers",
    "discrete",
    "dominates",
    "dra_space",
    "hardware_cost",
    "int_range",
    "mechanisms_space",
    "named_space",
    "pareto_frontier",
    "predict_ipc",
    "run_exploration",
    "run_search",
    "smoke_space",
]
