"""Budget-aware successive halving over the candidate set.

The scheduler is the exploration engine's heart: instead of simulating
every candidate at full fidelity, it runs *rungs* of increasing
instruction counts and promotes only the strongest fraction of each
selection group to the next rung (ASHA-style successive halving, here
executed rung-synchronously so a fixed seed gives an identical rung
history).  Every rung executes through :func:`repro.experiments.runner.
run_campaign`, so the fault-tolerant harness — subprocess isolation,
watchdog timeouts, classified retries, the persistent result cache and
the differential verifier — composes with the search for free.

Selection is *grouped*: candidates compete only inside their space
group (the DRA space groups by register-file latency), and pinned
baselines are always promoted.  That guarantees the final rung still
contains every comparison the paper's figures need (base vs best DRA at
each rf), while the losers inside each group are cut early at cheap
fidelities.

Accounting: each rung's detailed instructions are charged against an
optional budget; the run stops promoting when the next rung would
overdraw it.  The exhaustive-grid cost (every candidate at final-rung
fidelity) is recorded alongside the actual spend, which is where the
``BENCH_explore.json`` savings number comes from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.experiments.runner import (
    CellFailure,
    ExperimentSettings,
    HarnessSettings,
    RunPoint,
    run_campaign,
)
from repro.explore.space import Candidate


@dataclass(frozen=True)
class HalvingSettings:
    """Geometry of the successive-halving run."""

    #: Number of rungs (the last runs at full fidelity).
    rungs: int = 3
    #: Keep ~1/eta of each selection group per rung.
    eta: int = 3
    #: Detailed instructions of the first (cheapest) rung.
    base_instructions: int = 1_000
    #: Instruction multiplier between consecutive rungs.
    growth: int = 3
    #: Seeds averaged per cell at every rung.
    seeds: Tuple[int, ...] = (0,)
    #: Functional warmup / detailed warmup per run.
    warmup: int = 30_000
    detailed_warmup: int = 500
    #: Total detailed-instruction budget (None = the rung geometry).
    budget: Optional[int] = None
    #: Kernel backend for every rung (a :func:`repro.core.backend.
    #: parse_backend` spec).
    backend: str = "reference"
    #: Optional per-rung backend override, one entry per rung from the
    #: cheapest up; shorter tuples repeat their last entry.  The classic
    #: use: sampled early rungs to triage, an exact final rung to score.
    rung_backends: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.rungs < 1:
            raise ConfigError("need at least one rung")
        if self.eta < 2:
            raise ConfigError("eta must be >= 2 (nothing halves below 2)")
        if self.base_instructions < 1:
            raise ConfigError("base_instructions must be >= 1")
        if self.growth < 2:
            raise ConfigError("growth must be >= 2")
        if not self.seeds:
            raise ConfigError("need at least one seed")
        if self.budget is not None and self.budget < 1:
            raise ConfigError("budget must be positive")
        if self.rung_backends is not None and not self.rung_backends:
            raise ConfigError("rung_backends cannot be empty; use None")

    def rung_instructions(self, rung: int) -> int:
        """Detailed instructions simulated per cell at one rung."""
        return self.base_instructions * self.growth ** rung

    def rung_backend(self, rung: int) -> str:
        """Backend spec used at one rung."""
        if self.rung_backends is None:
            return self.backend
        return self.rung_backends[min(rung, len(self.rung_backends) - 1)]

    @property
    def final_instructions(self) -> int:
        """Full fidelity: the last rung's instruction count."""
        return self.rung_instructions(self.rungs - 1)

    @classmethod
    def quick(cls) -> "HalvingSettings":
        """Tiny geometry for tests and CI smoke runs."""
        return cls(
            rungs=2, base_instructions=500, growth=3,
            warmup=10_000, detailed_warmup=200,
        )


@dataclass
class RungRecord:
    """What one rung measured and whom it promoted."""

    index: int
    instructions: int
    #: candidate label -> seed-averaged IPC (None = all seeds failed).
    scores: Dict[str, Optional[float]]
    survivors: List[str]
    #: per-candidate metric snapshot (stats summary of the last seed).
    metrics: Dict[str, Dict[str, float]]
    failures: List[CellFailure] = field(default_factory=list)
    #: detailed instructions charged to the budget by this rung.
    instructions_spent: int = 0
    #: kernel backend spec this rung ran under.
    backend: str = "reference"

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "instructions": self.instructions,
            "scores": self.scores,
            "survivors": self.survivors,
            "instructions_spent": self.instructions_spent,
            "failures": [f.describe() for f in self.failures],
        }


@dataclass
class SearchResult:
    """The full rung history plus the final fidelity scores."""

    candidates: List[Candidate]
    rungs: List[RungRecord]
    #: final-rung points by candidate label.
    final_points: Dict[str, RunPoint]
    settings: HalvingSettings
    workloads: Tuple[str, ...]
    #: detailed instructions actually simulated (cells x instructions).
    spent_instructions: int = 0
    #: True when the budget stopped the run before the last rung.
    truncated: bool = False

    @property
    def final_scores(self) -> Dict[str, float]:
        """Workload-mean IPC of every candidate in the final rung."""
        if not self.rungs:
            return {}
        last = self.rungs[-1].scores
        return {
            label: last[label]
            for label in self.final_points
            if last.get(label) is not None
        }

    def candidate(self, label: str) -> Candidate:
        for c in self.candidates:
            if c.label == label:
                return c
        raise KeyError(label)

    @property
    def failures(self) -> List[CellFailure]:
        return [f for rung in self.rungs for f in rung.failures]


def _select(
    alive: Sequence[Candidate],
    scores: Dict[str, Optional[float]],
    eta: int,
) -> List[Candidate]:
    """Grouped promotion: top ceil(n/eta) per group, pins always.

    Candidates whose every seed failed score None and are only carried
    forward when pinned (the harness already retried them).  Ties break
    deterministically by label.
    """
    groups: Dict[str, List[Candidate]] = {}
    for candidate in alive:
        groups.setdefault(candidate.group, []).append(candidate)
    survivors: List[Candidate] = []
    for members in groups.values():
        contenders = [
            c for c in members
            if not c.pinned and scores.get(c.label) is not None
        ]
        keep = max(1, math.ceil(len(contenders) / eta)) if contenders else 0
        ranked = sorted(
            contenders, key=lambda c: (-scores[c.label], c.label)
        )
        survivors.extend(c for c in members if c.pinned)
        survivors.extend(ranked[:keep])
    order = {c.label: i for i, c in enumerate(alive)}
    return sorted(survivors, key=lambda c: order[c.label])


def run_search(
    candidates: Sequence[Candidate],
    workloads: Sequence[str],
    settings: Optional[HalvingSettings] = None,
    harness: Optional[HarnessSettings] = None,
) -> SearchResult:
    """Run the successive-halving search over prepared candidates.

    Deterministic: the same candidates, workloads and settings produce
    an identical rung history (the simulator is seeded, selection
    tie-breaks are lexicographic, and rungs execute synchronously).
    """
    settings = settings or HalvingSettings()
    if not candidates:
        raise ConfigError("no candidates to search")
    if not workloads:
        raise ConfigError("need at least one workload")
    labels = [c.label for c in candidates]
    if len(set(labels)) != len(labels):
        raise ConfigError("candidate labels must be unique")

    result = SearchResult(
        candidates=list(candidates),
        rungs=[],
        final_points={},
        settings=settings,
        workloads=tuple(workloads),
    )
    alive = list(candidates)
    cells_per_candidate = len(workloads) * len(settings.seeds)
    last_points: Dict[str, RunPoint] = {}
    for rung_index in range(settings.rungs):
        instructions = settings.rung_instructions(rung_index)
        rung_cost = instructions * len(alive) * cells_per_candidate
        if (
            settings.budget is not None
            and result.spent_instructions + rung_cost > settings.budget
            and rung_index > 0
        ):
            # the budget cannot fund this rung: the previous rung's
            # survivors are the best answer the budget buys
            result.truncated = True
            break
        experiment = ExperimentSettings(
            instructions=instructions,
            warmup=settings.warmup,
            detailed_warmup=settings.detailed_warmup,
            seeds=settings.seeds,
            backend=settings.rung_backend(rung_index),
        )
        pairs = [
            (workload, candidate.config)
            for candidate in alive
            for workload in workloads
        ]
        campaign = run_campaign(pairs, experiment, harness)
        scores: Dict[str, Optional[float]] = {}
        metrics: Dict[str, Dict[str, float]] = {}
        points: Dict[str, RunPoint] = {}
        for candidate in alive:
            cell_points = [
                campaign.point(workload, candidate.config)
                for workload in workloads
            ]
            if any(p is None for p in cell_points):
                scores[candidate.label] = None
                continue
            ipc = sum(p.ipc for p in cell_points) / len(cell_points)
            scores[candidate.label] = ipc
            metrics[candidate.label] = cell_points[-1].last.stats.summary()
            points[candidate.label] = cell_points[-1]
        survivors = (
            _select(alive, scores, settings.eta)
            if rung_index < settings.rungs - 1
            else [c for c in alive if scores.get(c.label) is not None]
        )
        spent = instructions * len(alive) * cells_per_candidate
        result.spent_instructions += spent
        result.rungs.append(
            RungRecord(
                index=rung_index,
                instructions=instructions,
                scores=scores,
                survivors=[c.label for c in survivors],
                metrics=metrics,
                failures=list(campaign.failures),
                instructions_spent=spent,
                backend=experiment.backend,
            )
        )
        alive = survivors
        last_points = points
    # the final scores are the survivors of the last *completed* rung —
    # the full-fidelity rung normally, the deepest funded one when the
    # budget truncated the ladder
    result.final_points = {
        candidate.label: last_points[candidate.label]
        for candidate in alive
        if candidate.label in last_points
    }
    return result
