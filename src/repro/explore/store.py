"""Append-only versioned exploration ledger (Perun-style result store).

Explorations are expensive and their frontiers are *claims about the
design space*; both deserve versioned persistence.  The store is a
single JSON-lines file — one exploration record per line, never
rewritten — so successive explorations of the same space can be diffed:
which designs joined the frontier, which fell off, and which regressed
in IPC beyond tolerance.  Keeping the ledger append-only makes every
historical frontier reproducible evidence rather than a mutable cache.

Records are schema-versioned; unknown schemas are surfaced, not
silently skipped, because a regression check against a record you
cannot read is not a check at all.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.perfhist.detectors import Detector, Observation, get_detector

#: Bump when the ledger record layout changes incompatibly.
LEDGER_SCHEMA = 1

#: Detector spec for frontier IPC points: statistical (self-calibrating
#: to the series' own noise) once enough explorations exist, an explicit
#: 2% relative band before that — the old fixed DEFAULT_TOLERANCE, now
#: just the short-series fallback of the repro.perfhist detector layer.
DEFAULT_DETECTOR = "best_model:0.02"


@dataclass
class FrontierDiff:
    """How one exploration's frontier moved against a previous one."""

    #: Labels on the new frontier that the old one lacked.
    added: List[str] = field(default_factory=list)
    #: Labels the old frontier had and the new one dropped.
    dropped: List[str] = field(default_factory=list)
    #: label -> (old ipc, new ipc) for points whose IPC fell beyond
    #: the detector's band.
    regressions: Dict[str, Any] = field(default_factory=dict)
    #: label -> (old ipc, new ipc) for points whose IPC *rose* beyond
    #: the band — progress is evidence too, and an "improvement" that
    #: was not intended is often a bug with a flattering sign.
    improvements: Dict[str, Any] = field(default_factory=dict)
    #: label -> the detector's one-line audit trail for flagged points.
    verdicts: Dict[str, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = []
        if self.added:
            lines.append(f"frontier additions: {', '.join(self.added)}")
        if self.dropped:
            lines.append(f"frontier drops: {', '.join(self.dropped)}")
        for label, (old, new) in sorted(self.regressions.items()):
            lines.append(
                f"REGRESSION {label}: ipc {old:.3f} -> {new:.3f} "
                f"({(new - old) / old:+.1%})"
            )
        for label, (old, new) in sorted(self.improvements.items()):
            lines.append(
                f"IMPROVEMENT {label}: ipc {old:.3f} -> {new:.3f} "
                f"({(new - old) / old:+.1%})"
            )
        if not lines:
            lines.append("frontier unchanged")
        return "\n".join(lines)


def diff_frontiers(
    old: Dict[str, Any],
    new: Dict[str, Any],
    detector: Union[str, Detector, None] = None,
    series: Optional[Dict[str, List[float]]] = None,
) -> FrontierDiff:
    """Diff two ledger records' frontiers through a degradation detector.

    ``detector`` is a :mod:`repro.perfhist.detectors` spec or instance
    (default :data:`DEFAULT_DETECTOR`); ``series`` optionally maps each
    label to its historical IPC values up to and including ``old``
    (oldest first, see :meth:`ExplorationStore.frontier_series`) so
    statistical detectors can calibrate their band from the label's own
    noise instead of a fixed tolerance.  Moves beyond the band are
    recorded in both directions: drops as regressions, rises as
    improvements.
    """
    if detector is None or isinstance(detector, str):
        detector = get_detector(detector or DEFAULT_DETECTOR)
    old_points = {p["label"]: p for p in old.get("frontier", [])}
    new_points = {p["label"]: p for p in new.get("frontier", [])}
    diff = FrontierDiff(
        added=sorted(set(new_points) - set(old_points)),
        dropped=sorted(set(old_points) - set(new_points)),
    )
    for label in sorted(set(old_points) & set(new_points)):
        old_ipc = old_points[label]["ipc"]
        new_ipc = new_points[label]["ipc"]
        verdict = detector.judge(
            Observation(old_ipc),
            Observation(new_ipc),
            series=(series or {}).get(label, ()),
        )
        if verdict.degraded:
            diff.regressions[label] = (old_ipc, new_ipc)
        elif verdict.improved:
            diff.improvements[label] = (old_ipc, new_ipc)
        if verdict.changed:
            diff.verdicts[label] = verdict.describe()
    return diff


class ExplorationStore:
    """A JSON-lines ledger of exploration records rooted at a directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.path = self.root / "ledger.jsonl"

    def append(self, record: Dict[str, Any]) -> int:
        """Append one exploration record; returns its version number.

        The record is stamped with the schema, a monotonically growing
        version (its line number) and a wall-clock timestamp.  Existing
        lines are never touched.
        """
        version = len(self.history())
        stamped = dict(record)
        stamped["schema"] = LEDGER_SCHEMA
        stamped["version"] = version
        stamped["timestamp"] = time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(stamped, sort_keys=True) + "\n")
        return version

    def history(self) -> List[Dict[str, Any]]:
        """Every readable record, oldest first."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConfigError(
                        f"{self.path}:{line_number + 1}: corrupt ledger "
                        f"line ({error})"
                    ) from error
                if record.get("schema") != LEDGER_SCHEMA:
                    raise ConfigError(
                        f"{self.path}:{line_number + 1}: unsupported "
                        f"ledger schema {record.get('schema')!r} "
                        f"(expected {LEDGER_SCHEMA})"
                    )
                records.append(record)
        return records

    def latest(
        self, space_signature: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The newest record, optionally restricted to one space."""
        for record in reversed(self.history()):
            if (
                space_signature is None
                or record.get("space") == space_signature
            ):
                return record
        return None

    def frontier_series(
        self, space_signature: str
    ) -> Dict[str, List[float]]:
        """label -> historical frontier IPCs for one space, oldest first.

        The calibration input for statistical frontier diffing: each
        label's own trajectory across every recorded exploration of the
        space (labels absent from a record contribute nothing for it).
        """
        series: Dict[str, List[float]] = {}
        for record in self.history():
            if record.get("space") != space_signature:
                continue
            for point in record.get("frontier", []):
                series.setdefault(point["label"], []).append(point["ipc"])
        return series

    def __len__(self) -> int:
        return len(self.history())
