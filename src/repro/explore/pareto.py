"""Multi-objective frontier extraction: IPC vs. modelled hardware cost.

The paper's argument is never "the DRA is faster" alone — it is faster
*at a lower register-file port count and a shorter issue pipe, paid for
with small per-cluster caches*.  That is a multi-objective statement,
so the explorer reports a Pareto frontier rather than a single winner.

Objectives:

* **IPC** — maximised (measured, seed-averaged).
* **CRC storage** — minimised: total register-cache entries across
  clusters (0 for the base machine).
* **RF read ports** — minimised: the issue path's register-file port
  demand.  The base machine needs its full ``rf_read_ports``; the DRA's
  issue path reads forwarding buffer + CRC instead, leaving only the
  rename-time pre-read bandwidth (§5.2).
* **Pipeline length** — minimised: decode-to-execute cycles, the
  latency the paper's Figures 4-5 tax.

Dominance is the standard weak-dominance test: ``a`` dominates ``b``
when it is no worse on every objective and strictly better on at least
one.  Points with *identical* objective vectors tie and are all kept —
the frontier is a set of designs, not a ranking.

Spaces can declare a **stratification axis**
(:attr:`~repro.explore.space.ParameterSpace.stratify_by`): dominance is
then judged only between candidates sharing that axis value.  The
mechanisms space stratifies by rf read latency — the latency is imposed
by wire delay, so a short-pipe rf-3 machine must not shadow the designs
competing under rf 5 or rf 7.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_heading, format_table
from repro.core.config import CoreConfig
from repro.explore.space import Candidate


@dataclass(frozen=True)
class HardwareCost:
    """The modelled cost axes of one configuration (all minimised)."""

    crc_entries_total: int
    rf_read_ports: int
    pipeline_length: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.crc_entries_total, self.rf_read_ports,
                self.pipeline_length)

    def dominates_cost(self, other: "HardwareCost") -> bool:
        """Component-wise <= (weak cost dominance)."""
        return all(a <= b for a, b in zip(self.as_tuple(), other.as_tuple()))


def hardware_cost(config: CoreConfig) -> HardwareCost:
    """First-order hardware cost of one machine configuration."""
    if config.dra is not None:
        clusters = 1 if config.dra.centralized else config.num_clusters
        crc_total = config.dra.crc_entries * clusters
        # the DRA issue path reads FB/CRC; the RF only serves the
        # rename-time pre-read (one port per rename slot, §5.2)
        ports = config.rename_width
    else:
        crc_total = 0
        ports = config.rf_read_ports
    return HardwareCost(
        crc_entries_total=crc_total,
        rf_read_ports=ports,
        pipeline_length=config.decode_to_execute,
    )


@dataclass(frozen=True)
class FrontierPoint:
    """One evaluated candidate: measured IPC plus modelled cost."""

    candidate: Candidate
    ipc: float
    cost: HardwareCost

    @property
    def label(self) -> str:
        return self.candidate.label

    def objectives(self) -> Tuple[float, int, int, int]:
        """(ipc, *cost) — the full objective vector."""
        return (self.ipc,) + self.cost.as_tuple()

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "assignment": dict(self.candidate.assignment),
            "config": self.candidate.config.label,
            "ipc": self.ipc,
            "cost": {
                "crc_entries_total": self.cost.crc_entries_total,
                "rf_read_ports": self.cost.rf_read_ports,
                "pipeline_length": self.cost.pipeline_length,
            },
        }


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """Whether ``a`` weakly dominates ``b`` with a strict improvement."""
    if a.ipc < b.ipc or not a.cost.dominates_cost(b.cost):
        return False
    return a.objectives() != b.objectives()


def pareto_frontier(
    points: Sequence[FrontierPoint],
    stratify: Optional[Callable[[FrontierPoint], Any]] = None,
) -> List[FrontierPoint]:
    """The non-dominated subset, in deterministic label order.

    Exact objective-vector ties all survive; a single-axis space
    degenerates to the usual argmax/argmin.  With ``stratify``,
    dominance is judged only between points with equal stratum keys.
    """
    if stratify is None:
        groups: List[Sequence[FrontierPoint]] = [points]
    else:
        by_key: Dict[Any, List[FrontierPoint]] = {}
        for p in points:
            by_key.setdefault(stratify(p), []).append(p)
        groups = list(by_key.values())
    frontier = [
        p for group in groups for p in group
        if not any(dominates(q, p) for q in group if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.label)


@dataclass
class FrontierReport:
    """A rendered/serialisable frontier with its dominated backdrop."""

    frontier: List[FrontierPoint]
    dominated: List[FrontierPoint]

    def point(self, label: str) -> Optional[FrontierPoint]:
        """Look up a frontier point by candidate label."""
        for p in self.frontier:
            if p.label == label:
                return p
        return None

    def render(self) -> str:
        headers = [
            "candidate", "ipc", "crc entries", "rf ports", "pipe len",
            "frontier",
        ]
        rows = []
        ranked = sorted(
            self.frontier + self.dominated,
            key=lambda p: (-p.ipc, p.label),
        )
        on_frontier = {id(p) for p in self.frontier}
        for p in ranked:
            rows.append([
                p.label,
                f"{p.ipc:.3f}",
                p.cost.crc_entries_total,
                p.cost.rf_read_ports,
                p.cost.pipeline_length,
                "*" if id(p) in on_frontier else "",
            ])
        return (
            format_heading("Pareto frontier: IPC vs modelled hardware cost")
            + "\n" + format_table(headers, rows)
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "frontier": [p.to_json() for p in self.frontier],
            "dominated": [p.to_json() for p in self.dominated],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def build_frontier(
    scored: Sequence[Tuple[Candidate, float]],
    stratify_by: Optional[str] = None,
) -> FrontierReport:
    """Frontier extraction over (candidate, measured ipc) pairs.

    ``stratify_by`` names a candidate axis whose value partitions the
    dominance comparison (see :func:`pareto_frontier`).
    """
    points = [
        FrontierPoint(
            candidate=candidate,
            ipc=ipc,
            cost=hardware_cost(candidate.config),
        )
        for candidate, ipc in scored
    ]
    stratify = None
    if stratify_by is not None:
        stratify = lambda p: p.candidate.value(stratify_by)  # noqa: E731
    frontier = pareto_frontier(points, stratify=stratify)
    keep = {id(p) for p in frontier}
    dominated = [p for p in points if id(p) not in keep]
    return FrontierReport(frontier=frontier, dominated=dominated)
