"""Declarative parameter spaces over :class:`~repro.core.CoreConfig`.

A :class:`ParameterSpace` is a set of named axes (discrete value lists
or integer ranges) plus a builder that turns one assignment — a value
per axis — into a concrete machine configuration.  The space can be
enumerated exhaustively (:meth:`ParameterSpace.grid`) or sampled
deterministically under a seed (:meth:`ParameterSpace.sample`); both
orders are stable, which is what makes exploration runs reproducible
and diffable across ledger versions.

*Baseline* candidates — reference machines the search must never drop,
such as the paper's base pipeline at each register-file latency — are
attached to the space as *pinned* candidates: they ride through every
scheduler rung and pre-filter untouched, so every exploration ends with
the comparisons the paper's figures are built on.

:func:`dra_space` builds the space this repository exists to search:
register-file read latency x CRC size x insertion-table policy, with
the matching base machines pinned (the §6 design space, generalised
from the hand-written per-figure scripts).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CoreConfig, DRAConfig, LoadRecovery, PortConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class Axis:
    """One named dimension of the space with a finite value list."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("axis needs a name")
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise ConfigError(f"axis {self.name!r} has duplicate values")


def discrete(name: str, values: Sequence[Any]) -> Axis:
    """A discrete axis over an explicit value list."""
    return Axis(name=name, values=tuple(values))


def int_range(name: str, lo: int, hi: int, step: int = 1) -> Axis:
    """An inclusive integer range axis (``lo``, ``lo+step``, ... <= hi)."""
    if step < 1:
        raise ConfigError(f"axis {name!r}: step must be >= 1")
    if hi < lo:
        raise ConfigError(f"axis {name!r}: empty range [{lo}, {hi}]")
    return Axis(name=name, values=tuple(range(lo, hi + 1, step)))


@dataclass(frozen=True)
class Candidate:
    """One point of the space: an assignment and its built machine."""

    #: (axis name, value) pairs in the space's axis order.
    assignment: Tuple[Tuple[str, Any], ...]
    config: CoreConfig
    #: Unique human-readable identity, stable across runs (ledger key).
    label: str
    #: Scheduler selection group; candidates compete for rung promotion
    #: only within their group ('' = one global group).
    group: str = ""
    #: Pinned candidates are never pruned or halved away.
    pinned: bool = False

    def value(self, axis: str) -> Any:
        """The assignment's value for one axis."""
        for name, value in self.assignment:
            if name == axis:
                return value
        raise KeyError(axis)

    @property
    def values(self) -> Dict[str, Any]:
        """The assignment as a dict."""
        return dict(self.assignment)


class ParameterSpace:
    """Axes + builder = an enumerable/sampleable configuration space."""

    def __init__(
        self,
        axes: Sequence[Axis],
        build: Callable[[Dict[str, Any]], CoreConfig],
        *,
        name: str = "space",
        group_of: Optional[Callable[[Dict[str, Any]], str]] = None,
        baselines: Sequence[Candidate] = (),
        stratify_by: Optional[str] = None,
    ) -> None:
        if not axes:
            raise ConfigError("a parameter space needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate axis names: {names}")
        if stratify_by is not None and stratify_by not in names:
            raise ConfigError(
                f"stratify_by axis {stratify_by!r} is not one of {names}"
            )
        self.axes: Tuple[Axis, ...] = tuple(axes)
        self.build = build
        self.name = name
        self.group_of = group_of
        self.baselines: Tuple[Candidate, ...] = tuple(baselines)
        #: When set, Pareto dominance is judged only between candidates
        #: sharing this axis value — for axes that model an *imposed*
        #: environment (e.g. wire-delay-driven rf latency) rather than a
        #: design choice, so a short-pipe machine cannot shadow the
        #: designs competing at a longer latency.
        self.stratify_by = stratify_by

    @property
    def size(self) -> int:
        """Number of grid points (baselines not included)."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def signature(self) -> str:
        """A stable content hash of the space definition (ledger key)."""
        text = "|".join(
            [self.name]
            + [f"{axis.name}={list(axis.values)!r}" for axis in self.axes]
            + [candidate.label for candidate in self.baselines]
            # appended only when set so pre-existing spaces keep their
            # ledger signatures
            + ([f"stratify={self.stratify_by}"] if self.stratify_by else [])
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def _decode(self, index: int) -> Dict[str, Any]:
        """Mixed-radix decode of a grid index into an assignment."""
        values: Dict[str, Any] = {}
        for axis in reversed(self.axes):
            index, digit = divmod(index, len(axis.values))
            values[axis.name] = axis.values[digit]
        return {axis.name: values[axis.name] for axis in self.axes}

    def candidate(self, values: Dict[str, Any]) -> Candidate:
        """Build the candidate for one complete assignment."""
        missing = [a.name for a in self.axes if a.name not in values]
        if missing:
            raise ConfigError(f"assignment missing axes: {missing}")
        assignment = tuple((a.name, values[a.name]) for a in self.axes)
        label = ",".join(f"{name}={value}" for name, value in assignment)
        return Candidate(
            assignment=assignment,
            config=self.build(dict(assignment)),
            label=label,
            group=self.group_of(dict(assignment)) if self.group_of else "",
        )

    def grid(self) -> List[Candidate]:
        """Every point, in deterministic nested-axis order, + baselines."""
        points = [self._decode(i) for i in range(self.size)]
        return [self.candidate(v) for v in points] + list(self.baselines)

    def sample(self, count: int, seed: int = 0) -> List[Candidate]:
        """``count`` seeded distinct grid points (+ all baselines).

        Falls back to the exhaustive grid whenever ``count`` covers the
        space.  Sampling is without replacement and deterministic: the
        same (space, count, seed) always yields the same candidates in
        the same order.
        """
        if count <= 0:
            raise ConfigError("sample count must be positive")
        if count >= self.size:
            return self.grid()
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(self.size), count))
        sampled = [self.candidate(self._decode(i)) for i in indices]
        return sampled + list(self.baselines)


# ---------------------------------------------------------------------------
# The spaces this repository ships with
# ---------------------------------------------------------------------------

#: The §6 register-file latencies.
DRA_RF_LATENCIES: Tuple[int, ...] = (3, 5, 7)
#: CRC sizes around the paper's 16-entry design point (§5.1).
DRA_CRC_SIZES: Tuple[int, ...] = (8, 16, 32)
#: Insertion-table policies: the paper's filtered copy-back and the
#: unfiltered broadcast strawman.
DRA_INSERTION_POLICIES: Tuple[str, ...] = ("always", "filtered")


def _base_candidate(rf: int) -> Candidate:
    """A pinned base-machine reference point at one rf latency."""
    return Candidate(
        assignment=(("rf", rf), ("crc", 0), ("insertion", "base")),
        config=CoreConfig.base(rf),
        label=f"base,rf={rf}",
        group=f"rf{rf}",
        pinned=True,
    )


def dra_space(
    rf_latencies: Sequence[int] = DRA_RF_LATENCIES,
    crc_sizes: Sequence[int] = DRA_CRC_SIZES,
    insertion_policies: Sequence[str] = DRA_INSERTION_POLICIES,
) -> ParameterSpace:
    """The DRA design space with the base machines pinned.

    Axes: register-file read latency (drives both machines' pipeline
    geometry), CRC entries per cluster, and the insertion-table policy.
    Grouping is per rf latency, so successive halving always carries at
    least one DRA design *and* the pinned base machine at every rf to
    the final rung — the comparison Figure 8 makes.
    """

    def build(values: Dict[str, Any]) -> CoreConfig:
        return CoreConfig.with_dra(
            values["rf"],
            dra=DRAConfig(
                crc_entries=values["crc"],
                insertion_policy=values["insertion"],
            ),
        )

    return ParameterSpace(
        axes=[
            discrete("rf", rf_latencies),
            discrete("crc", crc_sizes),
            discrete("insertion", insertion_policies),
        ],
        build=build,
        name="dra",
        group_of=lambda values: f"rf{values['rf']}",
        baselines=[_base_candidate(rf) for rf in rf_latencies],
    )


#: Mechanism codes for the competing-mechanisms space.  Each code names
#: one attack on the load-resolution loop: ``dra:N`` an N-entry-CRC DRA
#: machine, ``ports:P[:share|:banked]`` a base machine reduced to P
#: read ports under the named arbitration, ``ssr:T`` a base machine
#: under selective-stall recovery with threshold T.
MECHANISMS: Tuple[str, ...] = (
    "dra:16",
    "dra:8",
    "ports:8",
    "ports:8:share",
    "ports:8:banked",
    "ssr:2",
    "ssr:6",
)

_PORT_ARBITRATION_CODES = {
    "": "oldest_first",
    "share": "operand_share",
    "banked": "banked",
}


def _build_mechanism(rf: int, code: str) -> CoreConfig:
    """A concrete machine for one (rf latency, mechanism code) point."""
    kind, _, rest = code.partition(":")
    if kind == "base":
        return CoreConfig.base(rf)
    if kind == "dra":
        return CoreConfig.with_dra(
            rf, dra=DRAConfig(crc_entries=int(rest))
        )
    if kind == "ports":
        count, _, scheme = rest.partition(":")
        try:
            arbitration = _PORT_ARBITRATION_CODES[scheme]
        except KeyError:
            raise ConfigError(
                f"unknown port scheme {scheme!r} in mechanism {code!r}"
            ) from None
        return CoreConfig.base(
            rf,
            rf_read_ports=int(count),
            ports=PortConfig(arbitration=arbitration),
        )
    if kind == "ssr":
        return CoreConfig.base(
            rf,
            load_recovery=LoadRecovery.SSR,
            ssr_threshold=int(rest),
        )
    raise ConfigError(f"unknown mechanism code {code!r}")


def _mechanism_base_candidate(rf: int) -> Candidate:
    """The pinned full-port, REISSUE base machine at one rf latency."""
    return Candidate(
        assignment=(("rf", rf), ("mechanism", "base")),
        config=CoreConfig.base(rf),
        label=f"base,rf={rf}",
        group=f"rf{rf}:base",
        pinned=True,
    )


def mechanisms_space(
    rf_latencies: Sequence[int] = DRA_RF_LATENCIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ParameterSpace:
    """The competing-mechanisms space: DRA vs port reduction vs SSR.

    Axes: register-file read latency x mechanism code.  Every mechanism
    attacks the same load-resolution loop with a different hardware
    currency — CRC entries (DRA), register-file read ports (Los-style
    reduction/sharing/banking), or nothing but held issue slots (SSR) —
    so the Pareto frontier over
    :class:`~repro.explore.pareto.HardwareCost` compares *mechanisms*,
    not just knob settings of one.  Grouping is per (rf, mechanism
    family), so successive halving carries each family's best design at
    every rf to the final rung alongside the pinned base machines.
    """

    def build(values: Dict[str, Any]) -> CoreConfig:
        return _build_mechanism(values["rf"], values["mechanism"])

    def group_of(values: Dict[str, Any]) -> str:
        family = values["mechanism"].split(":", 1)[0]
        return f"rf{values['rf']}:{family}"

    return ParameterSpace(
        axes=[
            discrete("rf", rf_latencies),
            discrete("mechanism", mechanisms),
        ],
        build=build,
        name="mechanisms",
        group_of=group_of,
        baselines=[_mechanism_base_candidate(rf) for rf in rf_latencies],
        # rf latency is wire delay the designer suffers, not a knob:
        # judge dominance only between machines facing the same latency
        stratify_by="rf",
    )


def smoke_space() -> ParameterSpace:
    """A tiny 2-axis space for CI smoke runs (4 points + 1 baseline)."""
    space = dra_space(
        rf_latencies=(3,),
        crc_sizes=(4, 16),
        insertion_policies=("always", "filtered"),
    )
    space.name = "smoke"
    return space


#: Named spaces the CLI can resolve.
NAMED_SPACES: Dict[str, Callable[[], ParameterSpace]] = {
    "dra": dra_space,
    "mechanisms": mechanisms_space,
    "smoke": smoke_space,
}


def named_space(name: str) -> ParameterSpace:
    """Resolve a space by CLI name."""
    try:
        factory = NAMED_SPACES[name]
    except KeyError:
        raise ConfigError(
            f"unknown space {name!r}; known: {', '.join(sorted(NAMED_SPACES))}"
        ) from None
    return factory()
