"""Analytical pre-filter: first-order loop-model scoring before any sim.

Detailed simulation is the expensive resource the explorer budgets, so
candidates that the paper's own §1 arithmetic already condemns should
never reach a rung.  This module prices every candidate with the
first-order loop model (:mod:`repro.loops.model` supplies the per-loop
minimum mis-speculation impacts for the candidate's geometry; the
workload profiles supply prior event rates) and skips points that are
dominated *within the model's trusted resolution*: another candidate
costs no more on any hardware axis and is predicted faster by more than
the configured margin.

The margin is the model's honesty clause.  A first-order model ignores
recovery overlap and queueing, so its predictions carry error; a point
is only "provably" dominated when the predicted gap exceeds the error
the model is trusted to make.  Every rung then feeds measured IPCs back
through :meth:`AnalyticalPruner.record`, so each exploration calibrates
the model for free — the ledger carries the predicted-vs-measured error
distribution, and a margin that the calibration contradicts is visible
immediately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CoreConfig
from repro.errors import ConfigError
from repro.explore.pareto import hardware_cost
from repro.explore.space import Candidate
from repro.isa import OpClass
from repro.loops.model import loops_for_config
from repro.workloads import workload_profiles
from repro.workloads.profiles import WorkloadProfile

#: Issue-limited CPI floor before loop losses: a constant plus a
#: serialisation term for dependency-chained codes (apsi's "long,
#: narrow chains" run far below the machine width).
_CPI_FLOOR_BASE = 0.35
_CPI_FLOOR_CHAIN = 0.8
#: Queueing/refill amplifier on the branch loop: the §1 impact is a
#: minimum; refetch refill and IQ re-ramp add roughly half again.
_BRANCH_QUEUEING = 1.5
#: Prior operand-miss pressure: miss probability per operand read is
#: ``pressure / crc_entries`` (the paper's ~1 % at 16 entries).
_OPERAND_PRESSURE = 0.15
#: Pollution multiplier for the unfiltered insertion strawman.
_ALWAYS_POLLUTION = 3.0


@dataclass(frozen=True)
class PruneSettings:
    """How aggressively the analytical pre-filter may act."""

    #: Relative predicted-IPC gap below which the model is not trusted
    #: to separate two candidates (first-order models are ~10 % tools).
    margin: float = 0.12

    def __post_init__(self) -> None:
        if self.margin < 0:
            raise ConfigError("prune margin cannot be negative")


@dataclass(frozen=True)
class Prediction:
    """The model's score for one candidate."""

    candidate: Candidate
    predicted_ipc: float
    #: Per-loop predicted CPI contributions (diagnostic).
    components: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class PruneDecision:
    """Why one candidate was skipped without simulation."""

    candidate: Candidate
    dominated_by: str
    predicted_ipc: float
    dominator_predicted_ipc: float

    def describe(self) -> str:
        return (
            f"{self.candidate.label}: predicted {self.predicted_ipc:.3f} "
            f"ipc, dominated by {self.dominated_by} "
            f"({self.dominator_predicted_ipc:.3f} predicted, cost <=)"
        )


@dataclass
class CalibrationRecord:
    """One predicted-vs-measured pair (free model calibration)."""

    label: str
    predicted_ipc: float
    measured_ipc: float

    @property
    def rel_error(self) -> float:
        if self.measured_ipc == 0:
            return 0.0
        return (self.predicted_ipc - self.measured_ipc) / self.measured_ipc


def _profile_components(
    profile: WorkloadProfile,
    config: CoreConfig,
    impacts: Dict[str, int],
) -> Tuple[float, Dict[str, float]]:
    """(CPI floor, per-loop CPI contributions) for one thread profile.

    Event rates are profile priors; each loop's cost is ``events/insn x
    min impact``, then corrected for the two first-order effects the §1
    lower bound leaves out: memory-level parallelism hides load-loop
    recoveries across independent strands (discounted by the square
    root of the strand count — the classic overlap scaling), and branch
    recoveries cost *more* than the minimum because the refetched
    stream must refill the IQ (a constant queueing amplifier).
    """
    branch_frac = profile.mix.fraction(OpClass.BRANCH)
    load_frac = profile.mix.fraction(OpClass.LOAD)
    memory = profile.memory
    deps = profile.deps
    mlp_overlap = 1.0 / math.sqrt(deps.strands)
    rates = {
        "branch_resolution": (
            branch_frac * (1.0 - profile.branches.indirect_frac)
            * profile.branches.expected_mispredict_rate
            * _BRANCH_QUEUEING
        ),
        # non-hot references are the L1-miss diet that mis-speculates
        # the load resolution loop; independent strands overlap them
        "load_resolution": load_frac * (
            memory.warm_frac + memory.cold_frac + memory.stream_frac
        ) * mlp_overlap,
        "dtlb_trap": load_frac * memory.cold_frac / memory.page_dwell,
        "memory_dependence": load_frac * memory.alias_site_frac * 0.1,
    }
    dra = config.dra
    if dra is not None:
        reads_per_insn = 1.0 + deps.two_src_frac
        entries = dra.crc_entries
        if dra.centralized:
            entries = max(1.0, entries / config.num_clusters)
        pollution = (
            _ALWAYS_POLLUTION if dra.insertion_policy == "always" else 1.0
        )
        miss_prob = min(0.5, pollution * _OPERAND_PRESSURE / entries)
        rates["operand_resolution"] = reads_per_insn * miss_prob
    floor = _CPI_FLOOR_BASE + _CPI_FLOOR_CHAIN * deps.chain_frac
    components = {
        name: rate * impacts[name]
        for name, rate in rates.items()
        if name in impacts
    }
    return floor, components


def predict_ipc(
    config: CoreConfig, profiles: Sequence[WorkloadProfile]
) -> Tuple[float, Tuple[Tuple[str, float], ...]]:
    """First-order predicted IPC for one machine on a workload mix.

    ``CPI = floor + sum(events/insn x min impact)`` over the machine's
    loop inventory — the §1 arithmetic priced with profile priors
    instead of measured counters (see :func:`_profile_components` for
    the two overlap corrections).
    """
    impacts = {
        loop.name: loop.min_misspeculation_impact
        for loop in loops_for_config(config)
    }
    floor = 0.0
    components: Dict[str, float] = {}
    for profile in profiles:
        profile_floor, profile_components = _profile_components(
            profile, config, impacts
        )
        floor += profile_floor / len(profiles)
        for name, cost in profile_components.items():
            components[name] = (
                components.get(name, 0.0) + cost / len(profiles)
            )
    cpi = floor + sum(components.values())
    return 1.0 / cpi, tuple(sorted(components.items()))


class AnalyticalPruner:
    """Scores candidates analytically; prunes model-dominated points."""

    def __init__(
        self,
        workloads: Sequence[str],
        settings: Optional[PruneSettings] = None,
    ) -> None:
        if not workloads:
            raise ConfigError("the pruner needs at least one workload")
        self.settings = settings or PruneSettings()
        self.profiles: List[WorkloadProfile] = []
        for name in workloads:
            for entry in workload_profiles(name):
                # scenario specs (traces, dynamic schedules) supply a
                # representative profile for the analytical priors
                if hasattr(entry, "prior_profile"):
                    entry = entry.prior_profile()
                self.profiles.append(entry)
        self.records: List[CalibrationRecord] = []
        self._predictions: Dict[str, Prediction] = {}

    def predict(self, candidate: Candidate) -> Prediction:
        """The (memoised) model score for one candidate."""
        cached = self._predictions.get(candidate.label)
        if cached is not None:
            return cached
        ipc, components = predict_ipc(candidate.config, self.profiles)
        prediction = Prediction(
            candidate=candidate, predicted_ipc=ipc, components=components
        )
        self._predictions[candidate.label] = prediction
        return prediction

    def filter(
        self, candidates: Sequence[Candidate]
    ) -> Tuple[List[Candidate], List[PruneDecision]]:
        """Split candidates into (simulate, skip).

        A candidate is skipped only when some other candidate costs no
        more on *every* hardware axis and the model predicts it faster
        by more than the margin.  Pinned candidates are never skipped.
        Transitively safe: a dominator that is itself pruned implies a
        kept candidate with lower cost and a still-larger predicted gap.
        """
        margin = 1.0 + self.settings.margin
        predictions = [self.predict(c) for c in candidates]
        costs = {c.label: hardware_cost(c.config) for c in candidates}
        kept: List[Candidate] = []
        pruned: List[PruneDecision] = []
        for prediction in predictions:
            candidate = prediction.candidate
            if candidate.pinned:
                kept.append(candidate)
                continue
            dominator: Optional[Prediction] = None
            for other in predictions:
                if other.candidate.label == candidate.label:
                    continue
                if not costs[other.candidate.label].dominates_cost(
                    costs[candidate.label]
                ):
                    continue
                if other.predicted_ipc >= prediction.predicted_ipc * margin:
                    if (
                        dominator is None
                        or other.predicted_ipc > dominator.predicted_ipc
                    ):
                        dominator = other
            if dominator is None:
                kept.append(candidate)
            else:
                pruned.append(
                    PruneDecision(
                        candidate=candidate,
                        dominated_by=dominator.candidate.label,
                        predicted_ipc=prediction.predicted_ipc,
                        dominator_predicted_ipc=dominator.predicted_ipc,
                    )
                )
        return kept, pruned

    def record(self, candidate: Candidate, measured_ipc: float) -> None:
        """Feed a measured IPC back for calibration."""
        prediction = self.predict(candidate)
        self.records.append(
            CalibrationRecord(
                label=candidate.label,
                predicted_ipc=prediction.predicted_ipc,
                measured_ipc=measured_ipc,
            )
        )

    def calibration(self) -> Dict[str, Any]:
        """The predicted-vs-measured error ledger entry."""
        if not self.records:
            return {"count": 0}
        errors = [abs(r.rel_error) for r in self.records]
        return {
            "count": len(self.records),
            "mean_abs_rel_error": sum(errors) / len(errors),
            "max_abs_rel_error": max(errors),
            "records": [
                {
                    "label": r.label,
                    "predicted_ipc": r.predicted_ipc,
                    "measured_ipc": r.measured_ipc,
                    "rel_error": r.rel_error,
                }
                for r in self.records
            ],
        }
