"""Benchmark suite definitions.

The paper evaluates ten single-threaded Spec95 codes plus three SMT
pairs.  :func:`workload_profiles` resolves a suite name — single
benchmark or pair — into the per-thread profile list the simulator
consumes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    SMOKE_PROFILES,
    SPEC95_PROFILES,
    WorkloadProfile,
)

INT_WORKLOADS: Tuple[str, ...] = ("compress", "gcc", "go", "m88ksim")

FP_WORKLOADS: Tuple[str, ...] = (
    "apsi", "hydro2d", "mgrid", "su2cor", "swim", "turb3d",
)

#: SMT pairs, keyed by the paper's names.
SMT_PAIRS: Dict[str, Tuple[str, str]] = {
    "m88ksim+compress": ("m88ksim", "compress"),
    "go+su2cor": ("go", "su2cor"),
    "apsi+swim": ("apsi", "swim"),
}

#: Every workload name in the paper's figures, in figure order.
ALL_WORKLOADS: Tuple[str, ...] = (
    INT_WORKLOADS + FP_WORKLOADS + tuple(SMT_PAIRS)
)

#: Resolvable smoke workloads (CI runs; never in ALL_WORKLOADS).
SMOKE_WORKLOADS: Tuple[str, ...] = tuple(SMOKE_PROFILES)


def workload_profiles(name: str) -> List[WorkloadProfile]:
    """Resolve a workload name to one profile per hardware thread.

    Single benchmarks return a one-element list; SMT pair names return
    two profiles.  Smoke workloads (``int_test``) resolve too, though
    they are not part of the paper's suite.  Raises
    :class:`~repro.errors.WorkloadError` for unknown names.
    """
    if name in SPEC95_PROFILES:
        return [SPEC95_PROFILES[name]]
    if name in SMT_PAIRS:
        return [SPEC95_PROFILES[part] for part in SMT_PAIRS[name]]
    if name in SMOKE_PROFILES:
        return [SMOKE_PROFILES[name]]
    raise WorkloadError(
        f"unknown workload {name!r}; known: "
        f"{', '.join(ALL_WORKLOADS + SMOKE_WORKLOADS)}"
    )
