"""Benchmark suite definitions.

The paper evaluates ten single-threaded Spec95 codes plus three SMT
pairs.  :func:`workload_profiles` resolves a suite name — single
benchmark or pair — into the per-thread entry list the simulator
consumes.  Beyond the paper's names it resolves the scenario
vocabulary (:mod:`repro.scenarios`):

* scenario profile families (``pointer_chase``, ``interp_dispatch``,
  ``server_icache``) and heterogeneous SMT mixes over them;
* ``trace:<path>`` — replay of a captured uop trace;
* ``<base>@<pattern>[:<period>]`` — phase-varying dynamic workloads
  (``swim@bursty``, ``int_test@diurnal:2048``, ...).

Scenario entries are :class:`~repro.scenarios.base.EngineSpec` objects
rather than plain profiles; the simulator builds the matching engine
per thread.  ``ALL_WORKLOADS`` — the paper's figure suite — is
deliberately untouched by any of this.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.profiles import (
    SCENARIO_PROFILES,
    SMOKE_PROFILES,
    SPEC95_PROFILES,
    WorkloadProfile,
)

INT_WORKLOADS: Tuple[str, ...] = ("compress", "gcc", "go", "m88ksim")

FP_WORKLOADS: Tuple[str, ...] = (
    "apsi", "hydro2d", "mgrid", "su2cor", "swim", "turb3d",
)

#: SMT pairs, keyed by the paper's names.
SMT_PAIRS: Dict[str, Tuple[str, str]] = {
    "m88ksim+compress": ("m88ksim", "compress"),
    "go+su2cor": ("go", "su2cor"),
    "apsi+swim": ("apsi", "swim"),
}

#: Every workload name in the paper's figures, in figure order.
ALL_WORKLOADS: Tuple[str, ...] = (
    INT_WORKLOADS + FP_WORKLOADS + tuple(SMT_PAIRS)
)

#: Resolvable smoke workloads (CI runs; never in ALL_WORKLOADS).
SMOKE_WORKLOADS: Tuple[str, ...] = tuple(SMOKE_PROFILES)

#: Heterogeneous SMT mixes over the scenario families: a latency-bound
#: thread paired with a front-end-hostile or throughput thread.  Kept
#: out of SMT_PAIRS (hence out of ALL_WORKLOADS) so figure campaigns
#: never change shape.
SCENARIO_PAIRS: Dict[str, Tuple[str, str]] = {
    "server+pointer": ("server_icache", "pointer_chase"),
    "interp+swim": ("interp_dispatch", "swim"),
    "pointer+compress": ("pointer_chase", "compress"),
}

#: Statically named scenario workloads (families + mixes).  Dynamic
#: (``@pattern``) and trace (``trace:``) names are open-ended syntax,
#: not a finite list.
SCENARIO_WORKLOADS: Tuple[str, ...] = (
    tuple(SCENARIO_PROFILES) + tuple(SCENARIO_PAIRS)
)


def _named_profile(name: str) -> WorkloadProfile:
    for registry in (SPEC95_PROFILES, SCENARIO_PROFILES, SMOKE_PROFILES):
        if name in registry:
            return registry[name]
    raise WorkloadError(f"unknown workload {name!r}")


def workload_profiles(name: str) -> List[WorkloadProfile]:
    """Resolve a workload name to one entry per hardware thread.

    Single benchmarks return a one-element list; SMT pair names return
    two entries.  Plain names resolve to
    :class:`~repro.workloads.WorkloadProfile`; ``trace:`` and
    ``@pattern`` names resolve to engine specs.  Raises
    :class:`~repro.errors.WorkloadError` for unknown names.
    """
    if name in SPEC95_PROFILES:
        return [SPEC95_PROFILES[name]]
    if name in SMT_PAIRS:
        return [SPEC95_PROFILES[part] for part in SMT_PAIRS[name]]
    if name in SMOKE_PROFILES:
        return [SMOKE_PROFILES[name]]
    if name in SCENARIO_PROFILES:
        return [SCENARIO_PROFILES[name]]
    if name in SCENARIO_PAIRS:
        return [_named_profile(part) for part in SCENARIO_PAIRS[name]]
    # scenario syntax (lazy imports: repro.scenarios imports this module)
    if name.startswith("trace:"):
        from repro.scenarios.trace import TraceSpec

        path = name[len("trace:"):]
        if not path:
            raise WorkloadError("trace: workload needs a path (trace:<path>)")
        return [TraceSpec(path)]
    if "@" in name:
        from repro.scenarios.dynamic import resolve_dynamic

        return resolve_dynamic(name)
    raise WorkloadError(
        f"unknown workload {name!r}; known: "
        f"{', '.join(ALL_WORKLOADS + SMOKE_WORKLOADS + SCENARIO_WORKLOADS)} "
        f"— plus trace:<path> and <base>@<pattern>[:<period>] scenarios"
    )
