"""Per-benchmark workload profiles.

Each :class:`WorkloadProfile` bundles the sub-models that the generator
turns into an instruction stream.  The ten Spec95 stand-ins are
parameterised from the paper's own benchmark characterisation (§3.1 and
§6) plus well-known Spec95 behaviour; DESIGN.md §4 documents the mapping.

The knobs are *mechanistic*, not outcome declarations: branch sites with
these biases are fed to the real predictor, region pools of these sizes
are walked over the real caches, and the miss rates / mispredict rates
emerge from the simulation.  ``tests/test_calibration.py`` asserts that
the emergent rates land in the per-benchmark bands the paper's analysis
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa import OpClass
from repro.workloads.mix import InstructionMix

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BranchModel:
    """Behaviour of the workload's conditional branch sites.

    ``loop_site_frac`` of the branch *sites* are loop-style: taken
    ``loop_trip`` times, then not-taken once — near-perfectly
    predictable by two-bit counters apart from the exit.  The remainder
    are data-dependent sites whose outcomes are Bernoulli with per-site
    bias drawn uniformly from ``[random_bias_lo, random_bias_hi]`` — a
    predictor can do no better than the bias.
    """

    num_sites: int = 256
    loop_site_frac: float = 0.6
    loop_trip: int = 16
    random_bias_lo: float = 0.5
    random_bias_hi: float = 0.95
    #: Fraction of control ops that are calls/returns/jumps.
    indirect_frac: float = 0.05
    #: Linear code footprint walked by sequential PCs.  The default
    #: matches the original hard-wired 16 KB region (hot Spec95 loops
    #: fit a 64 KB L1I); server-class icache-hostile profiles widen it
    #: so the front end (BTB, line predictor) sees far more distinct
    #: PCs than it has entries.
    code_bytes: int = 16 * KB

    def __post_init__(self) -> None:
        if not 0.0 <= self.loop_site_frac <= 1.0:
            raise ValueError("loop_site_frac must be in [0, 1]")
        if not 0.0 <= self.random_bias_lo <= self.random_bias_hi <= 1.0:
            raise ValueError("random bias bounds must satisfy 0<=lo<=hi<=1")
        if self.loop_trip < 1:
            raise ValueError("loop_trip must be >= 1")
        if not 1 * KB <= self.code_bytes <= 64 * MB:
            raise ValueError("code_bytes must be in [1 KB, 64 MB]")

    @property
    def expected_mispredict_rate(self) -> float:
        """First-order estimate of the achievable mispredict rate.

        Loop sites mispredict about once per trip+1 executions; random
        sites mispredict at ``1 - max(bias, 1-bias)`` on average.  Used
        by calibration tests as a sanity band, not by the simulator.
        """
        loop_miss = 1.0 / (self.loop_trip + 1)
        mean_bias = (self.random_bias_lo + self.random_bias_hi) / 2.0
        random_miss = 1.0 - max(mean_bias, 1.0 - mean_bias)
        return (
            self.loop_site_frac * loop_miss
            + (1.0 - self.loop_site_frac) * random_miss
        )


@dataclass(frozen=True)
class MemoryModel:
    """Locality structure of the workload's data references.

    Memory references are spread over four kinds of regions; the *real*
    cache/TLB models then decide hits and misses:

    * ``hot`` — pool smaller than L1: near-100 % L1 hits.
    * ``warm`` — pool between L1 and L2 sizes: L1 misses that hit in L2
      (the swim/turb3d load-resolution-loop diet).
    * ``cold`` — a page-dwelling walk over a footprint larger than L2:
      misses to main memory; ``page_dwell`` accesses are made within a
      page before hopping, so TLB pressure is ``~1/page_dwell`` of cold
      accesses (turb3d hops fast, hydro2d/mgrid dwell long).
    * ``stream`` — sequential walk: one compulsory miss per line.
    """

    hot_frac: float = 0.85
    warm_frac: float = 0.10
    cold_frac: float = 0.01
    stream_frac: float = 0.04
    hot_bytes: int = 16 * KB
    warm_bytes: int = 512 * KB
    cold_pages: int = 1024
    page_dwell: int = 64
    stream_stride: int = 16
    #: Fraction of static load sites that read data recently written by
    #: stores (store-to-load communication): the raw material of the
    #: memory dependence loop and its reorder traps.
    alias_site_frac: float = 0.05

    def __post_init__(self) -> None:
        total = self.hot_frac + self.warm_frac + self.cold_frac + self.stream_frac
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"memory region fractions must sum to 1, got {total}")
        if self.hot_bytes <= 0 or self.warm_bytes <= 0:
            raise ValueError("region sizes must be positive")
        if self.cold_pages < 1 or self.page_dwell < 1:
            raise ValueError("cold_pages and page_dwell must be >= 1")
        if self.stream_stride < 1:
            raise ValueError("stream_stride must be >= 1")
        if not 0.0 <= self.alias_site_frac <= 1.0:
            raise ValueError("alias_site_frac must be in [0, 1]")


@dataclass(frozen=True)
class DependencyModel:
    """Dependency-chain geometry.

    * ``strands`` — number of independent dependence strands the code
      interleaves.  Real loop-parallel codes (swim, hydro2d) run many
      independent iterations concurrently, which is what lets an
      out-of-order window overlap cache misses; serial codes (apsi)
      have few strands.  Each instruction joins one strand and its
      chained source is that strand's latest value.
    * ``chain_frac`` — probability the first source is the strand's most
      recent value (serial chaining within the strand; high values give
      apsi's "long, narrow dependency chains").
    * ``near_mean`` — mean (geometric) producer distance, in dynamic
      instructions, of ordinary sources.
    * ``far_frac`` / ``far_lo`` / ``far_hi`` — probability and uniform
      distance range of *distant* sources, which defeat the 9-cycle
      forwarding buffer and create the long tail of Figure 6.
    * ``two_src_frac`` — probability an instruction has a second source.
    * ``global_frac`` — probability a source is one of ``num_globals``
      long-lived registers (stack/global pointers): the paper's
      *completed* operands, served by the DRA pre-read.
    * ``fanout_burst_frac`` — probability a newly produced value becomes
      a short-lived "broadcast" value consumed by the next several
      instructions; concentrated fan-out saturates the DRA's 2-bit
      insertion-table counters (apsi's operand-miss mechanism, §5.4).
    """

    strands: int = 8
    chain_frac: float = 0.25
    near_mean: float = 6.0
    far_frac: float = 0.10
    far_lo: int = 30
    far_hi: int = 120
    two_src_frac: float = 0.55
    global_frac: float = 0.10
    num_globals: int = 4
    fanout_burst_frac: float = 0.02
    fanout_burst_len: int = 4

    def __post_init__(self) -> None:
        for name in (
            "chain_frac",
            "far_frac",
            "two_src_frac",
            "global_frac",
            "fanout_burst_frac",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.near_mean < 1.0:
            raise ValueError("near_mean must be >= 1")
        if not 1 <= self.far_lo <= self.far_hi:
            raise ValueError("far distance range invalid")
        if self.num_globals < 1:
            raise ValueError("num_globals must be >= 1")
        if self.fanout_burst_len < 1:
            raise ValueError("fanout_burst_len must be >= 1")
        if self.strands < 1:
            raise ValueError("strands must be >= 1")


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the generator needs to synthesise one benchmark."""

    name: str
    mix: InstructionMix
    branches: BranchModel = field(default_factory=BranchModel)
    memory: MemoryModel = field(default_factory=MemoryModel)
    deps: DependencyModel = field(default_factory=DependencyModel)
    description: str = ""


def _int_mix(branch: float, load: float, store: float) -> InstructionMix:
    """An integer-code mix with the given control/memory fractions."""
    alu = 1.0 - branch - load - store - 0.02
    return InstructionMix(
        {
            OpClass.INT_ALU: alu,
            OpClass.INT_MUL: 0.02,
            OpClass.LOAD: load,
            OpClass.STORE: store,
            OpClass.BRANCH: branch,
        }
    )


def _fp_mix(branch: float, load: float, store: float, fp: float) -> InstructionMix:
    """A floating-point mix: ``fp`` split across FP add/mul/div pipes."""
    alu = 1.0 - branch - load - store - fp
    if alu < 0:
        raise ValueError("fp mix fractions exceed 1.0")
    return InstructionMix(
        {
            OpClass.INT_ALU: alu,
            OpClass.FP_ADD: fp * 0.46,
            OpClass.FP_MUL: fp * 0.46,
            OpClass.FP_DIV: fp * 0.08,
            OpClass.LOAD: load,
            OpClass.STORE: store,
            OpClass.BRANCH: branch,
        }
    )


#: The ten single-threaded Spec95 stand-ins keyed by name.
SPEC95_PROFILES: Dict[str, WorkloadProfile] = {}

#: Tiny synthetic workloads for CI smoke runs and quick local checks.
#: Kept out of SPEC95_PROFILES so figure campaigns over the paper's
#: workload list never pick one up by accident.
SMOKE_PROFILES: Dict[str, WorkloadProfile] = {}

#: Scenario profile families beyond the paper's Spec95 stand-ins
#: (pointer chasing, interpreter dispatch, server-class icache-hostile).
#: A separate registry so ``ALL_WORKLOADS`` — the paper's figure suite —
#: never changes shape; resolve them by name like any other workload.
SCENARIO_PROFILES: Dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> WorkloadProfile:
    SPEC95_PROFILES[profile.name] = profile
    return profile


def _register_scenario(profile: WorkloadProfile) -> WorkloadProfile:
    SCENARIO_PROFILES[profile.name] = profile
    return profile


# ---------------------------------------------------------------------------
# Integer benchmarks
# ---------------------------------------------------------------------------

_register(
    WorkloadProfile(
        name="compress",
        description=(
            "Many branches, poorly predictable; some load misses. The most "
            "pipeline-length-sensitive integer code in Figure 4."
        ),
        mix=_int_mix(branch=0.18, load=0.24, store=0.09),
        branches=BranchModel(
            num_sites=64,
            loop_site_frac=0.55,
            loop_trip=8,
            random_bias_lo=0.70,
            random_bias_hi=0.95,
        ),
        memory=MemoryModel(
            hot_frac=0.84, warm_frac=0.12, cold_frac=0.01, stream_frac=0.03,
            hot_bytes=24 * KB, warm_bytes=160 * KB,
        ),
        deps=DependencyModel(strands=8, chain_frac=0.35, near_mean=5.0, two_src_frac=0.5),
    )
)

_register(
    WorkloadProfile(
        name="gcc",
        description="Branchy, large code footprint, frequent mispredicts and load misses.",
        mix=_int_mix(branch=0.17, load=0.25, store=0.11),
        branches=BranchModel(
            num_sites=512,
            loop_site_frac=0.50,
            loop_trip=6,
            random_bias_lo=0.75,
            random_bias_hi=0.95,
        ),
        memory=MemoryModel(
            hot_frac=0.85, warm_frac=0.10, cold_frac=0.015, stream_frac=0.035,
            hot_bytes=32 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(strands=8, chain_frac=0.3, near_mean=5.5, two_src_frac=0.5),
    )
)

_register(
    WorkloadProfile(
        name="go",
        description="The classic hard-to-predict branch workload.",
        mix=_int_mix(branch=0.16, load=0.23, store=0.08),
        branches=BranchModel(
            num_sites=512,
            loop_site_frac=0.30,
            loop_trip=5,
            random_bias_lo=0.60,
            random_bias_hi=0.85,
        ),
        memory=MemoryModel(
            hot_frac=0.88, warm_frac=0.08, cold_frac=0.01, stream_frac=0.03,
            hot_bytes=32 * KB, warm_bytes=224 * KB,
        ),
        deps=DependencyModel(strands=8, chain_frac=0.3, near_mean=6.0, two_src_frac=0.5),
    )
)

_register(
    WorkloadProfile(
        name="m88ksim",
        description=(
            "Fewer branches and mispredicts than the other integer codes; "
            "the least pipeline-sensitive integer benchmark (Figure 4)."
        ),
        mix=_int_mix(branch=0.12, load=0.20, store=0.08),
        branches=BranchModel(
            num_sites=128,
            loop_site_frac=0.85,
            loop_trip=24,
            random_bias_lo=0.85,
            random_bias_hi=0.98,
        ),
        memory=MemoryModel(
            hot_frac=0.92, warm_frac=0.04, cold_frac=0.005, stream_frac=0.035,
            hot_bytes=16 * KB, warm_bytes=128 * KB,
        ),
        deps=DependencyModel(strands=10, chain_frac=0.25, near_mean=7.0, two_src_frac=0.5, fanout_burst_frac=0.01, fanout_burst_len=3),
    )
)

# ---------------------------------------------------------------------------
# Floating-point benchmarks
# ---------------------------------------------------------------------------

_register(
    WorkloadProfile(
        name="apsi",
        description=(
            "Long, narrow dependency chains (low ILP); moderate D$ misses "
            "but little useless work. With the DRA its concentrated fan-out "
            "and long producer-consumer distances produce the paper's ~1.5% "
            "operand miss rate and a net slowdown (Figure 8)."
        ),
        mix=_fp_mix(branch=0.07, load=0.26, store=0.10, fp=0.30),
        branches=BranchModel(
            num_sites=96,
            loop_site_frac=0.9,
            loop_trip=32,
            random_bias_lo=0.9,
            random_bias_hi=0.99,
        ),
        memory=MemoryModel(
            hot_frac=0.85, warm_frac=0.10, cold_frac=0.01, stream_frac=0.04,
            hot_bytes=24 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(
            strands=2,
            chain_frac=0.88,
            near_mean=1.5,
            far_frac=0.20,
            far_lo=40,
            far_hi=200,
            two_src_frac=0.70,
            global_frac=0.04,
            fanout_burst_frac=0.07,
            fanout_burst_len=64,
        ),
    )
)

_register(
    WorkloadProfile(
        name="hydro2d",
        description=(
            "Many loads, high L1 *and* L2 miss rates: dominated by main "
            "memory latency, hence insensitive to pipeline length (Figure 4)."
        ),
        mix=_fp_mix(branch=0.05, load=0.30, store=0.09, fp=0.34),
        branches=BranchModel(
            num_sites=64, loop_site_frac=0.92, loop_trip=48,
            random_bias_lo=0.9, random_bias_hi=0.99,
        ),
        memory=MemoryModel(
            hot_frac=0.55, warm_frac=0.15, cold_frac=0.18, stream_frac=0.12,
            hot_bytes=16 * KB, warm_bytes=256 * KB,
            cold_pages=2048, page_dwell=48,
        ),
        deps=DependencyModel(strands=24, chain_frac=0.3, near_mean=6.0, two_src_frac=0.6),
    )
)

_register(
    WorkloadProfile(
        name="mgrid",
        description="Like hydro2d: memory-bound stencil code, L2 misses dominate.",
        mix=_fp_mix(branch=0.03, load=0.33, store=0.07, fp=0.38),
        branches=BranchModel(
            num_sites=32, loop_site_frac=0.95, loop_trip=64,
            random_bias_lo=0.95, random_bias_hi=0.99,
        ),
        memory=MemoryModel(
            hot_frac=0.52, warm_frac=0.16, cold_frac=0.20, stream_frac=0.12,
            hot_bytes=16 * KB, warm_bytes=256 * KB,
            cold_pages=4096, page_dwell=48,
        ),
        deps=DependencyModel(strands=24, chain_frac=0.28, near_mean=6.5, two_src_frac=0.6),
    )
)

_register(
    WorkloadProfile(
        name="su2cor",
        description=(
            "Few branch or load mis-speculations, but measurable useless "
            "work from queueing-delayed branch resolution (§3.1)."
        ),
        mix=_fp_mix(branch=0.06, load=0.27, store=0.08, fp=0.36),
        branches=BranchModel(
            num_sites=96, loop_site_frac=0.88, loop_trip=40,
            random_bias_lo=0.88, random_bias_hi=0.98,
        ),
        memory=MemoryModel(
            hot_frac=0.82, warm_frac=0.13, cold_frac=0.02, stream_frac=0.03,
            hot_bytes=24 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(
            strands=6, chain_frac=0.45, near_mean=4.0, two_src_frac=0.6,
            far_frac=0.12,
        ),
    )
)

_register(
    WorkloadProfile(
        name="swim",
        description=(
            "Many loads, high L1 miss rate that hits in L2: the archetypal "
            "load-resolution-loop workload, most sensitive to IQ->EX length "
            "(Figures 4 and 5)."
        ),
        mix=_fp_mix(branch=0.03, load=0.32, store=0.10, fp=0.36),
        branches=BranchModel(
            num_sites=32, loop_site_frac=0.96, loop_trip=64,
            random_bias_lo=0.95, random_bias_hi=0.99,
        ),
        memory=MemoryModel(
            hot_frac=0.705, warm_frac=0.27, cold_frac=0.005, stream_frac=0.02,
            hot_bytes=16 * KB, warm_bytes=256 * KB, stream_stride=8,
        ),
        deps=DependencyModel(strands=24, chain_frac=0.3, near_mean=6.0, two_src_frac=0.6),
    )
)

_register(
    WorkloadProfile(
        name="turb3d",
        description=(
            "Loads with L1 misses hitting in L2, plus a page-hopping cold "
            "region that produces DTLB misses (front-of-pipe recovery, §3.1)."
        ),
        mix=_fp_mix(branch=0.05, load=0.29, store=0.09, fp=0.34),
        branches=BranchModel(
            num_sites=64, loop_site_frac=0.92, loop_trip=32,
            random_bias_lo=0.92, random_bias_hi=0.99,
        ),
        memory=MemoryModel(
            hot_frac=0.738, warm_frac=0.23, cold_frac=0.02, stream_frac=0.012,
            hot_bytes=16 * KB, warm_bytes=256 * KB,
            cold_pages=8192, page_dwell=2, stream_stride=8,
        ),
        deps=DependencyModel(
            strands=16,
            chain_frac=0.35,
            near_mean=6.0,
            far_frac=0.30,
            far_lo=25,
            far_hi=150,
            two_src_frac=0.72,
        ),
    )
)

# ---------------------------------------------------------------------------
# Smoke workloads (CI / quick local checks; not part of the paper's suite)
# ---------------------------------------------------------------------------

# ---------------------------------------------------------------------------
# Scenario families (repro.scenarios; never part of ALL_WORKLOADS)
# ---------------------------------------------------------------------------

_register_scenario(
    WorkloadProfile(
        name="pointer_chase",
        description=(
            "Linked-structure traversal: one serial dependence strand of "
            "loads whose addresses chain through a cold, page-hopping "
            "footprint.  The window cannot overlap the misses, so the "
            "load resolution loop is hit on nearly every step."
        ),
        mix=_int_mix(branch=0.08, load=0.38, store=0.04),
        branches=BranchModel(
            num_sites=48,
            loop_site_frac=0.75,
            loop_trip=24,
            random_bias_lo=0.8,
            random_bias_hi=0.95,
        ),
        memory=MemoryModel(
            hot_frac=0.30, warm_frac=0.25, cold_frac=0.40, stream_frac=0.05,
            hot_bytes=8 * KB, warm_bytes=512 * KB,
            cold_pages=8192, page_dwell=4,
            alias_site_frac=0.02,
        ),
        deps=DependencyModel(
            strands=1,
            chain_frac=0.90,
            near_mean=1.5,
            far_frac=0.05,
            two_src_frac=0.30,
            global_frac=0.06,
        ),
    )
)

_register_scenario(
    WorkloadProfile(
        name="interp_dispatch",
        description=(
            "Bytecode-interpreter dispatch: branch-dense code with a huge "
            "share of indirect control (threaded dispatch), weakly biased "
            "data-dependent branches, and a hot operand-stack working "
            "set.  A branch-resolution-loop stress test."
        ),
        mix=_int_mix(branch=0.22, load=0.26, store=0.08),
        branches=BranchModel(
            num_sites=512,
            loop_site_frac=0.20,
            loop_trip=4,
            random_bias_lo=0.55,
            random_bias_hi=0.80,
            indirect_frac=0.45,
            code_bytes=32 * KB,
        ),
        memory=MemoryModel(
            hot_frac=0.88, warm_frac=0.08, cold_frac=0.01, stream_frac=0.03,
            hot_bytes=32 * KB, warm_bytes=256 * KB,
        ),
        deps=DependencyModel(
            strands=4, chain_frac=0.45, near_mean=3.0, two_src_frac=0.5,
        ),
    )
)

_register_scenario(
    WorkloadProfile(
        name="server_icache",
        description=(
            "Server-class icache-hostile code: a 256 KB linear code "
            "footprint with many moderately biased branch sites, so the "
            "BTB and line predictor see far more distinct PCs than they "
            "hold; data references are flat with a measurable cold tail."
        ),
        mix=_int_mix(branch=0.19, load=0.24, store=0.10),
        branches=BranchModel(
            num_sites=1024,
            loop_site_frac=0.40,
            loop_trip=8,
            random_bias_lo=0.70,
            random_bias_hi=0.90,
            indirect_frac=0.12,
            code_bytes=256 * KB,
        ),
        memory=MemoryModel(
            hot_frac=0.60, warm_frac=0.20, cold_frac=0.15, stream_frac=0.05,
            hot_bytes=32 * KB, warm_bytes=512 * KB,
            cold_pages=4096, page_dwell=16,
        ),
        deps=DependencyModel(
            strands=8, chain_frac=0.30, near_mean=5.0, two_src_frac=0.5,
        ),
    )
)

SMOKE_PROFILES["int_test"] = WorkloadProfile(
    name="int_test",
    description=(
        "Small, fast integer mix exercising every loop a little: mostly "
        "hot memory with a thin warm slice, moderately predictable "
        "branches.  For CI smoke runs only."
    ),
    mix=_int_mix(branch=0.15, load=0.22, store=0.08),
    branches=BranchModel(
        num_sites=32,
        loop_site_frac=0.6,
        loop_trip=8,
        random_bias_lo=0.75,
        random_bias_hi=0.95,
    ),
    memory=MemoryModel(
        hot_frac=0.90, warm_frac=0.07, cold_frac=0.005, stream_frac=0.025,
        hot_bytes=8 * KB, warm_bytes=128 * KB,
    ),
    deps=DependencyModel(strands=6, chain_frac=0.3, near_mean=5.0),
)
