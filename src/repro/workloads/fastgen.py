"""Bit-identical fast path for :class:`SyntheticTraceGenerator`.

The synthetic generator is roughly half of detailed-simulation time: per
micro-op it pays several method-call layers (``next_op`` -> ``_make_*``
-> ``_pick_*`` -> ``random.Random`` wrappers) plus a full dataclass
``__init__`` with ``__post_init__`` validation for every ``MicroOp``.

:class:`FastSyntheticTraceGenerator` produces the *same stream, bit for
bit*: it draws from the same ``random.Random`` in the same order and
mutates the same generator state, but with every helper inlined and
``MicroOp`` instances built by direct ``__dict__`` assignment (skipping
``__init__``; the generator constructs only valid ops).  The stdlib
wrappers it bypasses are re-expressed exactly as CPython implements
them, so the underlying C-level draws are identical:

* ``choice(seq)``   == ``seq[_randbelow(len(seq))]``
* ``randrange(n)``  == ``_randbelow(n)``
* ``randint(a, b)`` == ``a + _randbelow(b - a + 1)``
* ``_randbelow(n)`` == ``getrandbits(n.bit_length())`` redrawn while
  ``>= n`` (the rejection loop below mirrors
  ``Random._randbelow_with_getrandbits`` including its power-of-two
  rejections; bit lengths of fixed-size pools are precomputed)
* ``expovariate(lambd)`` == ``-log(1.0 - random()) / lambd``

``random()`` is called through a hoisted bound method, so its draws are
identical trivially.  The round-robin destination pick consumes no
randomness and is collapsed into two precomputed ``cursor -> (reg,
next_cursor)`` tables.

Equivalence is enforced by tests (``tests/test_backend.py`` compares
long streams element-wise and the final RNG state) and transitively by
every golden pin and differential law run against the ``optimized``
kernel backend, which is the only consumer of this class.
"""

from __future__ import annotations

from math import log as _log

from repro.isa import MicroOp, OpClass, ZERO_REG
from repro.isa.registers import FIRST_FP_REG
from repro.workloads.generator import LINK_REG, SyntheticTraceGenerator

_new_op = MicroOp.__new__
#: frozen-dataclass ``__setattr__`` blocks even ``__dict__`` rebinding,
#: so the fast constructor goes through ``object.__setattr__`` directly
_set_dict = object.__setattr__

_INT_ALU = OpClass.INT_ALU
_BRANCH = OpClass.BRANCH
_LOAD = OpClass.LOAD
_STORE = OpClass.STORE
_CALL = OpClass.CALL
_RETURN = OpClass.RETURN
_JUMP = OpClass.JUMP
_NOP = OpClass.NOP
_MEM_BARRIER = OpClass.MEM_BARRIER
_FP_CLASSES = (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV)


class FastSyntheticTraceGenerator(SyntheticTraceGenerator):
    """Drop-in generator with a flattened, RNG-identical ``next_op``."""

    def __init__(self, profile, seed=0, thread=0, page_bytes=8192):
        super().__init__(profile, seed=seed, thread=thread, page_bytes=page_bytes)
        rng = self._rng
        self._f_random = rng.random
        self._f_getrandbits = rng.getrandbits
        mix = profile.mix
        self._mix_pairs = tuple(zip(mix._cumulative, mix._classes))
        self._mix_last = mix._classes[-1]
        deps = profile.deps
        self._gf = deps.global_frac
        self._gcf = deps.global_frac + deps.chain_frac
        self._farf = deps.far_frac
        self._far_lo = deps.far_lo
        self._far_span = deps.far_hi - deps.far_lo + 1
        self._far_k = self._far_span.bit_length()
        self._lambd = 1.0 / deps.near_mean
        self._two_src = deps.two_src_frac
        self._fanout_frac = deps.fanout_burst_frac
        self._fanout_len = deps.fanout_burst_len
        self._strands = deps.strands
        self._strands_k = deps.strands.bit_length()
        self._indirect_frac = profile.branches.indirect_frac
        self._rc0, self._rc1, self._rc2 = self._region_cum[:3]
        # fixed-size pools: precomputed (length, bit_length) pairs
        self._ng = len(self._globals)
        self._kg = self._ng.bit_length()
        self._nsites = len(self._sites)
        self._ksites = self._nsites.bit_length()
        self._nload = len(self._load_sites)
        self._kload = self._nload.bit_length()
        self._nret = len(self._return_pcs)
        self._kret = self._nret.bit_length()
        # call and jump site pools share the same size
        self._ncall = len(self._call_sites)
        self._kcall = self._ncall.bit_length()
        # region walkers: fixed line/page pool geometry
        self._hot_lines = self._hot.lines
        self._khot = self._hot_lines.bit_length()
        self._warm_lines = self._warm.lines
        self._kwarm = self._warm_lines.bit_length()
        self._cold_pages = self._cold.pages
        self._kcold_pages = self._cold_pages.bit_length()
        self._cold_lines = self._cold.lines_per_page
        self._kcold_lines = self._cold_lines.bit_length()
        # the round-robin destination pick consumes no randomness:
        # collapse it into cursor -> (reg, next_cursor) tables
        regs = self._dst_regs
        n = len(regs)
        int_table, fp_table = [], []
        for start in range(n):
            for table, is_fp in ((int_table, False), (fp_table, True)):
                cursor, chosen = start, None
                for _ in range(n):
                    reg = regs[cursor]
                    cursor = cursor + 1 if cursor + 1 < n else 0
                    if (reg >= FIRST_FP_REG) if is_fp else (reg < FIRST_FP_REG):
                        chosen = reg
                        break
                table.append((regs[0] if chosen is None else chosen, cursor))
        self._dst_int = int_table
        self._dst_fp = fp_table

    def clone(self) -> "FastSyntheticTraceGenerator":
        return FastSyntheticTraceGenerator(
            self.profile,
            seed=self.seed,
            thread=self.thread,
            page_bytes=self.page_bytes,
        )

    # ------------------------------------------------------- inlined helpers

    def _fast_source(self, strand):
        """``_pick_source(allow_burst=False, strand=strand)``, flattened."""
        random = self._f_random
        roll = random()
        if roll < self._gf:
            grb = self._f_getrandbits
            n, k = self._ng, self._kg
            r = grb(k)
            while r >= n:
                r = grb(k)
            return self._globals[r]
        if roll < self._gcf:
            if strand is not None:
                last = self._strand_last[strand]
                if last is not None:
                    return last
            rd = self._recent_dsts
            if rd:
                return rd[-1]
        rd = self._recent_dsts
        if not rd:
            return ZERO_REG
        if random() < self._farf:
            grb = self._f_getrandbits
            n, k = self._far_span, self._far_k
            r = grb(k)
            while r >= n:
                r = grb(k)
            distance = self._far_lo + r
        else:
            distance = 1 + int(-_log(1.0 - random()) / self._lambd)
            if distance > 10_000:
                distance = 10_000
        n = len(rd)
        if distance >= n:
            distance = n
        return rd[-distance]

    def _fast_addr_base(self, strand):
        """``_pick_address_base(strand)``, flattened."""
        if self._f_random() < 0.6:
            grb = self._f_getrandbits
            n, k = self._ng, self._kg
            r = grb(k)
            while r >= n:
                r = grb(k)
            return self._globals[r]
        return self._fast_source(strand)

    def _fast_data_address(self):
        """``_next_data_address()``, flattened over all four walkers."""
        grb = self._f_getrandbits
        roll = self._f_random()
        if roll <= self._rc0:
            n, k = self._hot_lines, self._khot
            line = grb(k)
            while line >= n:
                line = grb(k)
            word = grb(4)
            while word >= 8:
                word = grb(4)
            return self._hot.base + 64 * line + 8 * word
        if roll <= self._rc1:
            n, k = self._warm_lines, self._kwarm
            line = grb(k)
            while line >= n:
                line = grb(k)
            word = grb(4)
            while word >= 8:
                word = grb(4)
            return self._warm.base + 64 * line + 8 * word
        if roll <= self._rc2:
            w = self._cold
            if w._remaining <= 0:
                n, k = self._cold_pages, self._kcold_pages
                r = grb(k)
                while r >= n:
                    r = grb(k)
                w._current_page = r
                w._remaining = w.dwell
            w._remaining -= 1
            n, k = self._cold_lines, self._kcold_lines
            line = grb(k)
            while line >= n:
                line = grb(k)
            word = grb(4)
            while word >= 8:
                word = grb(4)
            return w.base + w._current_page * w.page_bytes + 64 * line + 8 * word
        w = self._stream
        w.addr += w.stride
        return w.addr

    # --------------------------------------------------------------- next_op

    def next_op(self) -> MicroOp:
        emitted = self._emitted + 1
        self._emitted = emitted
        random = self._f_random
        grb = self._f_getrandbits
        if not emitted % 2000:
            n, k = self._ng, self._kg
            r = grb(k)
            while r >= n:
                r = grb(k)
            reg = self._globals[r]
            pc = self._next_pc
            npc = pc + 4
            self._next_pc = self._pc_base if npc >= self._code_limit else npc
            op = _new_op(MicroOp)
            _set_dict(op, "__dict__", {
                "pc": pc, "opclass": _INT_ALU, "srcs": (ZERO_REG,),
                "dst": reg, "address": None, "taken": False, "target": None,
            })
            return op
        x = random()
        opclass = self._mix_last
        for cum, cls in self._mix_pairs:
            if x <= cum:
                opclass = cls
                break

        if opclass is _BRANCH:
            if random() < self._indirect_frac:
                stack = self._call_stack
                if stack and (len(stack) >= 8 or random() < 0.5):
                    target = stack.pop()
                    n, k = self._nret, self._kret
                    r = grb(k)
                    while r >= n:
                        r = grb(k)
                    op = _new_op(MicroOp)
                    _set_dict(op, "__dict__", {
                        "pc": self._return_pcs[r], "opclass": _RETURN,
                        "srcs": (LINK_REG,), "dst": None, "address": None,
                        "taken": True, "target": target,
                    })
                    return op
                n, k = self._ncall, self._kcall
                if random() < 0.7:
                    r = grb(k)
                    while r >= n:
                        r = grb(k)
                    pc, target = self._call_sites[r]
                    stack.append(pc + 4)
                    op = _new_op(MicroOp)
                    _set_dict(op, "__dict__", {
                        "pc": pc, "opclass": _CALL, "srcs": (),
                        "dst": LINK_REG, "address": None,
                        "taken": True, "target": target,
                    })
                    return op
                r = grb(k)
                while r >= n:
                    r = grb(k)
                pc, target = self._jump_sites[r]
                op = _new_op(MicroOp)
                _set_dict(op, "__dict__", {
                    "pc": pc, "opclass": _JUMP, "srcs": (), "dst": None,
                    "address": None, "taken": True, "target": target,
                })
                return op
            n, k = self._nsites, self._ksites
            r = grb(k)
            while r >= n:
                r = grb(k)
            site = self._sites[r]
            if site.is_loop:
                count = site.count + 1
                if count > site.trip:
                    site.count = 0
                    taken = False
                else:
                    site.count = count
                    taken = True
            else:
                taken = random() < site.bias
            op = _new_op(MicroOp)
            _set_dict(op, "__dict__", {
                "pc": site.pc, "opclass": _BRANCH,
                "srcs": (self._fast_source(None),), "dst": None,
                "address": None, "taken": taken, "target": site.target,
            })
            return op

        if opclass is _LOAD:
            n, k = self._strands, self._strands_k
            strand = grb(k)
            while strand >= n:
                strand = grb(k)
            if random() < 0.5:
                dst, self._dst_cursor = self._dst_int[self._dst_cursor]
            else:
                dst, self._dst_cursor = self._dst_fp[self._dst_cursor]
            n, k = self._nload, self._kload
            r = grb(k)
            while r >= n:
                r = grb(k)
            pc, alias_prone = self._load_sites[r]
            rsa = self._recent_store_addrs
            if alias_prone and rsa and random() < 0.8:
                n = len(rsa)
                k = n.bit_length()
                r = grb(k)
                while r >= n:
                    r = grb(k)
                address = rsa[r]
            else:
                address = self._fast_data_address()
            srcs = (self._fast_addr_base(strand),)
            # _record_dst, inlined
            self._strand_last[strand] = dst
            rd = self._recent_dsts
            rd.append(dst)
            if len(rd) > 4096:
                del rd[:2048]
            if self._burst_left == 0 and random() < self._fanout_frac:
                self._burst_reg = dst
                self._burst_left = self._fanout_len
            op = _new_op(MicroOp)
            _set_dict(op, "__dict__", {
                "pc": pc, "opclass": _LOAD, "srcs": srcs, "dst": dst,
                "address": address, "taken": False, "target": None,
            })
            return op

        if opclass is _STORE:
            n, k = self._strands, self._strands_k
            strand = grb(k)
            while strand >= n:
                strand = grb(k)
            address = self._fast_data_address()
            rsa = self._recent_store_addrs
            rsa.append(address)
            if len(rsa) > 16:
                rsa.pop(0)
            src = self._fast_source(strand)
            base = self._fast_addr_base(strand)
            pc = self._next_pc
            npc = pc + 4
            self._next_pc = self._pc_base if npc >= self._code_limit else npc
            op = _new_op(MicroOp)
            _set_dict(op, "__dict__", {
                "pc": pc, "opclass": _STORE, "srcs": (src, base),
                "dst": None, "address": address, "taken": False, "target": None,
            })
            return op

        if opclass is _MEM_BARRIER or opclass is _NOP:
            pc = self._next_pc
            npc = pc + 4
            self._next_pc = self._pc_base if npc >= self._code_limit else npc
            op = _new_op(MicroOp)
            _set_dict(op, "__dict__", {
                "pc": pc, "opclass": opclass, "srcs": (), "dst": None,
                "address": None, "taken": False, "target": None,
            })
            return op

        # compute classes
        n, k = self._strands, self._strands_k
        strand = grb(k)
        while strand >= n:
            strand = grb(k)
        src = self._fast_source(strand)
        if random() < self._two_src:
            # second source: _pick_source(allow_burst=True), flattened
            if self._burst_left > 0 and self._burst_reg is not None:
                self._burst_left -= 1
                srcs = (src, self._burst_reg)
            else:
                srcs = (src, self._fast_source(None))
        else:
            srcs = (src,)
        if opclass in _FP_CLASSES:
            dst, self._dst_cursor = self._dst_fp[self._dst_cursor]
        else:
            dst, self._dst_cursor = self._dst_int[self._dst_cursor]
        pc = self._next_pc
        npc = pc + 4
        self._next_pc = self._pc_base if npc >= self._code_limit else npc
        # _record_dst, inlined
        self._strand_last[strand] = dst
        rd = self._recent_dsts
        rd.append(dst)
        if len(rd) > 4096:
            del rd[:2048]
        if self._burst_left == 0 and random() < self._fanout_frac:
            self._burst_reg = dst
            self._burst_left = self._fanout_len
        op = _new_op(MicroOp)
        _set_dict(op, "__dict__", {
            "pc": pc, "opclass": opclass, "srcs": srcs, "dst": dst,
            "address": None, "taken": False, "target": None,
        })
        return op
