"""Synthetic workload generation (Spec95 stand-ins).

The paper drives its simulator with Spec95 binaries; those binaries (and
an Alpha functional front end) are unavailable, so this package provides
seeded synthetic instruction streams whose *characteristics* — the ones
the paper's analysis attributes each benchmark's behaviour to — are
dialled in per benchmark profile:

* instruction mix and branch site behaviour (drives the real branch
  predictor to a target-ish accuracy),
* memory locality (region pools whose sizes drive the real cache and TLB
  models to characteristic miss rates),
* dependency-chain geometry (drives ILP and the operand-availability gap
  of the paper's Figure 6).

See DESIGN.md §3-§4 for the substitution argument.
"""

from repro.workloads.mix import InstructionMix
from repro.workloads.profiles import (
    BranchModel,
    DependencyModel,
    MemoryModel,
    WorkloadProfile,
    SCENARIO_PROFILES,
    SMOKE_PROFILES,
    SPEC95_PROFILES,
)
from repro.workloads.generator import SyntheticTraceGenerator
from repro.workloads.suites import (
    ALL_WORKLOADS,
    FP_WORKLOADS,
    INT_WORKLOADS,
    SCENARIO_PAIRS,
    SCENARIO_WORKLOADS,
    SMOKE_WORKLOADS,
    SMT_PAIRS,
    workload_profiles,
)

__all__ = [
    "InstructionMix",
    "BranchModel",
    "MemoryModel",
    "DependencyModel",
    "WorkloadProfile",
    "SCENARIO_PROFILES",
    "SMOKE_PROFILES",
    "SPEC95_PROFILES",
    "SyntheticTraceGenerator",
    "ALL_WORKLOADS",
    "INT_WORKLOADS",
    "FP_WORKLOADS",
    "SCENARIO_PAIRS",
    "SCENARIO_WORKLOADS",
    "SMOKE_WORKLOADS",
    "SMT_PAIRS",
    "workload_profiles",
]
