"""Instruction-mix model.

An :class:`InstructionMix` maps op classes to occurrence weights and
supports seeded sampling.  Weights need not sum to one; they are
normalised on construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.isa import OpClass


class InstructionMix:
    """Normalised categorical distribution over op classes."""

    def __init__(self, weights: Dict[OpClass, float]):
        if not weights:
            raise ValueError("instruction mix cannot be empty")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ValueError("instruction mix weights must sum to > 0")
        for opclass, weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for {opclass}: {weight}")
        self._fractions: Dict[OpClass, float] = {
            opclass: weight / total for opclass, weight in weights.items()
        }
        self._classes: List[OpClass] = list(self._fractions)
        self._cumulative: List[float] = []
        acc = 0.0
        for opclass in self._classes:
            acc += self._fractions[opclass]
            self._cumulative.append(acc)
        # guard against floating point drift on the last bucket
        self._cumulative[-1] = 1.0

    def fraction(self, opclass: OpClass) -> float:
        """The normalised fraction of ``opclass`` in this mix."""
        return self._fractions.get(opclass, 0.0)

    @property
    def fractions(self) -> Dict[OpClass, float]:
        """A copy of the normalised class fractions."""
        return dict(self._fractions)

    def sample(self, rng: random.Random) -> OpClass:
        """Draw one op class using ``rng``."""
        x = rng.random()
        for opclass, cum in zip(self._classes, self._cumulative):
            if x <= cum:
                return opclass
        return self._classes[-1]

    def items(self) -> List[Tuple[OpClass, float]]:
        """The (op class, fraction) pairs of this mix."""
        return list(self._fractions.items())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{opclass.value}={frac:.3f}" for opclass, frac in self._fractions.items()
        )
        return f"InstructionMix({parts})"
