"""Seeded synthetic instruction-stream generator.

Turns a :class:`~repro.workloads.WorkloadProfile` into an infinite,
deterministic stream of :class:`~repro.isa.MicroOp`.  All randomness
comes from one ``random.Random`` seeded from ``(profile name, seed,
thread)``, so a given workload/seed pair always produces the identical
stream — required for reproducible experiments and for replay after
pipeline squashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.isa import MicroOp, OpClass, ZERO_REG
from repro.isa.registers import FIRST_FP_REG, NUM_ARCH_REGS
from repro.workloads.profiles import WorkloadProfile

#: Architectural register reserved as the call/return link register.
LINK_REG = 7

_LINE_BYTES = 64


@dataclass
class _BranchSite:
    """One static conditional branch site."""

    pc: int
    target: int
    is_loop: bool
    bias: float
    trip: int
    count: int = 0

    def next_outcome(self, rng: random.Random) -> bool:
        """The ground-truth direction of this site's next execution."""
        if self.is_loop:
            self.count += 1
            if self.count > self.trip:
                self.count = 0
                return False
            return True
        return rng.random() < self.bias


class _RegionWalker:
    """Generates addresses inside one locality region."""

    def __init__(self, base: int, size_bytes: int, rng: random.Random):
        self.base = base
        self.lines = max(1, size_bytes // _LINE_BYTES)
        self._rng = rng

    def next_address(self) -> int:
        line = self._rng.randrange(self.lines)
        word = self._rng.randrange(_LINE_BYTES // 8)
        return self.base + _LINE_BYTES * line + 8 * word


class _PagedWalker:
    """Page-dwelling walk over a large footprint (the *cold* region).

    Addresses are random lines within the current page; after ``dwell``
    accesses the walker hops to a new random page.  With a footprint of
    many pages, TLB misses occur roughly once per hop (``~1/dwell`` of
    accesses) while cache misses stay high (the footprint far exceeds
    the L2).
    """

    def __init__(
        self, base: int, pages: int, page_bytes: int, dwell: int,
        rng: random.Random,
    ):
        self.base = base
        self.pages = max(1, pages)
        self.page_bytes = page_bytes
        self.dwell = max(1, dwell)
        self.lines_per_page = max(1, page_bytes // _LINE_BYTES)
        self._rng = rng
        self._current_page = 0
        self._remaining = 0

    def next_address(self) -> int:
        if self._remaining <= 0:
            self._current_page = self._rng.randrange(self.pages)
            self._remaining = self.dwell
        self._remaining -= 1
        line = self._rng.randrange(self.lines_per_page)
        word = self._rng.randrange(_LINE_BYTES // 8)
        return (
            self.base
            + self._current_page * self.page_bytes
            + line * _LINE_BYTES
            + 8 * word
        )


class _StreamWalker:
    """Sequential walker: one compulsory miss per cache line."""

    def __init__(self, base: int, stride: int = 16):
        self.addr = base
        self.stride = stride

    def next_address(self) -> int:
        self.addr += self.stride
        return self.addr


class SyntheticTraceGenerator:
    """Deterministic synthetic instruction stream for one thread.

    Parameters
    ----------
    profile:
        The workload profile to synthesise.
    seed:
        Stream seed; same (profile, seed, thread) -> same stream.
    thread:
        Hardware thread identifier; offsets the PC and address spaces so
        SMT pairs do not trivially share cache lines or predictor entries.
    page_bytes:
        Page size assumed for TLB-pressure address generation (should
        match the simulated TLB's page size).
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 0,
        thread: int = 0,
        page_bytes: int = 8192,
    ):
        self.profile = profile
        self.seed = seed
        self.thread = thread
        self._rng = random.Random(f"{profile.name}/{seed}/{thread}")
        self._pc_base = (thread + 1) << 28
        self._next_pc = self._pc_base
        self._code_limit = self._pc_base + profile.branches.code_bytes
        self._emitted = 0
        self.page_bytes = page_bytes

        # --- branch sites ---------------------------------------------------
        br = profile.branches
        self._sites: List[_BranchSite] = []
        for i in range(br.num_sites):
            is_loop = self._rng.random() < br.loop_site_frac
            bias = self._rng.uniform(br.random_bias_lo, br.random_bias_hi)
            # half the data-dependent sites are biased not-taken: real
            # code has both polarities, so "predict taken" is no free
            # lunch (a trained predictor learns either direction)
            if self._rng.random() < 0.5:
                bias = 1.0 - bias
            trip = max(1, round(self._rng.gauss(br.loop_trip, br.loop_trip / 4)))
            pc = self._pc_base + 0x100000 + i * 4
            target = self._pc_base + 0x200000 + i * 4
            self._sites.append(
                _BranchSite(pc=pc, target=target, is_loop=is_loop, bias=bias, trip=trip)
            )

        # --- memory regions --------------------------------------------------
        mem = profile.memory
        addr_base = (thread + 1) << 34
        self._hot = _RegionWalker(addr_base, mem.hot_bytes, self._rng)
        self._warm = _RegionWalker(addr_base + (1 << 30), mem.warm_bytes, self._rng)
        self._cold = _PagedWalker(
            addr_base + (2 << 30), mem.cold_pages, page_bytes,
            mem.page_dwell, self._rng,
        )
        self._stream = _StreamWalker(addr_base + (3 << 30), mem.stream_stride)
        self._region_cum = self._cumulative(
            [mem.hot_frac, mem.warm_frac, mem.cold_frac, mem.stream_frac]
        )

        # --- dependency state -------------------------------------------------
        deps = profile.deps
        self._recent_dsts: List[int] = []
        #: latest architectural destination of each independent strand
        self._strand_last: List[Optional[int]] = [None] * deps.strands
        self._globals = list(range(1, 1 + deps.num_globals))
        self._dst_regs = [
            r for r in range(8, NUM_ARCH_REGS)
            if r not in self._globals and r != LINK_REG
        ]
        self._dst_cursor = 0
        self._burst_reg: Optional[int] = None
        self._burst_left = 0
        #: ground-truth call stack so RETURN targets match CALL sites
        self._call_stack: List[int] = []
        # static indirect-control sites: stable PCs and targets so the
        # BTB and RAS see realistic, learnable behaviour
        num_call_sites = 16
        self._call_sites: List[Tuple[int, int]] = [
            (
                self._pc_base + 0x300000 + i * 4,
                self._pc_base + 0x310000 + i * 64,
            )
            for i in range(num_call_sites)
        ]
        self._jump_sites: List[Tuple[int, int]] = [
            (
                self._pc_base + 0x320000 + i * 4,
                self._pc_base + 0x330000 + i * 64,
            )
            for i in range(num_call_sites)
        ]
        self._return_pcs: List[int] = [
            self._pc_base + 0x340000 + i * 4 for i in range(num_call_sites)
        ]

        # static load sites: stable PCs so the store-wait predictor can
        # learn; a fraction of the sites read recently stored data
        num_load_sites = 128
        self._load_sites: List[Tuple[int, bool]] = [
            (
                self._pc_base + 0x360000 + i * 4,
                self._rng.random() < profile.memory.alias_site_frac,
            )
            for i in range(num_load_sites)
        ]
        #: addresses of recently emitted stores (store-to-load aliasing)
        self._recent_store_addrs: List[int] = []

    # ------------------------------------------------------------------ utils

    @staticmethod
    def _cumulative(fractions: List[float]) -> List[float]:
        cum, acc = [], 0.0
        for f in fractions:
            acc += f
            cum.append(acc)
        cum[-1] = 1.0
        return cum

    def _advance_pc(self) -> int:
        pc = self._next_pc
        self._next_pc += 4
        # keep the linear region bounded so the I-side footprint stays
        # modest (hot Spec95 loops live comfortably in a 64 KB L1I);
        # icache-hostile profiles widen it via ``branches.code_bytes``
        if self._next_pc >= self._code_limit:
            self._next_pc = self._pc_base
        return pc

    # ----------------------------------------------------------- register picks

    def _pick_distance_source(self) -> int:
        """A source register by producer distance (near or far)."""
        deps = self.profile.deps
        if not self._recent_dsts:
            return ZERO_REG
        if self._rng.random() < deps.far_frac:
            distance = self._rng.randint(deps.far_lo, deps.far_hi)
        else:
            distance = min(
                1 + int(self._rng.expovariate(1.0 / deps.near_mean)), 10_000
            )
        if distance >= len(self._recent_dsts):
            distance = len(self._recent_dsts)
        return self._recent_dsts[-distance]

    def _pick_source(self, allow_burst: bool = True, strand: Optional[int] = None) -> int:
        deps = self.profile.deps
        if allow_burst and self._burst_left > 0 and self._burst_reg is not None:
            self._burst_left -= 1
            return self._burst_reg
        roll = self._rng.random()
        if roll < deps.global_frac:
            return self._rng.choice(self._globals)
        if roll < deps.global_frac + deps.chain_frac:
            if strand is not None and self._strand_last[strand] is not None:
                return self._strand_last[strand]
            if self._recent_dsts:
                return self._recent_dsts[-1]
        return self._pick_distance_source()

    def _pick_dst(self, opclass: OpClass) -> int:
        """Round-robin destination, respecting the int/fp bank split."""
        for _ in range(len(self._dst_regs)):
            reg = self._dst_regs[self._dst_cursor]
            self._dst_cursor = (self._dst_cursor + 1) % len(self._dst_regs)
            if opclass in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
                if reg >= FIRST_FP_REG:
                    return reg
            elif reg < FIRST_FP_REG:
                return reg
        return self._dst_regs[0]

    def _record_dst(self, reg: int, strand: Optional[int] = None) -> None:
        if strand is not None:
            self._strand_last[strand] = reg
        self._recent_dsts.append(reg)
        if len(self._recent_dsts) > 4096:
            del self._recent_dsts[:2048]
        deps = self.profile.deps
        # a broadcast value keeps its consumers until the burst drains;
        # a new burst only starts once the previous one is exhausted
        if self._burst_left == 0 and self._rng.random() < deps.fanout_burst_frac:
            self._burst_reg = reg
            self._burst_left = deps.fanout_burst_len

    # ------------------------------------------------------------- op builders

    def _next_data_address(self) -> int:
        roll = self._rng.random()
        if roll <= self._region_cum[0]:
            return self._hot.next_address()
        if roll <= self._region_cum[1]:
            return self._warm.next_address()
        if roll <= self._region_cum[2]:
            return self._cold.next_address()
        return self._stream.next_address()

    def _make_branch(self) -> MicroOp:
        br = self.profile.branches
        if self._rng.random() < br.indirect_frac:
            return self._make_indirect()
        site = self._rng.choice(self._sites)
        taken = site.next_outcome(self._rng)
        return MicroOp(
            pc=site.pc,
            opclass=OpClass.BRANCH,
            srcs=(self._pick_source(allow_burst=False),),
            taken=taken,
            target=site.target,
        )

    def _make_indirect(self) -> MicroOp:
        """A call, return (matching the call stack) or direct jump."""
        if self._call_stack and (
            len(self._call_stack) >= 8 or self._rng.random() < 0.5
        ):
            return_target = self._call_stack.pop()
            return MicroOp(
                pc=self._rng.choice(self._return_pcs),
                opclass=OpClass.RETURN,
                srcs=(LINK_REG,),
                taken=True,
                target=return_target,
            )
        if self._rng.random() < 0.7:
            pc, target = self._rng.choice(self._call_sites)
            self._call_stack.append(pc + 4)
            return MicroOp(
                pc=pc,
                opclass=OpClass.CALL,
                srcs=(),
                dst=LINK_REG,
                taken=True,
                target=target,
            )
        pc, target = self._rng.choice(self._jump_sites)
        return MicroOp(
            pc=pc,
            opclass=OpClass.JUMP,
            srcs=(),
            taken=True,
            target=target,
        )

    def _make_load(self) -> MicroOp:
        strand = self._rng.randrange(self.profile.deps.strands)
        dst = self._pick_dst(OpClass.INT_ALU if self._rng.random() < 0.5 else OpClass.FP_ADD)
        pc, alias_prone = self._rng.choice(self._load_sites)
        if alias_prone and self._recent_store_addrs and self._rng.random() < 0.8:
            address = self._rng.choice(self._recent_store_addrs)
        else:
            address = self._next_data_address()
        op = MicroOp(
            pc=pc,
            opclass=OpClass.LOAD,
            # address base: usually a global/stable pointer so loads can
            # issue early (real array walks index off long-lived bases)
            srcs=(self._pick_address_base(strand),),
            dst=dst,
            address=address,
        )
        self._record_dst(dst, strand)
        return op

    def _pick_address_base(self, strand: int) -> int:
        """Source register for a memory address computation."""
        if self._rng.random() < 0.6:
            return self._rng.choice(self._globals)
        return self._pick_source(allow_burst=False, strand=strand)

    def _make_store(self) -> MicroOp:
        strand = self._rng.randrange(self.profile.deps.strands)
        address = self._next_data_address()
        self._recent_store_addrs.append(address)
        if len(self._recent_store_addrs) > 16:
            self._recent_store_addrs.pop(0)
        return MicroOp(
            pc=self._advance_pc(),
            opclass=OpClass.STORE,
            srcs=(
                self._pick_source(allow_burst=False, strand=strand),
                self._pick_address_base(strand),
            ),
            address=address,
        )

    def _make_compute(self, opclass: OpClass) -> MicroOp:
        strand = self._rng.randrange(self.profile.deps.strands)
        # the first source carries the strand's serial chain; the second
        # is where broadcast (fan-out burst) values are consumed
        srcs: Tuple[int, ...] = (
            self._pick_source(allow_burst=False, strand=strand),
        )
        if self._rng.random() < self.profile.deps.two_src_frac:
            srcs = (srcs[0], self._pick_source(allow_burst=True))
        dst = self._pick_dst(opclass)
        op = MicroOp(
            pc=self._advance_pc(), opclass=opclass, srcs=srcs, dst=dst,
        )
        self._record_dst(dst, strand)
        return op

    # ---------------------------------------------------------------- stream

    @property
    def emitted(self) -> int:
        """Micro-ops generated so far.  A reference generator built with
        the same ``(profile, seed, thread, page_bytes)`` and fast-forwarded
        by this count continues the stream exactly (the verification
        oracle relies on this)."""
        return self._emitted

    @property
    def name(self) -> str:
        """The engine name (the profile it synthesises)."""
        return self.profile.name

    def clone(self) -> "SyntheticTraceGenerator":
        """A fresh generator with the same identity, at stream start.

        ``clone().fast_forward(self.emitted)`` reproduces this
        generator's position exactly — the determinism contract every
        :class:`~repro.scenarios.base.WorkloadEngine` implements and the
        verification oracle relies on.
        """
        return SyntheticTraceGenerator(
            self.profile,
            seed=self.seed,
            thread=self.thread,
            page_bytes=self.page_bytes,
        )

    def fast_forward(self, count: int) -> None:
        """Advance the stream by ``count`` ops, discarding them."""
        for _ in range(count):
            self.next_op()

    def next_op(self) -> MicroOp:
        """Generate the next micro-op of the stream."""
        self._emitted += 1
        # refresh one global register occasionally so globals are not
        # eternally "completed" operands
        if self._emitted % 2000 == 0:
            reg = self._rng.choice(self._globals)
            return MicroOp(
                pc=self._advance_pc(), opclass=OpClass.INT_ALU,
                srcs=(ZERO_REG,), dst=reg,
            )
        opclass = self.profile.mix.sample(self._rng)
        if opclass is OpClass.BRANCH:
            return self._make_branch()
        if opclass is OpClass.LOAD:
            return self._make_load()
        if opclass is OpClass.STORE:
            return self._make_store()
        if opclass in (OpClass.MEM_BARRIER, OpClass.NOP):
            return MicroOp(pc=self._advance_pc(), opclass=opclass)
        return self._make_compute(opclass)

    def stream(self) -> Iterator[MicroOp]:
        """An infinite iterator over the instruction stream."""
        while True:
            yield self.next_op()

    def __iter__(self) -> Iterator[MicroOp]:
        return self.stream()
