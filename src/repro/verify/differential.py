"""Differential configuration checks: cross-machine consistency laws.

These checks exploit structural relations between configurations that
must hold regardless of the workload, so any breakage localises a
timing-model bug even when every single-run invariant passes:

* **DRA/base equivalence** — a DRA machine whose cluster register
  caches can hold the entire physical register file never misses an
  operand, so its timing must be *cycle-for-cycle identical* to the
  base machine with the same DEC->IQ / IQ->EX geometry
  (``CoreConfig.base(1)`` and ``CoreConfig.with_dra(3)`` both run a
  5_3 pipe).  §4's argument that a big-enough register cache is just
  a register file, made executable.
* **infinite-CRC miss freedom** — per preset, a DRA variant whose CRCs
  cover every physical register must report zero operand-miss events.
* **RF-latency monotonicity** — per preset, stretching the register
  read (and with it IQ->EX, as in §6's base machines) can never raise
  IPC.  The paper's Figure 8 downward slope, as an inequality.
* **stall-recovery silence** — under ``LoadRecovery.STALL`` nothing
  ever issues before its operands are known good, so the reissue
  counters and load misspeculation count must be exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.config import CoreConfig, DRAConfig, LoadRecovery
from repro.presets import MACHINE_PRESETS, preset


@dataclass
class DifferentialCheck:
    """Outcome of one cross-configuration law."""

    name: str
    passed: bool
    detail: str

    def describe(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return f"{status} {self.name}: {self.detail}"


def _run(workload, config, instructions, warmup, detailed_warmup, seed,
         backend="reference"):
    from repro.core.simulator import simulate

    return simulate(
        workload,
        config,
        instructions=instructions,
        warmup=warmup,
        detailed_warmup=detailed_warmup,
        seed=seed,
        backend=backend,
    ).stats


def _infinite_crc(config: CoreConfig) -> DRAConfig:
    """A CRC geometry that can never evict a live register."""
    base = config.dra if config.dra is not None else DRAConfig()
    return replace(
        base, crc_entries=config.num_pregs, counter_bits=16
    )


def check_dra_base_equivalence(
    workload: str = "int_test",
    instructions: int = 2000,
    warmup: int = 20_000,
    detailed_warmup: int = 400,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """``base(1)`` and infinite-CRC ``with_dra(3)`` must match exactly."""
    base_config = CoreConfig.base(1)
    dra_config = CoreConfig.with_dra(
        3, dra=replace(DRAConfig(), crc_entries=768, counter_bits=16)
    )
    base_stats = _run(
        workload, base_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    dra_stats = _run(
        workload, dra_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    mismatches = []
    if base_stats.cycles != dra_stats.cycles:
        mismatches.append(
            f"cycles {base_stats.cycles} != {dra_stats.cycles}"
        )
    if base_stats.retired != dra_stats.retired:
        mismatches.append(
            f"retired {base_stats.retired} != {dra_stats.retired}"
        )
    if dra_stats.operand_miss_events:
        mismatches.append(
            f"{dra_stats.operand_miss_events} operand misses under an "
            f"infinite CRC"
        )
    if mismatches:
        return DifferentialCheck(
            "dra-base-equivalence", False, "; ".join(mismatches)
        )
    return DifferentialCheck(
        "dra-base-equivalence",
        True,
        f"{base_config.label} == {dra_config.label} at "
        f"{base_stats.cycles} cycles / {base_stats.retired} retired",
    )


def check_infinite_crc(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 2000,
    warmup: int = 20_000,
    detailed_warmup: int = 400,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """A CRC covering every preg must never miss an operand."""
    config = preset(preset_name)
    config = replace(config, dra=_infinite_crc(config))
    stats = _run(
        workload, config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"infinite-crc[{preset_name}]"
    if stats.operand_miss_events:
        return DifferentialCheck(
            name,
            False,
            f"{stats.operand_miss_events} operand misses with "
            f"crc_entries == num_pregs ({config.num_pregs})",
        )
    return DifferentialCheck(
        name, True, f"0 operand misses over {stats.retired} retirements"
    )


def check_rf_monotonicity(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    deltas=(0, 2, 4),
    backend: str = "reference",
) -> DifferentialCheck:
    """Baseline IPC must not increase as the RF read lengthens.

    Each step stretches ``rf_read_latency`` and ``iq_ex`` together,
    exactly how :meth:`CoreConfig.base` builds §6's base machines.
    """
    config = preset(preset_name)
    if config.dra is not None:
        config = replace(config, dra=None)
    ipcs = []
    for delta in deltas:
        stretched = replace(
            config,
            rf_read_latency=config.rf_read_latency + delta,
            iq_ex=config.iq_ex + delta,
        )
        stats = _run(
            workload, stretched, instructions, warmup, detailed_warmup, seed,
            backend=backend,
        )
        ipcs.append((delta, stats.ipc))
    name = f"rf-monotonicity[{preset_name}]"
    trace = ", ".join(f"+{d}:{ipc:.4f}" for d, ipc in ipcs)
    for (d_lo, ipc_lo), (d_hi, ipc_hi) in zip(ipcs, ipcs[1:]):
        if ipc_hi > ipc_lo + 1e-12:
            return DifferentialCheck(
                name,
                False,
                f"IPC rose from {ipc_lo:.4f} (+{d_lo}) to "
                f"{ipc_hi:.4f} (+{d_hi}): {trace}",
            )
    return DifferentialCheck(name, True, trace)


def check_stall_recovery(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """``LoadRecovery.STALL`` must produce zero reissues/misspeculations."""
    config = preset(preset_name)
    if config.dra is not None:
        config = replace(config, dra=None)
    config = replace(config, load_recovery=LoadRecovery.STALL)
    stats = _run(
        workload, config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"stall-recovery[{preset_name}]"
    if stats.total_reissues or stats.load_misspeculations:
        return DifferentialCheck(
            name,
            False,
            f"{stats.total_reissues} reissues, "
            f"{stats.load_misspeculations} load misspeculations under "
            f"stall recovery",
        )
    return DifferentialCheck(
        name, True, f"silent over {stats.retired} retirements"
    )


def run_differential_checks(
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    presets: Optional[List[str]] = None,
    backend: str = "reference",
) -> List[DifferentialCheck]:
    """The full differential matrix (what ``repro verify -d`` runs)."""
    names = list(presets) if presets is not None else list(MACHINE_PRESETS)
    checks = [
        check_dra_base_equivalence(
            workload,
            instructions=max(instructions, 2000),
            warmup=warmup,
            detailed_warmup=detailed_warmup,
            seed=seed,
            backend=backend,
        )
    ]
    for name in names:
        checks.append(
            check_infinite_crc(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
        checks.append(
            check_rf_monotonicity(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
        checks.append(
            check_stall_recovery(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
    return checks
