"""Differential configuration checks: cross-machine consistency laws.

These checks exploit structural relations between configurations that
must hold regardless of the workload, so any breakage localises a
timing-model bug even when every single-run invariant passes:

* **DRA/base equivalence** — a DRA machine whose cluster register
  caches can hold the entire physical register file never misses an
  operand, so its timing must be *cycle-for-cycle identical* to the
  base machine with the same DEC->IQ / IQ->EX geometry
  (``CoreConfig.base(1)`` and ``CoreConfig.with_dra(3)`` both run a
  5_3 pipe).  §4's argument that a big-enough register cache is just
  a register file, made executable.
* **infinite-CRC miss freedom** — per preset, a DRA variant whose CRCs
  cover every physical register must report zero operand-miss events.
* **RF-latency monotonicity** — per preset, stretching the register
  read (and with it IQ->EX, as in §6's base machines) can never raise
  IPC.  The paper's Figure 8 downward slope, as an inequality.
* **stall-recovery silence** — under ``LoadRecovery.STALL`` nothing
  ever issues before its operands are known good, so the reissue
  counters and load misspeculation count must be exactly zero.
* **SSR zero-threshold equivalence** — ``LoadRecovery.SSR`` with
  ``ssr_threshold=0`` releases held dependents at exactly the STALL
  machine's conservative point, so the two machines must be
  *cycle-for-cycle identical* (and SSR, holding dependents at issue,
  must itself never reissue).
* **port sufficiency** — a base machine whose read ports cover the
  peak per-cycle operand demand (issue_width x max sources) can never
  port-stall, so it must be cycle-for-cycle identical to one with
  arbitrarily many ports, with ``port_stalls == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.config import CoreConfig, DRAConfig, LoadRecovery
from repro.presets import MACHINE_PRESETS, preset


@dataclass
class DifferentialCheck:
    """Outcome of one cross-configuration law."""

    name: str
    passed: bool
    detail: str

    def describe(self) -> str:
        status = "ok  " if self.passed else "FAIL"
        return f"{status} {self.name}: {self.detail}"


def _run(workload, config, instructions, warmup, detailed_warmup, seed,
         backend="reference"):
    from repro.core.simulator import simulate

    return simulate(
        workload,
        config,
        instructions=instructions,
        warmup=warmup,
        detailed_warmup=detailed_warmup,
        seed=seed,
        backend=backend,
    ).stats


def _infinite_crc(config: CoreConfig) -> DRAConfig:
    """A CRC geometry that can never evict a live register."""
    base = config.dra if config.dra is not None else DRAConfig()
    return replace(
        base, crc_entries=config.num_pregs, counter_bits=16
    )


def check_dra_base_equivalence(
    workload: str = "int_test",
    instructions: int = 2000,
    warmup: int = 20_000,
    detailed_warmup: int = 400,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """``base(1)`` and infinite-CRC ``with_dra(3)`` must match exactly."""
    base_config = CoreConfig.base(1)
    dra_config = CoreConfig.with_dra(
        3, dra=replace(DRAConfig(), crc_entries=768, counter_bits=16)
    )
    base_stats = _run(
        workload, base_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    dra_stats = _run(
        workload, dra_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    mismatches = []
    if base_stats.cycles != dra_stats.cycles:
        mismatches.append(
            f"cycles {base_stats.cycles} != {dra_stats.cycles}"
        )
    if base_stats.retired != dra_stats.retired:
        mismatches.append(
            f"retired {base_stats.retired} != {dra_stats.retired}"
        )
    if dra_stats.operand_miss_events:
        mismatches.append(
            f"{dra_stats.operand_miss_events} operand misses under an "
            f"infinite CRC"
        )
    if mismatches:
        return DifferentialCheck(
            "dra-base-equivalence", False, "; ".join(mismatches)
        )
    return DifferentialCheck(
        "dra-base-equivalence",
        True,
        f"{base_config.label} == {dra_config.label} at "
        f"{base_stats.cycles} cycles / {base_stats.retired} retired",
    )


def check_infinite_crc(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 2000,
    warmup: int = 20_000,
    detailed_warmup: int = 400,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """A CRC covering every preg must never miss an operand."""
    config = preset(preset_name)
    config = replace(config, dra=_infinite_crc(config))
    stats = _run(
        workload, config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"infinite-crc[{preset_name}]"
    if stats.operand_miss_events:
        return DifferentialCheck(
            name,
            False,
            f"{stats.operand_miss_events} operand misses with "
            f"crc_entries == num_pregs ({config.num_pregs})",
        )
    return DifferentialCheck(
        name, True, f"0 operand misses over {stats.retired} retirements"
    )


def check_rf_monotonicity(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    deltas=(0, 2, 4),
    backend: str = "reference",
) -> DifferentialCheck:
    """Baseline IPC must not increase as the RF read lengthens.

    Each step stretches ``rf_read_latency`` and ``iq_ex`` together,
    exactly how :meth:`CoreConfig.base` builds §6's base machines.
    """
    config = preset(preset_name)
    if config.dra is not None:
        config = replace(config, dra=None)
    ipcs = []
    for delta in deltas:
        stretched = replace(
            config,
            rf_read_latency=config.rf_read_latency + delta,
            iq_ex=config.iq_ex + delta,
        )
        stats = _run(
            workload, stretched, instructions, warmup, detailed_warmup, seed,
            backend=backend,
        )
        ipcs.append((delta, stats.ipc))
    name = f"rf-monotonicity[{preset_name}]"
    trace = ", ".join(f"+{d}:{ipc:.4f}" for d, ipc in ipcs)
    for (d_lo, ipc_lo), (d_hi, ipc_hi) in zip(ipcs, ipcs[1:]):
        if ipc_hi > ipc_lo + 1e-12:
            return DifferentialCheck(
                name,
                False,
                f"IPC rose from {ipc_lo:.4f} (+{d_lo}) to "
                f"{ipc_hi:.4f} (+{d_hi}): {trace}",
            )
    return DifferentialCheck(name, True, trace)


def check_stall_recovery(
    preset_name: str,
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    backend: str = "reference",
) -> DifferentialCheck:
    """``LoadRecovery.STALL`` must produce zero reissues/misspeculations."""
    config = preset(preset_name)
    if config.dra is not None:
        config = replace(config, dra=None)
    config = replace(config, load_recovery=LoadRecovery.STALL)
    stats = _run(
        workload, config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"stall-recovery[{preset_name}]"
    if stats.total_reissues or stats.load_misspeculations:
        return DifferentialCheck(
            name,
            False,
            f"{stats.total_reissues} reissues, "
            f"{stats.load_misspeculations} load misspeculations under "
            f"stall recovery",
        )
    return DifferentialCheck(
        name, True, f"silent over {stats.retired} retirements"
    )


def check_ssr_zero_threshold(
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    rf: int = 5,
    backend: str = "reference",
) -> DifferentialCheck:
    """SSR with threshold 0 must equal the STALL machine exactly.

    Threshold 0 means dependents are released at precisely the STALL
    machine's conservative publication point, so every cycle of both
    runs must agree — and SSR must be as silent as STALL (dependents
    held at issue never mis-speculate).
    """
    stall_config = CoreConfig.base(rf, load_recovery=LoadRecovery.STALL)
    ssr_config = CoreConfig.base(
        rf, load_recovery=LoadRecovery.SSR, ssr_threshold=0
    )
    stall_stats = _run(
        workload, stall_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    ssr_stats = _run(
        workload, ssr_config, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"ssr-zero-threshold[rf{rf}]"
    mismatches = []
    for field_name in ("cycles", "retired", "issues"):
        stall_value = getattr(stall_stats, field_name)
        ssr_value = getattr(ssr_stats, field_name)
        if stall_value != ssr_value:
            mismatches.append(
                f"{field_name} {stall_value} != {ssr_value}"
            )
    if ssr_stats.total_reissues or ssr_stats.load_misspeculations:
        mismatches.append(
            f"{ssr_stats.total_reissues} reissues, "
            f"{ssr_stats.load_misspeculations} load misspeculations "
            f"under SSR"
        )
    if mismatches:
        return DifferentialCheck(name, False, "; ".join(mismatches))
    return DifferentialCheck(
        name,
        True,
        f"STALL == SSR(0) at {stall_stats.cycles} cycles / "
        f"{stall_stats.retired} retired, SSR silent",
    )


def check_port_sufficiency(
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    rf: int = 5,
    backend: str = "reference",
) -> DifferentialCheck:
    """Ports >= peak operand demand must equal unlimited ports exactly.

    Peak per-cycle demand is issue_width instructions x 2 sources; a
    machine with that many read ports can never port-stall, so raising
    the port count further cannot change a single cycle.
    """
    base = CoreConfig.base(rf)
    peak_demand = 2 * base.issue_width
    sufficient = replace(base, rf_read_ports=peak_demand)
    unlimited = replace(base, rf_read_ports=16 * peak_demand)
    sufficient_stats = _run(
        workload, sufficient, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    unlimited_stats = _run(
        workload, unlimited, instructions, warmup, detailed_warmup, seed,
        backend=backend,
    )
    name = f"port-sufficiency[rf{rf}]"
    mismatches = []
    for field_name in ("cycles", "retired", "issues", "port_stalls"):
        lhs = getattr(sufficient_stats, field_name)
        rhs = getattr(unlimited_stats, field_name)
        if lhs != rhs:
            mismatches.append(f"{field_name} {lhs} != {rhs}")
    if sufficient_stats.port_stalls:
        mismatches.append(
            f"{sufficient_stats.port_stalls} port stalls with "
            f"{peak_demand} ports (peak demand {peak_demand})"
        )
    if mismatches:
        return DifferentialCheck(name, False, "; ".join(mismatches))
    return DifferentialCheck(
        name,
        True,
        f"{peak_demand} ports == {16 * peak_demand} ports at "
        f"{sufficient_stats.cycles} cycles, 0 port stalls",
    )


def run_differential_checks(
    workload: str = "int_test",
    instructions: int = 1500,
    warmup: int = 20_000,
    detailed_warmup: int = 300,
    seed: int = 0,
    presets: Optional[List[str]] = None,
    backend: str = "reference",
) -> List[DifferentialCheck]:
    """The full differential matrix (what ``repro verify -d`` runs)."""
    names = list(presets) if presets is not None else list(MACHINE_PRESETS)
    checks = [
        check_dra_base_equivalence(
            workload,
            instructions=max(instructions, 2000),
            warmup=warmup,
            detailed_warmup=detailed_warmup,
            seed=seed,
            backend=backend,
        ),
        check_ssr_zero_threshold(
            workload, instructions, warmup, detailed_warmup, seed,
            backend=backend,
        ),
        check_port_sufficiency(
            workload, instructions, warmup, detailed_warmup, seed,
            backend=backend,
        ),
    ]
    for name in names:
        checks.append(
            check_infinite_crc(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
        checks.append(
            check_rf_monotonicity(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
        checks.append(
            check_stall_recovery(
                name, workload, instructions, warmup, detailed_warmup, seed,
                backend=backend,
            )
        )
    return checks
