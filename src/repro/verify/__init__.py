"""Differential verification subsystem.

Three independent lines of defence against timing-model bugs:

* a **golden retire model** (:class:`GoldenRetireModel`) — an in-order
  reference replaying the same deterministic micro-op stream, checked
  against every retirement;
* **event-stream invariant checkers** (:mod:`repro.verify.invariants`)
  over the observability bus — instruction conservation, rename-map
  consistency, dataflow/reissue closure, CRC/RPFT coherence — plus the
  metrics and loop-attribution reconciliation cross-checks;
* **differential configuration runs** (:mod:`repro.verify.differential`)
  — cross-machine laws like "an infinite register cache makes the DRA
  cycle-identical to the base machine";

plus a **workload fuzzer** with a delta-debugging shrinker
(:mod:`repro.verify.fuzz`) that drives all of the above over random
configurations and profiles and writes minimal JSON reproducers.

Entry points: ``repro verify`` on the command line,
:class:`Verifier` / :func:`verified_simulate` in code, and
``HarnessSettings(verify=True)`` to self-check every harness cell.
"""

from repro.verify.differential import (
    DifferentialCheck,
    check_dra_base_equivalence,
    check_infinite_crc,
    check_port_sufficiency,
    check_rf_monotonicity,
    check_ssr_zero_threshold,
    check_stall_recovery,
    run_differential_checks,
)
from repro.verify.fuzz import (
    INJECTIONS,
    FuzzCase,
    FuzzFailure,
    FuzzResult,
    fuzz,
    load_reproducer,
    make_reproducer,
    profile_from_dict,
    profile_to_dict,
    random_case,
    replay,
    run_case,
    shrink,
    write_reproducer,
)
from repro.verify.invariants import (
    ConservationChecker,
    CRCCoherenceChecker,
    DataflowChecker,
    InvariantChecker,
    RenameChecker,
    Violation,
)
from repro.verify.oracle import GoldenRetireModel
from repro.verify.runner import (
    SweepEntry,
    Verifier,
    dra_variant,
    verified_simulate,
    verify_presets,
)

__all__ = [
    "Verifier",
    "verified_simulate",
    "verify_presets",
    "SweepEntry",
    "dra_variant",
    "Violation",
    "InvariantChecker",
    "ConservationChecker",
    "RenameChecker",
    "DataflowChecker",
    "CRCCoherenceChecker",
    "GoldenRetireModel",
    "DifferentialCheck",
    "run_differential_checks",
    "check_dra_base_equivalence",
    "check_infinite_crc",
    "check_port_sufficiency",
    "check_rf_monotonicity",
    "check_ssr_zero_threshold",
    "check_stall_recovery",
    "FuzzCase",
    "FuzzFailure",
    "FuzzResult",
    "INJECTIONS",
    "fuzz",
    "run_case",
    "shrink",
    "random_case",
    "replay",
    "make_reproducer",
    "write_reproducer",
    "load_reproducer",
    "profile_to_dict",
    "profile_from_dict",
]
